//! Property tests proving the incremental cycle detector behaviourally
//! equivalent to the from-scratch SCC oracle (`has_cycle_scc`) across
//! random edge-insert/remove sequences, and that the cycle-check counter's
//! semantics stay monotone.

use proptest::prelude::*;
use sbcc_graph::cycle::has_cycle_scc;
use sbcc_graph::{DependencyGraph, EdgeKind};

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32, EdgeKind),
    RemoveEdge(u32, u32, EdgeKind),
    RemoveNode(u32),
    ClearOut(u32, EdgeKind),
    Query(u32, Vec<u32>),
}

fn arb_kind() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![Just(EdgeKind::WaitFor), Just(EdgeKind::CommitDep)]
}

fn arb_op(n_nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_nodes, 0..n_nodes, arb_kind()).prop_map(|(a, b, k)| Op::AddEdge(a, b, k)),
        (0..n_nodes, 0..n_nodes, arb_kind()).prop_map(|(a, b, k)| Op::RemoveEdge(a, b, k)),
        (0..n_nodes).prop_map(Op::RemoveNode),
        (0..n_nodes, arb_kind()).prop_map(|(a, k)| Op::ClearOut(a, k)),
        (0..n_nodes, proptest::collection::vec(0..n_nodes, 0..4))
            .prop_map(|(from, targets)| Op::Query(from, targets)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_detector_agrees_with_scc_oracle(
        ops in proptest::collection::vec(arb_op(10), 1..60)
    ) {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        for op in &ops {
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                }
                Op::Query(from, targets) => {
                    let incremental = g.would_close_cycle(*from, targets);
                    let oracle = g.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(
                        incremental, oracle,
                        "would_close_cycle({:?}, {:?}) diverged after {:?}",
                        from, targets, ops
                    );
                }
            }
            // After every mutation: the maintained order must be internally
            // consistent, and the O(1)/fallback acyclicity answer must match
            // the from-scratch Tarjan SCC pass over the exported adjacency.
            prop_assert!(g.debug_check_order().is_ok(), "{:?}", g.debug_check_order());
            let oracle_cyclic = has_cycle_scc(&g.to_adjacency());
            prop_assert_eq!(g.has_cycle(), oracle_cyclic);
            if g.order_is_valid() {
                prop_assert!(!oracle_cyclic, "valid order implies acyclic");
            } else {
                prop_assert!(oracle_cyclic, "order is only invalidated by real cycles");
            }
        }
    }

    #[test]
    fn cycle_check_counter_is_monotone_and_counts_every_check(
        ops in proptest::collection::vec(arb_op(8), 1..40)
    ) {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        let mut last = g.cycle_checks();
        prop_assert_eq!(last, 0);
        for op in &ops {
            let before = g.cycle_checks();
            prop_assert!(before >= last, "counter never decreases");
            last = before;
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                    // Maintenance never counts as a scheduler cycle check.
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::Query(from, targets) => {
                    let _ = g.would_close_cycle(*from, targets);
                    prop_assert_eq!(g.cycle_checks(), before + 1, "each check counts once");
                    let _ = g.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(g.cycle_checks(), before + 2, "oracle checks count too");
                }
            }
            let checks_before_has_cycle = g.cycle_checks();
            let _ = g.has_cycle();
            prop_assert_eq!(g.cycle_checks(), checks_before_has_cycle + 1);
        }
        g.reset_cycle_checks();
        prop_assert_eq!(g.cycle_checks(), 0);
    }
}
