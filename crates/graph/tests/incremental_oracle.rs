//! Property tests proving the incremental cycle detector behaviourally
//! equivalent to the from-scratch SCC oracle (`has_cycle_scc`) across
//! random edge-insert/remove sequences, and that the cycle-check counter's
//! semantics stay monotone.
//!
//! Since the gap-label rework the suite additionally pins:
//!
//! * gap-labeled and dense-redistribute repairs agree with each other and
//!   with the SCC oracle on every query;
//! * the maintained labels are a genuine topological order after arbitrary
//!   edge/remove sequences (every edge's target labeled strictly below its
//!   source, i.e. sorting by label is a topological sort);
//! * forced gap exhaustion (label spacing 1) stays correct and actually
//!   takes the spread-renumbering path;
//! * the small-violation repair allocates nothing (regression for the
//!   allocation-free hot-path claim).

use proptest::prelude::*;
use sbcc_graph::cycle::has_cycle_scc;
use sbcc_graph::{DependencyGraph, EdgeKind, ReorderStrategy};

#[derive(Debug, Clone)]
enum Op {
    AddEdge(u32, u32, EdgeKind),
    RemoveEdge(u32, u32, EdgeKind),
    RemoveNode(u32),
    ClearOut(u32, EdgeKind),
    Query(u32, Vec<u32>),
}

fn arb_kind() -> impl Strategy<Value = EdgeKind> {
    prop_oneof![Just(EdgeKind::WaitFor), Just(EdgeKind::CommitDep)]
}

fn arb_op(n_nodes: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_nodes, 0..n_nodes, arb_kind()).prop_map(|(a, b, k)| Op::AddEdge(a, b, k)),
        (0..n_nodes, 0..n_nodes, arb_kind()).prop_map(|(a, b, k)| Op::RemoveEdge(a, b, k)),
        (0..n_nodes).prop_map(Op::RemoveNode),
        (0..n_nodes, arb_kind()).prop_map(|(a, k)| Op::ClearOut(a, k)),
        (0..n_nodes, proptest::collection::vec(0..n_nodes, 0..4))
            .prop_map(|(from, targets)| Op::Query(from, targets)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_detector_agrees_with_scc_oracle(
        ops in proptest::collection::vec(arb_op(10), 1..60)
    ) {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        for op in &ops {
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                }
                Op::Query(from, targets) => {
                    let incremental = g.would_close_cycle(*from, targets);
                    let oracle = g.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(
                        incremental, oracle,
                        "would_close_cycle({:?}, {:?}) diverged after {:?}",
                        from, targets, ops
                    );
                }
            }
            // After every mutation: the maintained order must be internally
            // consistent, and the O(1)/fallback acyclicity answer must match
            // the from-scratch Tarjan SCC pass over the exported adjacency.
            prop_assert!(g.debug_check_order().is_ok(), "{:?}", g.debug_check_order());
            let oracle_cyclic = has_cycle_scc(&g.to_adjacency());
            prop_assert_eq!(g.has_cycle(), oracle_cyclic);
            if g.order_is_valid() {
                prop_assert!(!oracle_cyclic, "valid order implies acyclic");
            } else {
                prop_assert!(oracle_cyclic, "order is only invalidated by real cycles");
            }
        }
    }

    #[test]
    fn cycle_check_counter_is_monotone_and_counts_every_check(
        ops in proptest::collection::vec(arb_op(8), 1..40)
    ) {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        let mut last = g.cycle_checks();
        prop_assert_eq!(last, 0);
        for op in &ops {
            let before = g.cycle_checks();
            prop_assert!(before >= last, "counter never decreases");
            last = before;
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                    // Maintenance never counts as a scheduler cycle check.
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                    prop_assert_eq!(g.cycle_checks(), before);
                }
                Op::Query(from, targets) => {
                    let _ = g.would_close_cycle(*from, targets);
                    prop_assert_eq!(g.cycle_checks(), before + 1, "each check counts once");
                    let _ = g.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(g.cycle_checks(), before + 2, "oracle checks count too");
                }
            }
            let checks_before_has_cycle = g.cycle_checks();
            let _ = g.has_cycle();
            prop_assert_eq!(g.cycle_checks(), checks_before_has_cycle + 1);
        }
        g.reset_cycle_checks();
        prop_assert_eq!(g.cycle_checks(), 0);
    }

    #[test]
    fn gap_and_dense_repairs_agree_with_each_other_and_the_oracle(
        ops in proptest::collection::vec(arb_op(10), 1..60)
    ) {
        let mut gap: DependencyGraph<u32> = DependencyGraph::new();
        let mut dense: DependencyGraph<u32> = DependencyGraph::new();
        dense.set_reorder_strategy(ReorderStrategy::DenseRedistribute);
        for op in &ops {
            match op {
                Op::AddEdge(a, b, k) => {
                    gap.add_edge(*a, *b, *k);
                    dense.add_edge(*a, *b, *k);
                }
                Op::RemoveEdge(a, b, k) => {
                    gap.remove_edge(*a, *b, *k);
                    dense.remove_edge(*a, *b, *k);
                }
                Op::RemoveNode(n) => {
                    gap.remove_node(*n);
                    dense.remove_node(*n);
                }
                Op::ClearOut(n, k) => {
                    gap.clear_out_edges(*n, *k);
                    dense.clear_out_edges(*n, *k);
                }
                Op::Query(from, targets) => {
                    let via_gap = gap.would_close_cycle(*from, targets);
                    let via_dense = dense.would_close_cycle(*from, targets);
                    let oracle = gap.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(via_gap, oracle, "gap vs oracle after {:?}", ops);
                    prop_assert_eq!(via_dense, oracle, "dense vs oracle after {:?}", ops);
                }
            }
            prop_assert!(gap.debug_check_order().is_ok(), "{:?}", gap.debug_check_order());
            prop_assert!(dense.debug_check_order().is_ok(), "{:?}", dense.debug_check_order());
            prop_assert_eq!(gap.order_is_valid(), dense.order_is_valid());
        }
        // The dense repair allocates on every violation it sees.
        let dt = dense.order_telemetry();
        prop_assert_eq!(dt.slow_path_allocs, dt.violations);
    }

    #[test]
    fn labels_are_a_topological_order_after_arbitrary_mutations(
        ops in proptest::collection::vec(arb_op(12), 1..80)
    ) {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        for op in &ops {
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                }
                Op::Query(from, targets) => {
                    let _ = g.would_close_cycle(*from, targets);
                }
            }
            if !g.order_is_valid() {
                continue;
            }
            // Label order ≡ topological order: every edge's target sits
            // strictly below its source, so sorting nodes by label yields a
            // topological sort of the exported adjacency.
            let adj = g.to_adjacency();
            for (a, targets) in &adj {
                let a_ord = g.order_position(*a).expect("source labeled");
                for b in targets {
                    let b_ord = g.order_position(*b).expect("target labeled");
                    prop_assert!(
                        b_ord < a_ord,
                        "edge {:?} -> {:?} violates label order ({} >= {}) after {:?}",
                        a, b, b_ord, a_ord, ops
                    );
                }
            }
            let mut by_label: Vec<u32> = adj.keys().copied().collect();
            by_label.sort_unstable_by_key(|n| g.order_position(*n).expect("labeled"));
            let rank: std::collections::HashMap<u32, usize> =
                by_label.iter().enumerate().map(|(i, n)| (*n, i)).collect();
            for (a, targets) in &adj {
                for b in targets {
                    prop_assert!(rank[b] < rank[a], "label sort is not topological");
                }
            }
        }
    }

    #[test]
    fn forced_gap_exhaustion_stays_correct(
        ops in proptest::collection::vec(arb_op(8), 1..50)
    ) {
        // Spacing 1 leaves no gap anywhere: every repair that needs room
        // must renumber, exercising the slow path on arbitrary inputs.
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        g.set_label_spacing(1);
        for op in &ops {
            match op {
                Op::AddEdge(a, b, k) => {
                    g.add_edge(*a, *b, *k);
                }
                Op::RemoveEdge(a, b, k) => {
                    g.remove_edge(*a, *b, *k);
                }
                Op::RemoveNode(n) => {
                    g.remove_node(*n);
                }
                Op::ClearOut(n, k) => {
                    g.clear_out_edges(*n, *k);
                }
                Op::Query(from, targets) => {
                    let incremental = g.would_close_cycle(*from, targets);
                    let oracle = g.would_close_cycle_oracle(*from, targets);
                    prop_assert_eq!(incremental, oracle, "diverged after {:?}", ops);
                }
            }
            prop_assert!(g.debug_check_order().is_ok(), "{:?}", g.debug_check_order());
            prop_assert_eq!(g.has_cycle(), has_cycle_scc(&g.to_adjacency()));
        }
        let t = g.order_telemetry();
        prop_assert!(
            t.window_renumber_events <= t.violations,
            "windowed renumbering only happens while repairing a violation"
        );
        prop_assert_eq!(
            t.renumber_events, 0,
            "repair-time exhaustion must take the windowed pass, not the full spread"
        );
    }
}

/// Regression: the small-violation repair — the hot path the gap labels
/// exist for — must report **zero** allocating slow paths, while the dense
/// baseline on the same workload allocates every time.
#[test]
fn small_violation_path_reports_zero_allocating_slow_paths() {
    for strategy in [ReorderStrategy::GapLabel, ReorderStrategy::DenseRedistribute] {
        let mut g: DependencyGraph<u32> = DependencyGraph::new();
        g.set_reorder_strategy(strategy);
        let mut expected_violations = 0u64;
        // 64 disjoint 8-node clusters: a 7-node dependency chain plus one
        // violating edge from the cluster's oldest node into the chain's
        // top. Every forward region holds exactly 7 nodes — comfortably
        // inside the 32-slot inline scratch.
        for cluster in 0..64u32 {
            let base = cluster * 8;
            for n in base..base + 8 {
                g.add_node(n);
            }
            for i in base + 2..base + 8 {
                g.add_edge(i, i - 1, EdgeKind::CommitDep);
            }
            g.add_edge(base, base + 7, EdgeKind::WaitFor);
            expected_violations += 1;
            g.debug_check_order().unwrap();
        }
        let t = g.order_telemetry();
        assert_eq!(t.violations, expected_violations, "{strategy}");
        assert_eq!(t.renumber_events, 0, "{strategy}: default gaps never exhaust here");
        assert_eq!(t.window_renumber_events, 0, "{strategy}: no windowed pass either");
        match strategy {
            ReorderStrategy::GapLabel => {
                assert_eq!(t.slow_path_allocs, 0, "small violations must not allocate");
                assert_eq!(t.nodes_relabeled, expected_violations * 7);
            }
            ReorderStrategy::DenseRedistribute => {
                assert_eq!(
                    t.slow_path_allocs, expected_violations,
                    "the dense baseline allocates per violation"
                );
            }
        }
    }
}

/// Forced exhaustion, deterministically: dense (spacing-1) labels make an
/// ascending chain renumber on every insert, and the graph stays correct.
#[test]
fn forced_exhaustion_renumbers_and_preserves_reachability() {
    let mut g: DependencyGraph<u32> = DependencyGraph::new();
    g.set_label_spacing(1);
    let n = 200u32;
    for i in 0..n {
        g.add_edge(i, i + 1, EdgeKind::CommitDep);
    }
    g.debug_check_order().unwrap();
    assert!(g.order_is_valid());
    let t = g.order_telemetry();
    assert!(t.window_renumber_events > 0, "spacing 1 must exhaust");
    assert_eq!(t.renumber_events, 0, "exhaustion takes the windowed pass");
    assert!(g.would_close_cycle(n, &[0]));
    assert!(!g.would_close_cycle(0, &[n]));
    assert_eq!(
        g.would_close_cycle(n / 2, &[n / 2 + 1]),
        g.would_close_cycle_oracle(n / 2, &[n / 2 + 1])
    );
}
