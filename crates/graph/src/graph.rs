//! The [`DependencyGraph`]: transactions as nodes, typed directed edges.
//!
//! Edges always point **from the dependent transaction to the transaction it
//! depends on**: a blocked transaction points at the holders it waits for,
//! and a transaction that executed a recoverable operation points at the
//! transactions that must commit before it. With that orientation the
//! commit protocol of Section 4.3 becomes: "when a node's commit-dependency
//! out-degree (to live nodes) drops to zero, a pseudo-committed transaction
//! may actually commit".
//!
//! # Incremental cycle detection
//!
//! The scheduler runs a cycle check on *every* blocking or recoverable
//! request — the paper reports this "cycle check ratio" as the dominant cost
//! of going beyond commutativity. To make the check sub-linear the graph
//! maintains an **incremental topological order** (Pearce–Kelly style) over
//! sparse **gap-numbered `u64` labels**:
//!
//! * Every node carries a label `ord(n)`; the maintained invariant is
//!   that for every edge `a -> b` (of either kind), `ord(b) < ord(a)` —
//!   dependencies always sit *below* their dependants. Labels are handed
//!   out with large gaps between them (2³² apart by default), so almost
//!   every repair finds room without touching anything else.
//! * [`DependencyGraph::add_edge`] checks the invariant. Inserting
//!   `from -> to` with `ord(to) < ord(from)` already satisfies it and costs
//!   O(1). Otherwise only the **forward affected region** — the nodes `to`
//!   transitively depends on whose label is at or above `ord(from)` — is
//!   discovered by a pruned search and relabeled *into the gap below
//!   `ord(from)`*, preserving its internal order. The backward region is
//!   never touched (its labels stay valid), and regions of up to 32 nodes
//!   are repaired entirely in fixed inline scratch buffers — **no heap
//!   allocation** on the common small-violation path. When the gap below
//!   `ord(from)` is too narrow to hold the region (labels locally
//!   exhausted), a **windowed renumbering** respaces only a bounded run of
//!   labels just above the violation — the rest of the graph keeps its
//!   labels, and the restored gaps make the next local exhaustion far
//!   away. [`OrderTelemetry`] counts violations, relabeled nodes,
//!   allocating slow paths and both renumber flavours so benchmarks can
//!   verify the allocation-free claim. The pre-gap dense redistribution (which
//!   re-packed the union of both regions into their existing positions,
//!   allocating on every violation) is retained behind
//!   [`ReorderStrategy::DenseRedistribute`] as a benchmark baseline.
//! * [`DependencyGraph::would_close_cycle`] exploits the same invariant:
//!   a path from a target `t` back to `from` can only run through nodes
//!   with `ord > ord(from)` (labels strictly decrease along every edge),
//!   so targets positioned at or below `from` are dismissed in O(1) and
//!   the search for the rest is pruned to the `(ord(from), ord(t)]` label
//!   window instead of walking the whole graph.
//! * Node and edge *removals* never violate the invariant, so transaction
//!   termination costs nothing extra.
//!
//! If a caller inserts an edge that genuinely closes a cycle (the scheduler
//! never does — it asks [`DependencyGraph::would_close_cycle`] first), the
//! order is marked invalid and every check transparently falls back to a
//! full search until a removal makes the graph acyclic again, at which
//! point the order is rebuilt.
//!
//! [`crate::cycle::has_cycle_scc`] (a from-scratch Tarjan SCC pass) is kept
//! as the property-test oracle, and
//! [`DependencyGraph::would_close_cycle_oracle`] exposes an oracle-backed
//! check so benchmarks and differential tests can run the old and new paths
//! side by side.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// Trait bound bundle for node identifiers.
pub trait NodeId: Copy + Eq + Hash + Ord + fmt::Debug {}
impl<T: Copy + Eq + Hash + Ord + fmt::Debug> NodeId for T {}

/// The two kinds of dependency edges the protocol maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// The source transaction is blocked waiting for the target to
    /// terminate (classic wait-for edge).
    WaitFor,
    /// The source transaction executed an operation that is recoverable
    /// relative to an uncommitted operation of the target; if both commit,
    /// the target must commit first.
    CommitDep,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::WaitFor => write!(f, "wait-for"),
            EdgeKind::CommitDep => write!(f, "commit-dep"),
        }
    }
}

/// How [`DependencyGraph::add_edge`] repairs an order violation (an edge
/// inserted from a lower-labeled node to a higher-labeled one).
///
/// The scheduler always runs the default [`ReorderStrategy::GapLabel`];
/// the dense path is retained — exactly like the SCC oracle next to the
/// incremental cycle check — so benchmarks and differential tests can run
/// the old and new reorder side by side.
///
/// Set the strategy on a fresh graph (before any edge is inserted): the two
/// repairs maintain the same invariant but assume their own label layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReorderStrategy {
    /// Sparse gap-numbered labels: relabel only the forward region into the
    /// gap below `ord(from)`; allocation-free for regions of up to 32
    /// nodes; amortised spread-renumbering on gap exhaustion.
    #[default]
    GapLabel,
    /// The pre-gap dense reorder: discover forward *and* backward regions
    /// and re-pack the union into its own sorted position pool. Allocates
    /// on every violation.
    DenseRedistribute,
}

impl fmt::Display for ReorderStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorderStrategy::GapLabel => write!(f, "gaplabel"),
            ReorderStrategy::DenseRedistribute => write!(f, "densereorder"),
        }
    }
}

/// Counters describing the topological-order maintenance work a
/// [`DependencyGraph`] has performed (the reorder telemetry surfaced
/// through the kernel's stats snapshot).
///
/// The headline claim these counters exist to verify: with
/// [`ReorderStrategy::GapLabel`], the common small-violation repair is
/// **allocation-free** — a bench run over small regions must report
/// `slow_path_allocs == 0` while `violations` keeps counting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderTelemetry {
    /// Order violations seen: edge inserts whose target label was at or
    /// above the source label, requiring a repair (or proving a cycle).
    pub violations: u64,
    /// Nodes whose label was rewritten by violation repairs (excludes
    /// full renumberings, which are counted in `renumber_events`).
    pub nodes_relabeled: u64,
    /// Repairs that took an allocating slow path: the affected region
    /// outgrew the fixed inline scratch buffers, a gap exhaustion forced a
    /// renumbering, or the dense strategy (which always allocates) ran.
    pub slow_path_allocs: u64,
    /// Full spread renumberings: every label reassigned with fresh gaps.
    /// Since the windowed pass landed this is only reachable from the
    /// `add_node` top-of-label-space overflow (and a defensive fallback);
    /// gap exhaustion inside a repair takes the windowed pass instead.
    pub renumber_events: u64,
    /// Windowed gap-exhaustion renumberings: the gap below `ord(from)`
    /// could not hold the relabeled region, so a bounded window of labels
    /// just above the violation was respaced — without touching the rest
    /// of the graph or walking its edges.
    pub window_renumber_events: u64,
}

impl OrderTelemetry {
    /// Add every counter of `other` into `self` (used to aggregate the
    /// per-shard graphs plus the escalation graph into one view).
    pub fn accumulate(&mut self, other: &OrderTelemetry) {
        self.violations += other.violations;
        self.nodes_relabeled += other.nodes_relabeled;
        self.slow_path_allocs += other.slow_path_allocs;
        self.renumber_events += other.renumber_events;
        self.window_renumber_events += other.window_renumber_events;
    }
}

/// Default spacing between freshly assigned labels: 2³² leaves room for
/// 32 levels of midpoint halving between any two neighbours before a
/// renumbering is needed, while still admitting ~2³² appended nodes.
const DEFAULT_LABEL_SPACING: u64 = 1 << 32;

/// Capacity of the fixed inline scratch buffers used by the gap-label
/// repair: regions up to this size are repaired without heap allocation.
const INLINE_REGION: usize = 32;

/// Gap the windowed renumbering aims to restore between neighbouring
/// labels. Deliberately smaller than [`DEFAULT_LABEL_SPACING`]: the window
/// only needs enough room for the next several repairs in this
/// neighbourhood, and a modest target keeps the window (and therefore the
/// number of rewritten labels) small.
const WINDOW_TARGET_STRIDE: u64 = 1 << 16;

/// A fixed-capacity scratch buffer that spills to the heap only when the
/// region outgrows [`INLINE_REGION`]; `spilled` reports whether that
/// happened so the telemetry can count allocating slow paths.
enum Scratch<T: Copy, const CAP: usize> {
    Inline { buf: [T; CAP], len: usize },
    Heap(Vec<T>),
}

impl<T: Copy, const CAP: usize> Scratch<T, CAP> {
    fn new(fill: T) -> Self {
        Scratch::Inline {
            buf: [fill; CAP],
            len: 0,
        }
    }

    fn push(&mut self, value: T) {
        match self {
            Scratch::Inline { buf, len } => {
                if *len < CAP {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(CAP * 2);
                    heap.extend_from_slice(&buf[..*len]);
                    heap.push(value);
                    *self = Scratch::Heap(heap);
                }
            }
            Scratch::Heap(heap) => heap.push(value),
        }
    }

    fn pop(&mut self) -> Option<T> {
        match self {
            Scratch::Inline { buf, len } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(buf[*len])
                }
            }
            Scratch::Heap(heap) => heap.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Scratch::Inline { len, .. } => *len,
            Scratch::Heap(heap) => heap.len(),
        }
    }

    fn as_slice(&self) -> &[T] {
        match self {
            Scratch::Inline { buf, len } => &buf[..*len],
            Scratch::Heap(heap) => heap,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            Scratch::Inline { buf, len } => &mut buf[..*len],
            Scratch::Heap(heap) => heap,
        }
    }

    fn spilled(&self) -> bool {
        matches!(self, Scratch::Heap(_))
    }
}

/// Per-target edge bookkeeping: how many wait-for and commit-dependency
/// edges currently point from a source to this target.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EdgeCounts {
    wait_for: u32,
    commit_dep: u32,
}

impl EdgeCounts {
    fn get(&self, kind: EdgeKind) -> u32 {
        match kind {
            EdgeKind::WaitFor => self.wait_for,
            EdgeKind::CommitDep => self.commit_dep,
        }
    }

    fn get_mut(&mut self, kind: EdgeKind) -> &mut u32 {
        match kind {
            EdgeKind::WaitFor => &mut self.wait_for,
            EdgeKind::CommitDep => &mut self.commit_dep,
        }
    }

    fn is_empty(&self) -> bool {
        self.wait_for == 0 && self.commit_dep == 0
    }
}

/// A node's adjacency: outgoing and incoming edge multisets.
#[derive(Debug, Clone)]
struct Adjacency<N: NodeId> {
    out: HashMap<N, EdgeCounts>,
    incoming: HashSet<N>,
}

impl<N: NodeId> Default for Adjacency<N> {
    fn default() -> Self {
        Adjacency {
            out: HashMap::new(),
            incoming: HashSet::new(),
        }
    }
}

/// The combined wait-for / commit-dependency graph.
///
/// Multiple logical edges between the same ordered pair (e.g. several
/// recoverable operations against the same holder) are reference counted,
/// so removing one logical edge does not prematurely drop the dependency.
///
/// # Example
///
/// The scheduler's admission loop in miniature — vet an edge with
/// [`Self::would_close_cycle`], insert it only on a negative answer, and
/// watch the maintained order absorb an order-violating insert without
/// allocating:
///
/// ```
/// use sbcc_graph::{DependencyGraph, EdgeKind};
///
/// let mut g: DependencyGraph<u32> = DependencyGraph::new();
/// // Transactions begin in id order, so their labels ascend with age.
/// for txn in 1..=3 {
///     g.add_node(txn);
/// }
/// // T2 executed a recoverable op against T1; T3 waits for T2.
/// g.add_edge(2, 1, EdgeKind::CommitDep);
/// g.add_edge(3, 2, EdgeKind::WaitFor);
///
/// // Would blocking T1 behind T3 close a cycle? (Yes: 3 → 2 → 1.)
/// assert!(g.would_close_cycle(1, &[3]));
/// // The reverse direction is fine, and dismissed in O(1) by label.
/// assert!(!g.would_close_cycle(3, &[1]));
///
/// // Dependencies sit below their dependants in the maintained order.
/// assert!(g.order_position(1).unwrap() < g.order_position(2).unwrap());
/// assert!(g.order_position(2).unwrap() < g.order_position(3).unwrap());
///
/// // `4 -> 5` violates the order (5 is fresher, so labeled higher); the
/// // gap-label repair relabels just one node and allocates nothing.
/// g.add_edge(4, 5, EdgeKind::CommitDep);
/// assert!(g.order_is_valid());
/// let t = g.order_telemetry();
/// assert_eq!((t.violations, t.nodes_relabeled, t.slow_path_allocs), (1, 1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct DependencyGraph<N: NodeId> {
    nodes: HashMap<N, Adjacency<N>>,
    cycle_checks: u64,
    /// Topological label of every node. Invariant (while `order_valid`):
    /// `ord[b] < ord[a]` for every edge `a -> b`. Labels are sparse
    /// (gap-numbered); unrelated nodes may share a label, which the strict
    /// per-edge invariant tolerates.
    ord: HashMap<N, u64>,
    /// The highest label handed out so far; fresh nodes take
    /// `next_ord + spacing`.
    next_ord: u64,
    /// Gap between freshly assigned labels (configurable for tests that
    /// force gap exhaustion; [`DEFAULT_LABEL_SPACING`] otherwise).
    spacing: u64,
    /// How order violations are repaired.
    reorder: ReorderStrategy,
    /// Reorder telemetry (violations, relabels, allocs, renumbers).
    telemetry: OrderTelemetry,
    /// `false` once a cycle-closing edge has been inserted; checks fall
    /// back to full searches until the order is rebuilt.
    order_valid: bool,
}

impl<N: NodeId> Default for DependencyGraph<N> {
    fn default() -> Self {
        DependencyGraph::new()
    }
}

impl<N: NodeId> DependencyGraph<N> {
    /// An empty graph using the default [`ReorderStrategy::GapLabel`].
    pub fn new() -> Self {
        DependencyGraph {
            nodes: HashMap::new(),
            cycle_checks: 0,
            ord: HashMap::new(),
            next_ord: 0,
            spacing: DEFAULT_LABEL_SPACING,
            reorder: ReorderStrategy::default(),
            telemetry: OrderTelemetry::default(),
            order_valid: true,
        }
    }

    /// Number of nodes currently in the graph.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct directed `(from, to)` pairs with at least one edge.
    pub fn edge_pair_count(&self) -> usize {
        self.nodes.values().map(|a| a.out.len()).sum()
    }

    /// Total number of logical edges (counting multiplicity) of a kind.
    pub fn edge_count(&self, kind: EdgeKind) -> usize {
        self.nodes
            .values()
            .flat_map(|a| a.out.values())
            .map(|c| c.get(kind) as usize)
            .sum()
    }

    /// `true` if the node is present.
    pub fn contains_node(&self, n: N) -> bool {
        self.nodes.contains_key(&n)
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = N> + '_ {
        self.nodes.keys().copied()
    }

    /// Insert a node with no edges; a no-op if already present.
    ///
    /// A fresh node receives a label one gap above every existing one — a
    /// new transaction initially depends on nothing, so placing it last in
    /// the topological order is always invariant-preserving, and the gap
    /// leaves room for later violation repairs to slot nodes in between.
    pub fn add_node(&mut self, n: N) {
        if self.nodes.contains_key(&n) {
            return;
        }
        if self.next_ord > u64::MAX - self.spacing {
            // Label space exhausted at the top (only reachable after ~2³²
            // appends, or with a tiny test spacing): spread all labels
            // back out before placing the newcomer.
            self.renumber_spread();
        }
        self.nodes.insert(n, Adjacency::default());
        self.next_ord = self.next_ord.saturating_add(self.spacing);
        self.ord.insert(n, self.next_ord);
    }

    /// Remove a node together with all incident edges (both directions).
    ///
    /// This is what happens when a transaction terminates: "the node that
    /// corresponds to the terminating transaction together with the edges
    /// associated with the node is removed from the dependency graph".
    ///
    /// Removal never violates the topological-order invariant, so the hot
    /// path pays nothing here; if the order had been invalidated by a
    /// cycle-closing insert, removal is the natural point to try rebuilding
    /// it.
    ///
    /// Returns `true` if the node was present.
    pub fn remove_node(&mut self, n: N) -> bool {
        let Some(adj) = self.nodes.remove(&n) else {
            return false;
        };
        self.ord.remove(&n);
        for target in adj.out.keys() {
            if let Some(t) = self.nodes.get_mut(target) {
                t.incoming.remove(&n);
            }
        }
        for source in adj.incoming {
            if let Some(s) = self.nodes.get_mut(&source) {
                s.out.remove(&n);
            }
        }
        if !self.order_valid {
            self.try_rebuild_order();
        }
        true
    }

    /// Add one logical edge `from -> to` of the given kind. Both endpoints
    /// are created if missing. Self-loops are ignored (a transaction never
    /// depends on itself) and return `false`.
    ///
    /// If the edge violates the maintained topological order, the affected
    /// region is re-numbered (Pearce–Kelly); if it genuinely closes a cycle
    /// the edge is still inserted and the order is marked invalid.
    pub fn add_edge(&mut self, from: N, to: N, kind: EdgeKind) -> bool {
        if from == to {
            return false;
        }
        self.add_node(from);
        self.add_node(to);
        let from_adj = self.nodes.get_mut(&from).expect("just inserted");
        let counts = from_adj.out.entry(to).or_default();
        let was_new_pair = counts.is_empty();
        *counts.get_mut(kind) += 1;
        let to_adj = self.nodes.get_mut(&to).expect("just inserted");
        to_adj.incoming.insert(from);
        // `>=` rather than `>`: gap relabeling may let *unrelated* nodes
        // share a label (harmless — the invariant is per edge), so an edge
        // between two equally labeled nodes is a violation too.
        if was_new_pair && self.order_valid && self.ord[&to] >= self.ord[&from] {
            let restored = match self.reorder {
                ReorderStrategy::GapLabel => self.restore_order_gap(from, to),
                ReorderStrategy::DenseRedistribute => self.restore_order_dense(from, to),
            };
            if !restored {
                self.order_valid = false;
            }
        }
        true
    }

    /// Re-establish `ord[b] < ord[a]` after inserting `from -> to` with
    /// `ord(to) >= ord(from)`, by relabeling **only the forward region**
    /// into the label gap below `ord(from)`. Returns `false` when the edge
    /// closed a cycle (labels are left untouched).
    ///
    /// The forward region F is everything `to` transitively depends on with
    /// a label at or above `lb = ord(from)` (labels strictly decrease along
    /// edges, so any path back to `from` stays inside that window — the
    /// same pruning [`Self::would_close_cycle`] uses). Relabeling F to
    /// fresh labels strictly between `floor` (the highest label among F's
    /// pruned-out dependencies) and `lb`, preserving F's internal order, is
    /// sufficient:
    ///
    /// * F's external dependencies all sit at or below `floor` — still
    ///   strictly below every new label;
    /// * every external dependant of an F node had a label above the node's
    ///   old label `>= lb` — still strictly above every new label;
    /// * the backward region needs no move at all, so it is never searched.
    ///
    /// Regions of up to [`INLINE_REGION`] nodes are discovered and
    /// relabeled entirely in fixed stack buffers — no heap allocation. If
    /// the gap holds fewer than `|F|` fresh labels, a bounded window of
    /// labels just above the violation is respaced
    /// ([`Self::renumber_window`]) — the rest of the graph keeps its
    /// labels.
    fn restore_order_gap(&mut self, from: N, to: N) -> bool {
        self.telemetry.violations += 1;
        let lb = self.ord[&from];
        // Discovered region in visit order, with old labels; doubles as the
        // visited set (linear scan while inline, hash set once spilled).
        let mut region: Scratch<(N, u64), INLINE_REGION> = Scratch::new((to, 0));
        let mut stack: Scratch<N, INLINE_REGION> = Scratch::new(to);
        let mut visited_spill: Option<HashSet<N>> = None;
        let mut floor: u64 = 0;
        region.push((to, self.ord[&to]));
        stack.push(to);
        while let Some(n) = stack.pop() {
            let Some(adj) = self.nodes.get(&n) else {
                continue;
            };
            for next in adj.out.keys() {
                if *next == from {
                    // `to` transitively depends on `from`: the new edge
                    // closes a cycle. Labels untouched; caller falls back.
                    if region.spilled() {
                        self.telemetry.slow_path_allocs += 1;
                    }
                    return false;
                }
                let next_ord = self.ord[next];
                if next_ord < lb {
                    // Pruned external dependency: the region must stay
                    // strictly above it.
                    floor = floor.max(next_ord);
                    continue;
                }
                let seen = match &visited_spill {
                    Some(set) => set.contains(next),
                    None => region.as_slice().iter().any(|(m, _)| m == next),
                };
                if !seen {
                    region.push((*next, next_ord));
                    stack.push(*next);
                    if let Some(set) = &mut visited_spill {
                        set.insert(*next);
                    } else if region.spilled() {
                        // The linear-scan membership check would now be
                        // quadratic; switch to a hash set.
                        visited_spill =
                            Some(region.as_slice().iter().map(|(m, _)| *m).collect());
                    }
                }
            }
        }

        let count = region.len() as u64;
        debug_assert!(floor < lb, "pruning keeps external deps below ord(from)");
        let stride = (lb - floor) / (count + 1);
        if stride == 0 {
            // Gap exhausted: the region no longer fits between its external
            // dependencies and `ord(from)`. Respace a bounded window of
            // labels just above the violation (the search above proved the
            // graph acyclic below `from`, so the windowed relabeling yields
            // a valid order that includes the already-inserted edge).
            self.telemetry.slow_path_allocs += 1;
            self.renumber_window(from, region.as_slice(), floor);
            return true;
        }
        // Relabel the region into the gap, preserving its internal order.
        // (Equal old labels can only belong to edge-unrelated nodes, so
        // their tie-break order is irrelevant.)
        region.as_mut_slice().sort_unstable_by_key(|(_, o)| *o);
        for (i, (n, _)) in region.as_slice().iter().enumerate() {
            self.ord.insert(*n, floor + stride * (i as u64 + 1));
        }
        self.telemetry.nodes_relabeled += count;
        if region.spilled() {
            self.telemetry.slow_path_allocs += 1;
        }
        true
    }

    /// Windowed gap-exhaustion renumbering: the gap `(floor, ord(from))`
    /// cannot hold the forward region `region`, so instead of spreading
    /// every label in the graph, respace only a **bounded window** of the
    /// lowest labels above `floor` — just enough of them that the span up
    /// to the first *retained* label fits the window at a healthy stride.
    ///
    /// Within the window, region nodes are placed as if labeled
    /// `ord(from)` (keeping their internal order), immediately *before*
    /// `from` itself; every other window node keeps its relative position.
    /// This is invariant-preserving because
    ///
    /// * all region out-edges either stay inside the region or lead to
    ///   labels at or below `floor` (that is what the pruned search
    ///   established), so moving the region down to `ord(from)` crosses no
    ///   dependency of its own;
    /// * an edge from a window node into the region implied the source's
    ///   old label was above the region node's (≥ `ord(from)`), and the
    ///   composite sort keeps every such source after the region block;
    /// * new labels all sit strictly between `floor` and the first
    ///   retained label, so edges across the window boundary (which always
    ///   point from above to below in label order) are undisturbed.
    ///
    /// The full [`Self::renumber_spread`] remains only as the `add_node`
    /// top-of-space overflow path and a defensive fallback here.
    fn renumber_window(&mut self, from: N, region: &[(N, u64)], floor: u64) {
        self.telemetry.window_renumber_events += 1;
        let lb = self.ord[&from];
        let target = self.effective_spacing().min(WINDOW_TARGET_STRIDE);
        // Everything labeled above `floor`, ascending. Collecting is O(V),
        // but only the window prefix is rewritten.
        let mut above: Vec<(N, u64)> = self
            .ord
            .iter()
            .filter(|(_, o)| **o > floor)
            .map(|(n, o)| (*n, *o))
            .collect();
        above.sort_unstable_by_key(|(_, o)| *o);
        // The window must cover the region and `from` (all labeled in
        // `(floor, region_max]`); grow it until the span up to the first
        // retained label admits the target stride.
        let region_max = region.iter().map(|(_, o)| *o).fold(lb, u64::max);
        let mut k = above.partition_point(|(_, o)| *o <= region_max);
        loop {
            // Never split a run of equal labels across the boundary: keep
            // the reasoning simple even though equal labels only belong to
            // edge-unrelated nodes.
            while k < above.len() && above[k].1 == above[k - 1].1 {
                k += 1;
            }
            if k == above.len() {
                break;
            }
            if (above[k].1 - floor) / (k as u64 + 1) >= target {
                break;
            }
            k += 1;
        }
        let next = if k < above.len() { above[k].1 } else { u64::MAX };
        let stride = ((next - floor) / (k as u64 + 1)).min(self.effective_spacing());
        if stride == 0 {
            // Pathological (label space truly saturated in this span):
            // fall back to the full spread.
            self.renumber_spread();
            return;
        }
        // Composite key: region nodes act as if labeled `lb` and sort
        // before `from` (flag 0 vs 1); everyone else keeps position by old
        // label. The old label tie-breaks region-internal order.
        let in_region: HashSet<N> = region.iter().map(|(n, _)| *n).collect();
        let window = &mut above[..k];
        window.sort_unstable_by_key(|(n, o)| {
            if in_region.contains(n) {
                (lb, 0u8, *o)
            } else {
                (*o, 1u8, *o)
            }
        });
        for (i, (n, _)) in window.iter().enumerate() {
            self.ord.insert(*n, floor + stride * (i as u64 + 1));
        }
        self.telemetry.nodes_relabeled += k as u64;
        if k == above.len() {
            // The window reached the top of the order: the next appended
            // node must land above the respaced labels.
            self.next_ord = floor + stride * (k as u64);
        }
    }

    /// The pre-gap dense Pearce–Kelly repair, retained as the benchmark
    /// baseline behind [`ReorderStrategy::DenseRedistribute`]: discover the
    /// forward region (transitive dependencies of `to` at or above
    /// `ord(from)`) and the backward region (transitive dependants of
    /// `from` at or below `ord(to)`), then redistribute the union's
    /// existing labels — forward region first (it must end up below),
    /// backward region second — preserving each region's relative order.
    /// Returns `false` when the edge closed a cycle. Allocates its region
    /// vectors, visited set and label pool on every violation.
    fn restore_order_dense(&mut self, from: N, to: N) -> bool {
        self.telemetry.violations += 1;
        self.telemetry.slow_path_allocs += 1;
        let lb = self.ord[&from];
        let ub = self.ord[&to];
        debug_assert!(lb < ub, "dense labels are distinct");

        // Forward region: everything `to` depends on, pruned below `lb`.
        let mut fwd: Vec<(N, u64)> = Vec::new();
        let mut visited: HashSet<N> = HashSet::new();
        let mut stack = vec![to];
        visited.insert(to);
        while let Some(n) = stack.pop() {
            if n == from {
                // `to` transitively depends on `from`: the new edge closes
                // a cycle.
                return false;
            }
            fwd.push((n, self.ord[&n]));
            if let Some(adj) = self.nodes.get(&n) {
                for next in adj.out.keys() {
                    if self.ord[next] >= lb && visited.insert(*next) {
                        stack.push(*next);
                    }
                }
            }
        }

        // Backward region: everything depending on `from`, pruned above `ub`.
        let mut bwd: Vec<(N, u64)> = Vec::new();
        let mut stack = vec![from];
        visited.clear();
        visited.insert(from);
        while let Some(n) = stack.pop() {
            bwd.push((n, self.ord[&n]));
            if let Some(adj) = self.nodes.get(&n) {
                for prev in &adj.incoming {
                    if self.ord[prev] <= ub && visited.insert(*prev) {
                        stack.push(*prev);
                    }
                }
            }
        }

        // Redistribute the union's positions: dependencies low, dependants
        // high, relative order within each region preserved.
        fwd.sort_unstable_by_key(|(_, o)| *o);
        bwd.sort_unstable_by_key(|(_, o)| *o);
        let mut pool: Vec<u64> = fwd.iter().chain(bwd.iter()).map(|(_, o)| *o).collect();
        pool.sort_unstable();
        self.telemetry.nodes_relabeled += pool.len() as u64;
        for ((n, _), slot) in fwd.iter().chain(bwd.iter()).zip(pool) {
            self.ord.insert(*n, slot);
        }
        true
    }

    /// Kahn's algorithm over the current graph: gap-spaced labels for every
    /// node, or `None` if the graph is cyclic. `a -> b` makes `a` depend on
    /// `b`, so a node becomes ready (and gets the next-lowest label) once
    /// all its dependencies are placed.
    fn kahn_assign(&self, spacing: u64) -> Option<(HashMap<N, u64>, u64)> {
        let mut in_degree: HashMap<N, usize> = self
            .nodes
            .iter()
            .map(|(n, adj)| (*n, adj.out.len()))
            .collect();
        // Nodes with no outgoing dependencies come first (lowest labels).
        let mut ready: Vec<N> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        let mut label = 0u64;
        let mut assigned: HashMap<N, u64> = HashMap::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            label += spacing;
            assigned.insert(n, label);
            if let Some(adj) = self.nodes.get(&n) {
                for dependant in &adj.incoming {
                    let d = in_degree.get_mut(dependant).expect("node exists");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(*dependant);
                    }
                }
            }
        }
        (assigned.len() == self.nodes.len()).then_some((assigned, label))
    }

    /// The label spacing that keeps `node_count` gap-spaced labels inside
    /// `u64` with room to spare.
    fn effective_spacing(&self) -> u64 {
        let denom = self.nodes.len() as u64 + 2;
        self.spacing.min(u64::MAX / denom).max(1)
    }

    /// Attempt to rebuild the topological order from scratch. Succeeds —
    /// restoring the fast pruned checks — exactly when the graph is
    /// currently acyclic.
    fn try_rebuild_order(&mut self) {
        if let Some((assigned, top)) = self.kahn_assign(self.effective_spacing()) {
            self.ord = assigned;
            self.next_ord = top;
            self.order_valid = true;
        }
    }

    /// Full spread renumbering: reassign every label with fresh gaps.
    /// Reached when `add_node` runs out of label space at the top, or as
    /// the defensive fallback when even [`Self::renumber_window`] finds a
    /// saturated span. (Repair-time gap exhaustion takes the windowed pass
    /// instead.)
    fn renumber_spread(&mut self) {
        self.telemetry.renumber_events += 1;
        match self.kahn_assign(self.effective_spacing()) {
            Some((assigned, top)) => {
                self.ord = assigned;
                self.next_ord = top;
                self.order_valid = true;
            }
            None => {
                // Cyclic (only reachable from the `add_node` overflow path
                // while the order is already invalid): labels are unused
                // until a removal makes the graph acyclic and rebuilds, so
                // any distinct assignment will do.
                let spacing = self.effective_spacing();
                let keys: Vec<N> = self.nodes.keys().copied().collect();
                let mut label = 0u64;
                for n in keys {
                    label += spacing;
                    self.ord.insert(n, label);
                }
                self.next_ord = label;
            }
        }
    }

    /// `true` while the maintained topological order is intact (it is for
    /// every graph whose edges were vetted through
    /// [`Self::would_close_cycle`], i.e. always on the scheduler's path).
    pub fn order_is_valid(&self) -> bool {
        self.order_valid
    }

    /// The maintained topological label of a node (diagnostics/tests).
    /// Labels are sparse: only their relative order is meaningful.
    pub fn order_position(&self, n: N) -> Option<u64> {
        self.ord.get(&n).copied()
    }

    /// The reorder telemetry accumulated so far (see [`OrderTelemetry`]).
    pub fn order_telemetry(&self) -> OrderTelemetry {
        self.telemetry
    }

    /// The active violation-repair strategy.
    pub fn reorder_strategy(&self) -> ReorderStrategy {
        self.reorder
    }

    /// Select the violation-repair strategy. Call on a fresh graph (before
    /// any edge insert): each repair assumes its own label layout.
    pub fn set_reorder_strategy(&mut self, strategy: ReorderStrategy) {
        self.reorder = strategy;
    }

    /// Override the gap between freshly assigned labels (clamped to at
    /// least 1). Meant for tests and benchmarks that force gap exhaustion;
    /// production graphs keep the default 2³² spacing. Affects labels
    /// assigned from now on only.
    pub fn set_label_spacing(&mut self, spacing: u64) {
        self.spacing = spacing.max(1);
    }

    /// Export the graph as a plain adjacency map over distinct `(from, to)`
    /// pairs — the input shape of the [`crate::cycle`] oracle algorithms.
    pub fn to_adjacency(&self) -> HashMap<N, Vec<N>> {
        self.nodes
            .iter()
            .map(|(n, adj)| (*n, adj.out.keys().copied().collect()))
            .collect()
    }

    /// Visit every distinct `(from, to, kind)` edge together with its
    /// multiplicity. Used by the sharding layer to bulk-mirror a shard's
    /// local graph into the cross-shard escalation graph when the shard
    /// becomes entangled. Iteration order is unspecified.
    pub fn for_each_edge(&self, mut f: impl FnMut(N, N, EdgeKind, u32)) {
        for (from, adj) in &self.nodes {
            for (to, counts) in &adj.out {
                if counts.wait_for > 0 {
                    f(*from, *to, EdgeKind::WaitFor, counts.wait_for);
                }
                if counts.commit_dep > 0 {
                    f(*from, *to, EdgeKind::CommitDep, counts.commit_dep);
                }
            }
        }
    }

    /// Remove one logical edge `from -> to` of the given kind (decrement the
    /// multiplicity). Returns `true` if such an edge existed.
    pub fn remove_edge(&mut self, from: N, to: N, kind: EdgeKind) -> bool {
        let Some(from_adj) = self.nodes.get_mut(&from) else {
            return false;
        };
        let Some(counts) = from_adj.out.get_mut(&to) else {
            return false;
        };
        let slot = counts.get_mut(kind);
        if *slot == 0 {
            return false;
        }
        *slot -= 1;
        if counts.is_empty() {
            from_adj.out.remove(&to);
            if let Some(to_adj) = self.nodes.get_mut(&to) {
                to_adj.incoming.remove(&from);
            }
            if !self.order_valid {
                self.try_rebuild_order();
            }
        }
        true
    }

    /// Remove **all** outgoing edges of the given kind from a node
    /// (regardless of multiplicity). Used when a blocked transaction's
    /// pending request is retried: its old wait-for edges are dropped before
    /// the request is re-classified.
    pub fn clear_out_edges(&mut self, from: N, kind: EdgeKind) {
        let Some(from_adj) = self.nodes.get_mut(&from) else {
            return;
        };
        let mut emptied = Vec::new();
        for (to, counts) in from_adj.out.iter_mut() {
            *counts.get_mut(kind) = 0;
            if counts.is_empty() {
                emptied.push(*to);
            }
        }
        for to in &emptied {
            from_adj.out.remove(to);
        }
        let removed_pairs = !emptied.is_empty();
        for to in emptied {
            if let Some(to_adj) = self.nodes.get_mut(&to) {
                to_adj.incoming.remove(&from);
            }
        }
        if removed_pairs && !self.order_valid {
            self.try_rebuild_order();
        }
    }

    /// Multiplicity of `from -> to` edges of the given kind.
    pub fn edge_multiplicity(&self, from: N, to: N, kind: EdgeKind) -> u32 {
        self.nodes
            .get(&from)
            .and_then(|a| a.out.get(&to))
            .map(|c| c.get(kind))
            .unwrap_or(0)
    }

    /// `true` if there is at least one `from -> to` edge of the given kind.
    pub fn has_edge(&self, from: N, to: N, kind: EdgeKind) -> bool {
        self.edge_multiplicity(from, to, kind) > 0
    }

    /// `true` if there is at least one `from -> to` edge of any kind.
    pub fn has_any_edge(&self, from: N, to: N) -> bool {
        self.nodes
            .get(&from)
            .and_then(|a| a.out.get(&to))
            .map(|c| !c.is_empty())
            .unwrap_or(false)
    }

    /// Outgoing neighbours of a node (any edge kind).
    pub fn out_neighbors(&self, n: N) -> Vec<N> {
        self.nodes
            .get(&n)
            .map(|a| a.out.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Outgoing neighbours connected by at least one edge of the given kind.
    pub fn out_neighbors_kind(&self, n: N, kind: EdgeKind) -> Vec<N> {
        self.nodes
            .get(&n)
            .map(|a| {
                a.out
                    .iter()
                    .filter(|(_, c)| c.get(kind) > 0)
                    .map(|(t, _)| *t)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Incoming neighbours of a node (any edge kind).
    pub fn in_neighbors(&self, n: N) -> Vec<N> {
        self.nodes
            .get(&n)
            .map(|a| a.incoming.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of distinct targets this node points at (any edge kind).
    pub fn out_degree(&self, n: N) -> usize {
        self.nodes.get(&n).map(|a| a.out.len()).unwrap_or(0)
    }

    /// Number of distinct targets this node points at with the given kind.
    pub fn out_degree_kind(&self, n: N, kind: EdgeKind) -> usize {
        self.nodes
            .get(&n)
            .map(|a| a.out.values().filter(|c| c.get(kind) > 0).count())
            .unwrap_or(0)
    }

    /// Nodes whose out-degree (any kind) is zero, in ascending node order.
    /// The commit protocol commits pseudo-committed transactions exactly
    /// when they appear here; the deterministic order keeps cascade-commit
    /// sequences (and everything downstream of their events) reproducible.
    pub fn zero_out_degree_nodes(&self) -> Vec<N> {
        let mut nodes: Vec<N> = self
            .nodes
            .iter()
            .filter(|(_, a)| a.out.is_empty())
            .map(|(n, _)| *n)
            .collect();
        nodes.sort_unstable();
        nodes
    }

    /// How many times a cycle check (`would_close_cycle*`, `has_cycle`,
    /// `find_cycle`) has been invoked on this graph. The simulation
    /// study reports this as the *cycle check ratio*.
    pub fn cycle_checks(&self) -> u64 {
        self.cycle_checks
    }

    /// Reset the cycle-check counter.
    pub fn reset_cycle_checks(&mut self) {
        self.cycle_checks = 0;
    }

    /// Would adding edges `from -> t` (for every `t` in `targets`) close a
    /// cycle? Equivalently: is `from` reachable from any target using edges
    /// that satisfy `filter`?
    ///
    /// The check is performed **without** mutating the graph, so the caller
    /// can decide to abort the requester instead of inserting the edges.
    ///
    /// While the topological order is intact the search is pruned by it:
    /// labels strictly decrease along every edge, so a path back to `from`
    /// can only pass through nodes labeled strictly above `ord(from)`.
    /// Targets at or below `from`'s label — the common case, since requests
    /// usually point at *older* transactions — are dismissed without any
    /// traversal (nodes other than `from` *sharing* its label cannot reach
    /// it either, which is why the dismissal is `<=` rather than `<`), and
    /// the rest of the search never leaves the affected label window. The
    /// pruning is sound for any edge-kind `filter`, because the order is
    /// maintained over the union of both kinds and any filtered subgraph of
    /// an ordered graph respects the same order.
    pub fn would_close_cycle_filtered(
        &mut self,
        from: N,
        targets: &[N],
        filter: impl Fn(EdgeKind) -> bool,
    ) -> bool {
        self.cycle_checks += 1;
        let Some(&from_ord) = self.ord.get(&from) else {
            // `from` is not in the graph, so nothing can reach it.
            return false;
        };
        let mut stack: Vec<N> = Vec::new();
        let mut visited: HashSet<N> = HashSet::new();
        // Note: a target equal to `from` would be a self-edge, which is
        // never inserted and therefore cannot close a cycle.
        for t in targets {
            if *t == from || !self.nodes.contains_key(t) {
                continue;
            }
            if self.order_valid && self.ord[t] <= from_ord {
                // `t` sits at or below `from`'s label: every node reachable
                // from `t` sits strictly below `t`, so `from` is
                // unreachable (`t != from` was checked above).
                continue;
            }
            if visited.insert(*t) {
                stack.push(*t);
            }
        }
        while let Some(n) = stack.pop() {
            if n == from {
                return true;
            }
            let Some(adj) = self.nodes.get(&n) else {
                continue;
            };
            for (next, counts) in &adj.out {
                let passes = (filter(EdgeKind::WaitFor) && counts.wait_for > 0)
                    || (filter(EdgeKind::CommitDep) && counts.commit_dep > 0);
                if !passes {
                    continue;
                }
                if *next == from {
                    return true;
                }
                if self.order_valid && self.ord[next] <= from_ord {
                    continue;
                }
                if visited.insert(*next) {
                    stack.push(*next);
                }
            }
        }
        false
    }

    /// [`Self::would_close_cycle_filtered`] over both edge kinds.
    pub fn would_close_cycle(&mut self, from: N, targets: &[N]) -> bool {
        self.would_close_cycle_filtered(from, targets, |_| true)
    }

    /// Oracle-backed equivalent of [`Self::would_close_cycle`]: copy the
    /// graph into a plain adjacency map, add the hypothetical edges and run
    /// a from-scratch Tarjan SCC pass. The insert closes a cycle *through
    /// the new edges* exactly when `from` ends up in the same strongly
    /// connected component as one of the targets. This is the
    /// pre-incremental "old path", retained for differential tests and the
    /// old-vs-new benchmark; it must always agree with the incremental
    /// check.
    pub fn would_close_cycle_oracle(&mut self, from: N, targets: &[N]) -> bool {
        self.cycle_checks += 1;
        let mut adj = self.to_adjacency();
        let entry = adj.entry(from).or_default();
        for t in targets {
            if *t != from {
                entry.push(*t);
            }
        }
        for t in targets {
            adj.entry(*t).or_default();
        }
        let components = crate::cycle::strongly_connected_components(&adj);
        components.iter().any(|component| {
            component.contains(&from) && targets.iter().any(|t| *t != from && component.contains(t))
        })
    }

    /// Find a path (over both edge kinds) from any of `starts` to `goal`,
    /// if one exists. Combined with the edges a requester is about to add,
    /// the returned path is exactly the set of transactions participating in
    /// the cycle the request would close — which is what victim-selection
    /// policies other than "abort the requester" need to inspect.
    ///
    /// The search explores starts and neighbours in ascending node order,
    /// so the returned path — and any victim chosen from it — is
    /// deterministic for a given graph. While the maintained order is
    /// intact the search is additionally pruned by it: any node on a path
    /// to `goal` must be labeled strictly above `ord(goal)`, so lower- or
    /// equal-labeled neighbours are dead ends. Pruning cannot change the
    /// returned path (pruned subtrees contain no node that reaches `goal`,
    /// and only goal-reaching nodes ever sit on the reconstructed parent
    /// chain), it just skips the dead ends the plain DFS would wade
    /// through.
    pub fn path_from_any(&self, starts: &[N], goal: N) -> Option<Vec<N>> {
        let goal_ord = self.order_valid.then(|| self.ord.get(&goal).copied()).flatten();
        let mut parent: HashMap<N, N> = HashMap::new();
        let mut visited: HashSet<N> = HashSet::new();
        let mut stack: Vec<N> = Vec::new();
        let mut ordered_starts: Vec<N> = starts.to_vec();
        ordered_starts.sort_unstable();
        for s in ordered_starts {
            if s != goal {
                if let (Some(goal_ord), Some(&s_ord)) = (goal_ord, self.ord.get(&s)) {
                    if s_ord <= goal_ord {
                        continue;
                    }
                }
            }
            if visited.insert(s) {
                stack.push(s);
            }
        }
        while let Some(n) = stack.pop() {
            if n == goal {
                let mut path = vec![goal];
                let mut cur = goal;
                while let Some(p) = parent.get(&cur) {
                    cur = *p;
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            let Some(adj) = self.nodes.get(&n) else {
                continue;
            };
            let mut nexts: Vec<N> = adj
                .out
                .iter()
                .filter(|(_, counts)| !counts.is_empty())
                .map(|(next, _)| *next)
                .collect();
            nexts.sort_unstable();
            for next in nexts {
                if next != goal {
                    if let Some(goal_ord) = goal_ord {
                        if self.ord[&next] <= goal_ord {
                            continue;
                        }
                    }
                }
                if visited.insert(next) {
                    parent.insert(next, n);
                    stack.push(next);
                }
            }
        }
        None
    }

    /// Full-graph acyclicity check over both edge kinds (used by tests and
    /// invariant assertions rather than the hot path). While the maintained
    /// order is intact the graph is acyclic by construction and this is
    /// O(1).
    pub fn has_cycle(&mut self) -> bool {
        self.cycle_checks += 1;
        if self.order_valid {
            return false;
        }
        self.find_cycle_internal(|_| true).is_some()
    }

    /// Find some cycle (as a node sequence) if one exists, considering only
    /// edges that satisfy `filter`.
    pub fn find_cycle(&mut self, filter: impl Fn(EdgeKind) -> bool) -> Option<Vec<N>> {
        self.cycle_checks += 1;
        if self.order_valid {
            // A subgraph of an acyclic graph is acyclic.
            return None;
        }
        self.find_cycle_internal(filter)
    }

    fn find_cycle_internal(&self, filter: impl Fn(EdgeKind) -> bool) -> Option<Vec<N>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<N, Color> = self.nodes.keys().map(|n| (*n, Color::White)).collect();
        let mut parent: HashMap<N, N> = HashMap::new();

        // Iterative DFS with explicit stack to avoid recursion depth limits.
        let node_list: Vec<N> = self.nodes.keys().copied().collect();
        for root in node_list {
            if color[&root] != Color::White {
                continue;
            }
            let mut stack = vec![(root, false)];
            while let Some((n, processed)) = stack.pop() {
                if processed {
                    color.insert(n, Color::Black);
                    continue;
                }
                if color[&n] == Color::Black {
                    continue;
                }
                color.insert(n, Color::Gray);
                stack.push((n, true));
                let Some(adj) = self.nodes.get(&n) else {
                    continue;
                };
                for (next, counts) in &adj.out {
                    let passes = (filter(EdgeKind::WaitFor) && counts.wait_for > 0)
                        || (filter(EdgeKind::CommitDep) && counts.commit_dep > 0);
                    if !passes {
                        continue;
                    }
                    match color[next] {
                        Color::White => {
                            parent.insert(*next, n);
                            stack.push((*next, false));
                        }
                        Color::Gray => {
                            // Found a back edge n -> next: reconstruct cycle.
                            let mut cycle = vec![*next, n];
                            let mut cur = n;
                            while cur != *next {
                                match parent.get(&cur) {
                                    Some(p) => {
                                        cur = *p;
                                        if cur != *next {
                                            cycle.push(cur);
                                        }
                                    }
                                    None => break,
                                }
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                }
            }
        }
        None
    }

    /// Check the topological-order invariant (tests/debugging): while the
    /// order is valid, every edge `a -> b` must satisfy `ord[b] < ord[a]`,
    /// and every node must carry a position.
    pub fn debug_check_order(&self) -> Result<(), String> {
        for n in self.nodes.keys() {
            if !self.ord.contains_key(n) {
                return Err(format!("node {n:?} has no order position"));
            }
        }
        if !self.order_valid {
            return Ok(());
        }
        for (a, adj) in &self.nodes {
            for b in adj.out.keys() {
                if self.ord[b] >= self.ord[a] {
                    return Err(format!(
                        "edge {a:?} -> {b:?} violates the order ({} >= {})",
                        self.ord[b], self.ord[a]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render the graph (diagnostics only).
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let mut nodes: Vec<N> = self.nodes.keys().copied().collect();
        nodes.sort();
        for n in nodes {
            let adj = &self.nodes[&n];
            let mut targets: Vec<N> = adj.out.keys().copied().collect();
            targets.sort();
            for t in targets {
                let c = adj.out[&t];
                if c.wait_for > 0 {
                    lines.push(format!("{n:?} -[wait-for x{}]-> {t:?}", c.wait_for));
                }
                if c.commit_dep > 0 {
                    lines.push(format!("{n:?} -[commit-dep x{}]-> {t:?}", c.commit_dep));
                }
            }
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type G = DependencyGraph<u64>;

    #[test]
    fn add_and_remove_nodes() {
        let mut g = G::new();
        assert_eq!(g.node_count(), 0);
        g.add_node(1);
        g.add_node(1);
        g.add_node(2);
        assert_eq!(g.node_count(), 2);
        assert!(g.contains_node(1));
        assert!(g.remove_node(1));
        assert!(!g.remove_node(1));
        assert_eq!(g.node_count(), 1);
        let nodes: Vec<u64> = g.nodes().collect();
        assert_eq!(nodes, vec![2]);
    }

    #[test]
    fn edges_are_reference_counted() {
        let mut g = G::new();
        assert!(g.add_edge(1, 2, EdgeKind::CommitDep));
        assert!(g.add_edge(1, 2, EdgeKind::CommitDep));
        assert!(g.add_edge(1, 2, EdgeKind::WaitFor));
        assert_eq!(g.edge_multiplicity(1, 2, EdgeKind::CommitDep), 2);
        assert_eq!(g.edge_multiplicity(1, 2, EdgeKind::WaitFor), 1);
        assert_eq!(g.edge_count(EdgeKind::CommitDep), 2);
        assert_eq!(g.edge_count(EdgeKind::WaitFor), 1);
        assert_eq!(g.edge_pair_count(), 1);

        assert!(g.remove_edge(1, 2, EdgeKind::CommitDep));
        assert!(g.has_edge(1, 2, EdgeKind::CommitDep), "one edge remains");
        assert!(g.remove_edge(1, 2, EdgeKind::CommitDep));
        assert!(!g.has_edge(1, 2, EdgeKind::CommitDep));
        assert!(!g.remove_edge(1, 2, EdgeKind::CommitDep));
        assert!(g.has_any_edge(1, 2), "wait-for edge still present");
        assert!(g.remove_edge(1, 2, EdgeKind::WaitFor));
        assert!(!g.has_any_edge(1, 2));
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = G::new();
        assert!(!g.add_edge(5, 5, EdgeKind::WaitFor));
        assert_eq!(g.edge_pair_count(), 0);
        assert!(!g.contains_node(5) || g.out_degree(5) == 0);
    }

    #[test]
    fn removing_a_node_removes_incident_edges() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(2, 3, EdgeKind::CommitDep);
        g.add_edge(3, 1, EdgeKind::CommitDep);
        assert!(g.remove_node(2));
        assert!(!g.has_any_edge(1, 2));
        assert!(!g.contains_node(2));
        assert!(g.has_edge(3, 1, EdgeKind::CommitDep));
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.in_neighbors(1), vec![3]);
    }

    #[test]
    fn clear_out_edges_only_clears_one_kind() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(1, 2, EdgeKind::CommitDep);
        g.add_edge(1, 3, EdgeKind::WaitFor);
        g.clear_out_edges(1, EdgeKind::WaitFor);
        assert!(!g.has_edge(1, 2, EdgeKind::WaitFor));
        assert!(g.has_edge(1, 2, EdgeKind::CommitDep));
        assert!(!g.has_any_edge(1, 3));
        assert_eq!(g.out_degree_kind(1, EdgeKind::WaitFor), 0);
        assert_eq!(g.out_degree_kind(1, EdgeKind::CommitDep), 1);
        // no-op on a missing node
        g.clear_out_edges(42, EdgeKind::WaitFor);
    }

    #[test]
    fn out_and_in_neighbors() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(1, 3, EdgeKind::CommitDep);
        g.add_edge(4, 1, EdgeKind::CommitDep);
        let mut out = g.out_neighbors(1);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3]);
        assert_eq!(g.out_neighbors_kind(1, EdgeKind::WaitFor), vec![2]);
        assert_eq!(g.out_neighbors_kind(1, EdgeKind::CommitDep), vec![3]);
        assert_eq!(g.in_neighbors(1), vec![4]);
        assert!(g.out_neighbors(99).is_empty());
        assert!(g.out_neighbors_kind(99, EdgeKind::WaitFor).is_empty());
        assert!(g.in_neighbors(99).is_empty());
    }

    #[test]
    fn zero_out_degree_nodes_reflects_commit_candidates() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep);
        g.add_edge(3, 1, EdgeKind::CommitDep);
        g.add_edge(3, 2, EdgeKind::CommitDep);
        let mut zeros = g.zero_out_degree_nodes();
        zeros.sort_unstable();
        assert_eq!(zeros, vec![1]);
        g.remove_node(1);
        let mut zeros = g.zero_out_degree_nodes();
        zeros.sort_unstable();
        assert_eq!(zeros, vec![2]);
    }

    #[test]
    fn would_close_cycle_detects_exactly_the_cycles() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep); // T2 depends on T1
        assert!(
            !g.would_close_cycle(3, &[1]),
            "3 -> 1 creates no cycle"
        );
        assert!(
            g.would_close_cycle(1, &[2]),
            "1 -> 2 plus existing 2 -> 1 closes a cycle"
        );
        g.add_edge(3, 2, EdgeKind::WaitFor);
        assert!(
            g.would_close_cycle(1, &[3]),
            "mixed-kind cycles (wait-for + commit-dep) are detected"
        );
        assert!(!g.would_close_cycle(1, &[]), "no targets, no cycle");
        assert!(g.cycle_checks() >= 4);
    }

    #[test]
    fn would_close_cycle_filtered_restricts_edge_kinds() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep);
        // Considering only wait-for edges, 1 -> 2 closes no cycle.
        assert!(!g.would_close_cycle_filtered(1, &[2], |k| k == EdgeKind::WaitFor));
        // Considering only commit-dep edges, it does.
        assert!(g.would_close_cycle_filtered(1, &[2], |k| k == EdgeKind::CommitDep));
    }

    #[test]
    fn has_cycle_and_find_cycle() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(2, 3, EdgeKind::CommitDep);
        assert!(!g.has_cycle());
        g.add_edge(3, 1, EdgeKind::WaitFor);
        assert!(g.has_cycle());
        let cycle = g.find_cycle(|_| true).expect("cycle exists");
        assert!(cycle.len() >= 2);
        // every consecutive pair in the cycle must be an edge
        for w in cycle.windows(2) {
            assert!(g.has_any_edge(w[0], w[1]), "cycle edge {:?}", w);
        }
        assert!(g.has_any_edge(*cycle.last().unwrap(), cycle[0]));
        // filtered search that excludes commit-dep edges finds no cycle
        assert!(g.find_cycle(|k| k == EdgeKind::WaitFor).is_none());
    }

    #[test]
    fn path_from_any_reports_cycle_participants() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep);
        g.add_edge(3, 2, EdgeKind::WaitFor);
        // If 1 were to add an edge to 3, the cycle would be 1 -> 3 -> 2 -> 1;
        // the existing path from 3 to 1 is [3, 2, 1].
        let path = g.path_from_any(&[3], 1).expect("path exists");
        assert_eq!(path, vec![3, 2, 1]);
        assert_eq!(g.path_from_any(&[1], 3), None);
        assert_eq!(g.path_from_any(&[], 1), None);
        assert_eq!(g.path_from_any(&[1], 1), Some(vec![1]));
    }

    #[test]
    fn cycle_check_counter_resets() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        let _ = g.has_cycle();
        let _ = g.would_close_cycle(2, &[1]);
        assert_eq!(g.cycle_checks(), 2);
        g.reset_cycle_checks();
        assert_eq!(g.cycle_checks(), 0);
    }

    #[test]
    fn render_mentions_both_edge_kinds() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(2, 3, EdgeKind::CommitDep);
        let r = g.render();
        assert!(r.contains("wait-for"));
        assert!(r.contains("commit-dep"));
        assert_eq!(EdgeKind::WaitFor.to_string(), "wait-for");
        assert_eq!(EdgeKind::CommitDep.to_string(), "commit-dep");
    }

    #[test]
    fn long_chains_do_not_overflow_the_stack() {
        // The DFS is iterative; a 100k-node chain plus a closing edge must
        // be handled without recursion issues. The chain is built tail
        // first so each insert's target already sits below its source —
        // the shape the scheduler produces (a transaction depends on
        // *older* transactions), which the incremental order handles in
        // O(1) per edge.
        let mut g = G::new();
        let n = 100_000u64;
        for i in (0..n).rev() {
            g.add_edge(i, i + 1, EdgeKind::CommitDep);
        }
        assert!(!g.has_cycle());
        g.debug_check_order().unwrap();
        g.add_edge(n, 0, EdgeKind::WaitFor);
        assert!(g.has_cycle());
        assert!(g.would_close_cycle(0, &[n]));
    }

    #[test]
    fn adversarial_insert_order_stays_correct() {
        // Inserting every edge in the order-violating direction (each
        // target fresher than its source) forces a reorder per insert.
        // That is the incremental order's worst case — quadratic in the
        // worst adversarial pattern, which never arises from the scheduler
        // because the dependency graph only ever holds live transactions —
        // but it must stay *correct*.
        let mut g = G::new();
        let n = 1_500u64;
        for i in 0..n {
            g.add_edge(i, i + 1, EdgeKind::CommitDep);
            debug_assert!(g.debug_check_order().is_ok());
        }
        assert!(g.order_is_valid());
        g.debug_check_order().unwrap();
        assert!(!g.has_cycle());
        assert!(g.would_close_cycle(n, &[0]));
        assert!(!g.would_close_cycle(0, &[n]), "edge n -> 0 already ordered");
        g.add_edge(n, 0, EdgeKind::WaitFor);
        assert!(g.has_cycle());
    }

    // ------------------------------------------------------------------
    // Incremental-order specific tests
    // ------------------------------------------------------------------

    #[test]
    fn order_invariant_holds_under_in_order_and_reversed_inserts() {
        // Dependencies inserted "new depends on old" never trigger a
        // reorder; the reversed direction triggers one per edge.
        let mut g = G::new();
        for i in 1..50u64 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
            g.debug_check_order().unwrap();
        }
        assert!(g.order_is_valid());

        let mut g = G::new();
        for i in (1..50u64).rev() {
            g.add_edge(i, i - 1, EdgeKind::WaitFor);
            g.debug_check_order().unwrap();
        }
        assert!(g.order_is_valid());
        // The chain's order is fully determined: position increases with id.
        for i in 1..50u64 {
            assert!(g.order_position(i - 1).unwrap() < g.order_position(i).unwrap());
        }
    }

    #[test]
    fn cycle_closing_insert_invalidates_and_removal_rebuilds() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(2, 3, EdgeKind::WaitFor);
        assert!(g.order_is_valid());
        g.add_edge(3, 1, EdgeKind::CommitDep); // closes a cycle
        assert!(!g.order_is_valid());
        assert!(g.has_cycle());
        // Checks still work (full-search fallback).
        assert!(g.would_close_cycle(3, &[1]) || g.has_cycle());
        // Removing the cycle edge rebuilds the order.
        assert!(g.remove_edge(3, 1, EdgeKind::CommitDep));
        assert!(g.order_is_valid());
        g.debug_check_order().unwrap();
        assert!(!g.has_cycle());

        // Same via node removal.
        g.add_edge(3, 1, EdgeKind::CommitDep);
        assert!(!g.order_is_valid());
        g.remove_node(3);
        assert!(g.order_is_valid());
        g.debug_check_order().unwrap();

        // And via clear_out_edges.
        g.add_edge(2, 3, EdgeKind::WaitFor);
        g.add_edge(3, 1, EdgeKind::WaitFor);
        assert!(!g.order_is_valid());
        g.clear_out_edges(3, EdgeKind::WaitFor);
        assert!(g.order_is_valid());
        g.debug_check_order().unwrap();
    }

    #[test]
    fn incremental_and_oracle_checks_agree() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep);
        g.add_edge(3, 2, EdgeKind::WaitFor);
        g.add_edge(4, 2, EdgeKind::CommitDep);
        for from in 1..=5u64 {
            for target in 1..=5u64 {
                let incremental = g.would_close_cycle(from, &[target]);
                let oracle = g.would_close_cycle_oracle(from, &[target]);
                assert_eq!(
                    incremental, oracle,
                    "from={from} target={target} disagree"
                );
            }
        }
    }

    #[test]
    fn to_adjacency_exports_all_pairs_and_isolated_nodes() {
        let mut g = G::new();
        g.add_edge(1, 2, EdgeKind::WaitFor);
        g.add_edge(1, 2, EdgeKind::CommitDep);
        g.add_node(9);
        let adj = g.to_adjacency();
        assert_eq!(adj[&1], vec![2]);
        assert!(adj[&2].is_empty());
        assert!(adj[&9].is_empty());
        assert!(!crate::cycle::has_cycle_scc(&adj));
    }

    // ------------------------------------------------------------------
    // Gap-label specific tests
    // ------------------------------------------------------------------

    #[test]
    fn small_violation_repair_is_allocation_free() {
        let mut g = G::new();
        // A 7-node chain hanging off node 1..=7, then a violating edge from
        // the older node 0 into its top: the forward region (7 nodes) fits
        // the inline scratch and the gap below ord(0) is huge. Nodes are
        // created in ascending order first so the chain edges themselves
        // (new depends on old) never violate.
        for n in 0..=7u64 {
            g.add_node(n);
        }
        for i in 2..=7u64 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        let before = g.order_telemetry();
        assert_eq!(before.slow_path_allocs, 0);
        g.add_edge(0, 7, EdgeKind::WaitFor);
        g.debug_check_order().unwrap();
        let t = g.order_telemetry();
        assert_eq!(t.violations, before.violations + 1);
        assert_eq!(t.nodes_relabeled, before.nodes_relabeled + 7);
        assert_eq!(t.slow_path_allocs, 0, "small regions must not allocate");
        assert_eq!(t.renumber_events, 0);
        assert_eq!(t.window_renumber_events, 0);
    }

    #[test]
    fn oversized_region_takes_the_counted_slow_path() {
        let mut g = G::new();
        // A 40-node chain: the forward region spills the 32-slot scratch.
        for n in 0..=40u64 {
            g.add_node(n);
        }
        for i in 2..=40u64 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        g.add_edge(0, 40, EdgeKind::WaitFor);
        g.debug_check_order().unwrap();
        let t = g.order_telemetry();
        assert_eq!(t.nodes_relabeled, 40);
        assert_eq!(t.slow_path_allocs, 1, "spilled region counts one alloc");
    }

    #[test]
    fn gap_exhaustion_triggers_windowed_renumbering() {
        let mut g = G::new();
        g.set_label_spacing(1);
        // Dense labels leave no gaps: ascending chain inserts violate the
        // order every time and immediately exhaust the gap below.
        for i in 0..40u64 {
            g.add_edge(i, i + 1, EdgeKind::CommitDep);
            g.debug_check_order().unwrap();
        }
        assert!(g.order_is_valid());
        let t = g.order_telemetry();
        assert_eq!(t.violations, 40);
        assert!(
            t.window_renumber_events > 0,
            "dense labels must force windowed renumbering"
        );
        assert_eq!(
            t.renumber_events, 0,
            "repair-time exhaustion must never fall back to the full spread"
        );
        assert!(!g.would_close_cycle(0, &[40]));
        assert!(g.would_close_cycle(40, &[0]));
    }

    #[test]
    fn windowed_renumbering_leaves_labels_below_the_floor_untouched() {
        let mut g = G::new();
        g.set_label_spacing(1);
        // A low cluster 0..=5 (ascending creation, edges new -> old: no
        // violations), then a second cluster whose violation repairs are
        // floored *above* the low cluster by a pruned dependency on node 5.
        for n in 0..=5u64 {
            g.add_node(n);
        }
        for i in 0..5u64 {
            g.add_edge(i + 1, i, EdgeKind::CommitDep);
        }
        for n in 100..=140u64 {
            g.add_node(n);
        }
        let low_labels: Vec<_> = (0..=5u64).map(|n| g.order_position(n).unwrap()).collect();
        for i in 100..140u64 {
            g.add_edge(i + 1, 5, EdgeKind::CommitDep); // in order: no violation
            g.add_edge(i, i + 1, EdgeKind::CommitDep); // violates every time
            g.debug_check_order().unwrap();
        }
        assert!(g.order_telemetry().window_renumber_events > 0);
        assert_eq!(g.order_telemetry().renumber_events, 0);
        let after: Vec<_> = (0..=5u64).map(|n| g.order_position(n).unwrap()).collect();
        assert_eq!(
            low_labels, after,
            "the window is floored above the pruned dependency; \
             labels below it must not move"
        );
    }

    #[test]
    fn label_space_overflow_on_append_renumbers() {
        let mut g = G::new();
        g.set_label_spacing(u64::MAX / 4);
        for i in 0..16u64 {
            g.add_node(i);
        }
        assert!(g.order_telemetry().renumber_events > 0);
        // Every node still carries a distinct-by-need, consistent label.
        g.add_edge(7, 3, EdgeKind::WaitFor);
        g.debug_check_order().unwrap();
    }

    #[test]
    fn dense_strategy_still_repairs_and_counts_allocs() {
        let mut g = G::new();
        g.set_reorder_strategy(ReorderStrategy::DenseRedistribute);
        assert_eq!(g.reorder_strategy(), ReorderStrategy::DenseRedistribute);
        for i in 0..30u64 {
            g.add_edge(i, i + 1, EdgeKind::CommitDep);
            g.debug_check_order().unwrap();
        }
        let t = g.order_telemetry();
        assert_eq!(t.violations, 30);
        assert_eq!(t.slow_path_allocs, 30, "the dense repair always allocates");
        assert!(g.would_close_cycle(30, &[0]));
        assert!(!g.would_close_cycle(0, &[30]));
        // Cycle detection still leaves labels untouched and flags the order.
        g.add_edge(30, 0, EdgeKind::WaitFor);
        assert!(!g.order_is_valid());
        assert!(g.has_cycle());
    }

    #[test]
    fn telemetry_accumulates_and_strategy_displays() {
        let mut a = OrderTelemetry {
            violations: 1,
            nodes_relabeled: 2,
            slow_path_allocs: 3,
            renumber_events: 4,
            window_renumber_events: 5,
        };
        let b = OrderTelemetry {
            violations: 10,
            nodes_relabeled: 20,
            slow_path_allocs: 30,
            renumber_events: 40,
            window_renumber_events: 50,
        };
        a.accumulate(&b);
        assert_eq!(a.violations, 11);
        assert_eq!(a.nodes_relabeled, 22);
        assert_eq!(a.slow_path_allocs, 33);
        assert_eq!(a.renumber_events, 44);
        assert_eq!(a.window_renumber_events, 55);
        assert_eq!(ReorderStrategy::GapLabel.to_string(), "gaplabel");
        assert_eq!(ReorderStrategy::DenseRedistribute.to_string(), "densereorder");
        assert_eq!(ReorderStrategy::default(), ReorderStrategy::GapLabel);
    }

    #[test]
    fn cycle_closing_insert_leaves_labels_untouched() {
        let mut g = G::new();
        g.add_edge(2, 1, EdgeKind::CommitDep);
        g.add_edge(3, 2, EdgeKind::CommitDep);
        let labels: Vec<_> = (1..=3).map(|n| g.order_position(n)).collect();
        g.add_edge(1, 3, EdgeKind::WaitFor); // closes 1 -> 3 -> 2 -> 1
        assert!(!g.order_is_valid());
        let after: Vec<_> = (1..=3).map(|n| g.order_position(n)).collect();
        assert_eq!(labels, after, "failed repairs must not move labels");
    }

    #[test]
    fn reorder_preserves_unrelated_positions() {
        let mut g = G::new();
        // Build two disjoint chains, then connect them "backwards" so a
        // reorder is forced; the untouched chain must stay consistent.
        for i in 1..10u64 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        for i in 101..110u64 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        // 0 (the oldest of chain A) now depends on 109 (the newest of B).
        g.add_edge(0, 109, EdgeKind::WaitFor);
        assert!(g.order_is_valid());
        g.debug_check_order().unwrap();
        assert!(!g.would_close_cycle(109, &[100]));
        assert!(g.would_close_cycle(109, &[0]));
    }
}
