//! # sbcc-graph — the dependency-graph substrate
//!
//! The concurrency-control protocol of *Semantics-Based Concurrency
//! Control: Beyond Commutativity* maintains a single graph per system that
//! mixes two kinds of edges (Section 4.2):
//!
//! * **wait-for** edges — a blocked transaction points at the transactions
//!   whose uncommitted, non-recoverable operations it is waiting on
//!   (classic deadlock detection), and
//! * **commit-dependency** edges — a transaction that executed a
//!   *recoverable* (but non-commuting) operation points at the transactions
//!   whose earlier uncommitted operations it is recoverable relative to;
//!   if both commit, the pointee must commit first.
//!
//! Serializability requires the combined graph to stay acyclic (Lemma 4);
//! a request that would close a cycle causes the requesting transaction to
//! abort. "The detection of commit dependency cycles is combined with the
//! deadlock detection scheme that uses wait-for graphs", which is exactly
//! what [`DependencyGraph`] provides: one structure, typed edges, and
//! would-close-cycle checks that consider both edge kinds (or a filtered
//! subset, for analyses that only want the wait-for sub-graph).
//!
//! The crate is generic over the node identifier type so it can be reused
//! for transaction ids, object ids, or test scaffolding.
//!
//! # Algorithm notes: the maintained topological order
//!
//! The scheduler calls [`DependencyGraph::would_close_cycle`] on every
//! blocking or recoverable request, so the graph maintains an incremental
//! topological order (Pearce–Kelly) that prunes each check to a small
//! label window. Since the gap-label rework the order lives in sparse
//! `u64` labels: fresh nodes are placed one large gap (2³² by default)
//! above everything, and an order-violating insert is repaired by
//! relabeling **only the forward affected region** into the gap below the
//! source's label — in fixed inline scratch buffers, without heap
//! allocation, whenever the region holds at most 32 nodes. The
//! [`graph::OrderTelemetry`] counters prove the claim at runtime, and
//! [`graph::ReorderStrategy::DenseRedistribute`] keeps the pre-gap repair
//! alive as a benchmark baseline.
//!
//! | operation | dense redistribute (pre-gap) | gap-labeled |
//! |---|---|---|
//! | fresh node | O(1) | O(1) |
//! | in-order edge insert | O(1) | O(1) |
//! | violating insert, forward region *F*, backward region *B* | discover *F* **and** *B*, sort both, re-pack the union into its sorted position pool — Θ((\|F\|+\|B\|) log(\|F\|+\|B\|)) and ≥ 4 heap allocations per violation | discover and relabel *F* only — Θ(\|F\| log \|F\|), **0 allocations** for \|F\| ≤ 32 |
//! | gap exhaustion | n/a (positions stay dense) | amortised spread renumbering, O(V + E) but exponentially rare per gap |
//! | cycle check, target labeled at or below requester | O(1) dismissal | O(1) dismissal |
//! | node / edge removal | O(degree) | O(degree) |
//!
//! Soundness of the forward-only relabel: labels strictly decrease along
//! every edge, so the region's external *dependencies* all sit at or below
//! the tracked `floor` label and its external *dependants* all sit at or
//! above the violated bound — placing the region strictly between the two,
//! preserving its internal order, re-establishes the invariant without
//! touching any other node. The differential proptests in
//! `tests/incremental_oracle.rs` pin the maintained order against the
//! from-scratch SCC oracle (and the dense repair) across arbitrary
//! edge-insert/remove sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod graph;
pub mod serialization;

pub use cycle::{strongly_connected_components, CycleSearch};
pub use graph::{DependencyGraph, EdgeKind, NodeId, OrderTelemetry, ReorderStrategy};
pub use serialization::SerializationGraph;
