//! # sbcc-graph — the dependency-graph substrate
//!
//! The concurrency-control protocol of *Semantics-Based Concurrency
//! Control: Beyond Commutativity* maintains a single graph per system that
//! mixes two kinds of edges (Section 4.2):
//!
//! * **wait-for** edges — a blocked transaction points at the transactions
//!   whose uncommitted, non-recoverable operations it is waiting on
//!   (classic deadlock detection), and
//! * **commit-dependency** edges — a transaction that executed a
//!   *recoverable* (but non-commuting) operation points at the transactions
//!   whose earlier uncommitted operations it is recoverable relative to;
//!   if both commit, the pointee must commit first.
//!
//! Serializability requires the combined graph to stay acyclic (Lemma 4);
//! a request that would close a cycle causes the requesting transaction to
//! abort. "The detection of commit dependency cycles is combined with the
//! deadlock detection scheme that uses wait-for graphs", which is exactly
//! what [`DependencyGraph`] provides: one structure, typed edges, and
//! would-close-cycle checks that consider both edge kinds (or a filtered
//! subset, for analyses that only want the wait-for sub-graph).
//!
//! The crate is generic over the node identifier type so it can be reused
//! for transaction ids, object ids, or test scaffolding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycle;
pub mod graph;
pub mod serialization;

pub use cycle::{strongly_connected_components, CycleSearch};
pub use graph::{DependencyGraph, EdgeKind, NodeId};
pub use serialization::SerializationGraph;
