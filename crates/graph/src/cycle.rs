//! Stand-alone cycle / reachability algorithms used by tests, invariant
//! checks and the experiment harness.
//!
//! The hot-path checks live on [`crate::DependencyGraph`] itself; the
//! functions here operate on plain adjacency lists so they can be applied to
//! any directed graph (serialization graphs, object-level commit-dependency
//! graphs, …).

use std::collections::HashMap;

use crate::graph::NodeId;

/// Compute the strongly connected components of a directed graph given as
/// an adjacency map. Components are returned in reverse topological order
/// (Tarjan's algorithm, implemented iteratively).
pub fn strongly_connected_components<N: NodeId>(adj: &HashMap<N, Vec<N>>) -> Vec<Vec<N>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }

    let mut states: HashMap<N, NodeState> = HashMap::with_capacity(adj.len());
    for n in adj.keys() {
        states.insert(*n, NodeState::default());
    }
    // Nodes that only appear as targets.
    for targets in adj.values() {
        for t in targets {
            states.entry(*t).or_default();
        }
    }

    let mut next_index = 0usize;
    let mut stack: Vec<N> = Vec::new();
    let mut components: Vec<Vec<N>> = Vec::new();

    let all_nodes: Vec<N> = states.keys().copied().collect();
    let empty: Vec<N> = Vec::new();

    for root in all_nodes {
        if states[&root].index.is_some() {
            continue;
        }
        // Explicit DFS frame: (node, next child position).
        let mut frames: Vec<(N, usize)> = vec![(root, 0)];
        while let Some((node, child_pos)) = frames.pop() {
            if child_pos == 0 {
                let st = states.get_mut(&node).expect("state exists");
                st.index = Some(next_index);
                st.lowlink = next_index;
                st.on_stack = true;
                next_index += 1;
                stack.push(node);
            }
            let children = adj.get(&node).unwrap_or(&empty);
            let mut advanced = false;
            let mut pos = child_pos;
            while pos < children.len() {
                let child = children[pos];
                pos += 1;
                match states[&child].index {
                    None => {
                        // Recurse into child: re-push current frame first.
                        frames.push((node, pos));
                        frames.push((child, 0));
                        advanced = true;
                        break;
                    }
                    Some(child_index) => {
                        if states[&child].on_stack {
                            let low = states[&node].lowlink.min(child_index);
                            states.get_mut(&node).expect("state exists").lowlink = low;
                        }
                    }
                }
            }
            if advanced {
                continue;
            }
            // Node is finished: pop SCC if it is a root, then propagate
            // lowlink to the parent frame.
            let (node_index, node_lowlink) = {
                let st = &states[&node];
                (st.index.expect("indexed"), st.lowlink)
            };
            if node_lowlink == node_index {
                let mut component = Vec::new();
                while let Some(top) = stack.pop() {
                    states.get_mut(&top).expect("state exists").on_stack = false;
                    component.push(top);
                    if top == node {
                        break;
                    }
                }
                components.push(component);
            }
            if let Some((parent, _)) = frames.last() {
                let parent_low = states[parent].lowlink.min(node_lowlink);
                states.get_mut(parent).expect("state exists").lowlink = parent_low;
            }
        }
    }
    components
}

/// `true` if the graph (adjacency map) contains a cycle, i.e. some strongly
/// connected component has more than one node or a node with a self-loop.
pub fn has_cycle_scc<N: NodeId>(adj: &HashMap<N, Vec<N>>) -> bool {
    if adj
        .iter()
        .any(|(n, targets)| targets.iter().any(|t| t == n))
    {
        return true;
    }
    strongly_connected_components(adj)
        .iter()
        .any(|c| c.len() > 1)
}

/// Simple DFS-based reachability and path utilities over adjacency maps.
#[derive(Debug, Clone, Default)]
pub struct CycleSearch<N: NodeId> {
    adj: HashMap<N, Vec<N>>,
}

impl<N: NodeId> CycleSearch<N> {
    /// Build a search structure over an adjacency map.
    pub fn new(adj: HashMap<N, Vec<N>>) -> Self {
        CycleSearch { adj }
    }

    /// Build from an edge list.
    pub fn from_edges(edges: impl IntoIterator<Item = (N, N)>) -> Self {
        let mut adj: HashMap<N, Vec<N>> = HashMap::new();
        for (a, b) in edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default();
        }
        CycleSearch { adj }
    }

    /// Is `to` reachable from `from`?
    pub fn reachable(&self, from: N, to: N) -> bool {
        if from == to {
            return true;
        }
        let mut visited: std::collections::HashSet<N> = std::collections::HashSet::new();
        let mut stack = vec![from];
        visited.insert(from);
        while let Some(n) = stack.pop() {
            if let Some(children) = self.adj.get(&n) {
                for c in children {
                    if *c == to {
                        return true;
                    }
                    if visited.insert(*c) {
                        stack.push(*c);
                    }
                }
            }
        }
        false
    }

    /// A path from `from` to `to`, if any (node sequence including both
    /// endpoints).
    pub fn path(&self, from: N, to: N) -> Option<Vec<N>> {
        let mut parent: HashMap<N, N> = HashMap::new();
        let mut stack = vec![from];
        let mut visited: std::collections::HashSet<N> = std::collections::HashSet::new();
        visited.insert(from);
        while let Some(n) = stack.pop() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = *parent.get(&cur)?;
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if let Some(children) = self.adj.get(&n) {
                for c in children {
                    if visited.insert(*c) {
                        parent.insert(*c, n);
                        stack.push(*c);
                    }
                }
            }
        }
        None
    }

    /// `true` if the underlying graph has a cycle.
    pub fn has_cycle(&self) -> bool {
        has_cycle_scc(&self.adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn adj(edges: &[(u32, u32)]) -> HashMap<u32, Vec<u32>> {
        let mut m: HashMap<u32, Vec<u32>> = HashMap::new();
        for (a, b) in edges {
            m.entry(*a).or_default().push(*b);
            m.entry(*b).or_default();
        }
        m
    }

    #[test]
    fn scc_of_a_dag_is_all_singletons() {
        let g = adj(&[(1, 2), (2, 3), (1, 3)]);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(!has_cycle_scc(&g));
    }

    #[test]
    fn scc_finds_the_cycle_component() {
        let g = adj(&[(1, 2), (2, 3), (3, 1), (3, 4)]);
        let sccs = strongly_connected_components(&g);
        let big: Vec<_> = sccs.into_iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        let mut comp = big[0].clone();
        comp.sort_unstable();
        assert_eq!(comp, vec![1, 2, 3]);
        assert!(has_cycle_scc(&g));
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let g = adj(&[(7, 7)]);
        assert!(has_cycle_scc(&g));
    }

    #[test]
    fn two_disjoint_cycles() {
        let g = adj(&[(1, 2), (2, 1), (3, 4), (4, 5), (5, 3)]);
        let sccs = strongly_connected_components(&g);
        let mut sizes: Vec<usize> = sccs.iter().map(|c| c.len()).filter(|s| *s > 1).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn cycle_search_reachability_and_paths() {
        let s = CycleSearch::from_edges([(1u32, 2), (2, 3), (3, 4)]);
        assert!(s.reachable(1, 4));
        assert!(s.reachable(2, 2));
        assert!(!s.reachable(4, 1));
        let p = s.path(1, 4).expect("path exists");
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(s.path(4, 1), None);
        assert!(!s.has_cycle());

        let s = CycleSearch::from_edges([(1u32, 2), (2, 1)]);
        assert!(s.has_cycle());
    }

    #[test]
    fn cycle_search_new_accepts_prebuilt_adjacency() {
        let s = CycleSearch::new(adj(&[(1, 2)]));
        assert!(s.reachable(1, 2));
    }

    proptest! {
        #[test]
        fn prop_scc_agrees_with_naive_reachability(
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40)
        ) {
            let g = adj(&edges);
            let search = CycleSearch::new(g.clone());
            // Two distinct nodes are in the same SCC iff mutually reachable.
            let sccs = strongly_connected_components(&g);
            let mut comp_of: HashMap<u32, usize> = HashMap::new();
            for (i, c) in sccs.iter().enumerate() {
                for n in c {
                    comp_of.insert(*n, i);
                }
            }
            let nodes: Vec<u32> = g.keys().copied().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if a == b { continue; }
                    let same = comp_of[&a] == comp_of[&b];
                    let mutual = search.reachable(a, b) && search.reachable(b, a);
                    prop_assert_eq!(same, mutual, "nodes {} and {}", a, b);
                }
            }
        }

        #[test]
        fn prop_has_cycle_matches_scc(edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30)) {
            let g = adj(&edges);
            let via_search = CycleSearch::new(g.clone()).has_cycle();
            prop_assert_eq!(via_search, has_cycle_scc(&g));
        }
    }
}
