//! The serialization graph used by the off-line correctness checker.
//!
//! Definition 6 of the paper builds a serialization graph whose edges
//! connect transactions with *non-recoverable* conflicting operations; the
//! combined graph `DG = G ∪ SG` (commit dependencies plus serialization
//! edges) must be acyclic for the execution log to be serializable
//! (Lemma 4). The kernel enforces this on-line; [`SerializationGraph`] is
//! used by tests and the history checker to validate executions after the
//! fact and to extract a serial order (topological sort).

use crate::cycle::{has_cycle_scc, strongly_connected_components};
use crate::graph::NodeId;
use std::collections::{HashMap, HashSet};

/// An explicit serialization graph over committed transactions.
#[derive(Debug, Clone, Default)]
pub struct SerializationGraph<N: NodeId> {
    adj: HashMap<N, HashSet<N>>,
}

impl<N: NodeId> SerializationGraph<N> {
    /// An empty graph.
    pub fn new() -> Self {
        SerializationGraph {
            adj: HashMap::new(),
        }
    }

    /// Add a node with no edges.
    pub fn add_node(&mut self, n: N) {
        self.adj.entry(n).or_default();
    }

    /// Add an edge `before -> after` meaning `before` must precede `after`
    /// in every equivalent serial order. Self-edges are ignored.
    pub fn add_order(&mut self, before: N, after: N) {
        if before == after {
            return;
        }
        self.adj.entry(before).or_default().insert(after);
        self.adj.entry(after).or_default();
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(|s| s.len()).sum()
    }

    /// `true` if the graph contains an ordering cycle (the execution is not
    /// serializable with respect to the recorded constraints).
    pub fn has_cycle(&self) -> bool {
        let adj: HashMap<N, Vec<N>> = self
            .adj
            .iter()
            .map(|(k, v)| (*k, v.iter().copied().collect()))
            .collect();
        has_cycle_scc(&adj)
    }

    /// A topological order of the nodes (a valid serial order), if the graph
    /// is acyclic. Ties are broken by the node's `Ord` to keep the result
    /// deterministic.
    pub fn topological_order(&self) -> Option<Vec<N>> {
        let mut in_degree: HashMap<N, usize> = self.adj.keys().map(|n| (*n, 0)).collect();
        for targets in self.adj.values() {
            for t in targets {
                *in_degree.entry(*t).or_insert(0) += 1;
            }
        }
        // Min-heap on Reverse(N) for determinism.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut ready: BinaryHeap<Reverse<N>> = in_degree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| Reverse(*n))
            .collect();
        let mut order = Vec::with_capacity(self.adj.len());
        while let Some(Reverse(n)) = ready.pop() {
            order.push(n);
            if let Some(targets) = self.adj.get(&n) {
                for t in targets {
                    let d = in_degree.get_mut(t).expect("in-degree exists");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(Reverse(*t));
                    }
                }
            }
        }
        if order.len() == self.adj.len() {
            Some(order)
        } else {
            None
        }
    }

    /// The strongly connected components (useful in diagnostics when a
    /// serializability violation is detected).
    pub fn components(&self) -> Vec<Vec<N>> {
        let adj: HashMap<N, Vec<N>> = self
            .adj
            .iter()
            .map(|(k, v)| (*k, v.iter().copied().collect()))
            .collect();
        strongly_connected_components(&adj)
    }

    /// Check whether the supplied order respects every edge in the graph.
    pub fn order_is_consistent(&self, order: &[N]) -> bool {
        let pos: HashMap<N, usize> = order.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        if pos.len() != self.adj.len() {
            return false;
        }
        self.adj.iter().all(|(from, targets)| {
            targets.iter().all(|to| match (pos.get(from), pos.get(to)) {
                (Some(a), Some(b)) => a < b,
                _ => false,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph_is_acyclic_with_empty_order() {
        let g: SerializationGraph<u32> = SerializationGraph::new();
        assert!(!g.has_cycle());
        assert_eq!(g.topological_order(), Some(vec![]));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn simple_chain_orders_correctly() {
        let mut g = SerializationGraph::new();
        g.add_order(1u32, 2);
        g.add_order(2, 3);
        g.add_node(9);
        assert!(!g.has_cycle());
        let order = g.topological_order().expect("acyclic");
        assert!(g.order_is_consistent(&order));
        let pos = |n: u32| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn cycle_is_detected_and_order_is_none() {
        let mut g = SerializationGraph::new();
        g.add_order(1u32, 2);
        g.add_order(2, 3);
        g.add_order(3, 1);
        assert!(g.has_cycle());
        assert_eq!(g.topological_order(), None);
        let comps = g.components();
        assert!(comps.iter().any(|c| c.len() == 3));
    }

    #[test]
    fn duplicate_and_self_edges_are_harmless() {
        let mut g = SerializationGraph::new();
        g.add_order(1u32, 2);
        g.add_order(1, 2);
        g.add_order(1, 1);
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_cycle());
    }

    #[test]
    fn order_is_consistent_rejects_wrong_orders() {
        let mut g = SerializationGraph::new();
        g.add_order(1u32, 2);
        assert!(g.order_is_consistent(&[1, 2]));
        assert!(!g.order_is_consistent(&[2, 1]));
        assert!(!g.order_is_consistent(&[1]), "missing nodes are rejected");
        assert!(!g.order_is_consistent(&[1, 2, 3]), "extra nodes are rejected");
    }

    proptest! {
        #[test]
        fn prop_topological_order_respects_all_edges(
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..40)
        ) {
            let mut g = SerializationGraph::new();
            for (a, b) in &edges {
                g.add_order(*a, *b);
            }
            match g.topological_order() {
                Some(order) => {
                    prop_assert!(!g.has_cycle());
                    prop_assert!(g.order_is_consistent(&order));
                }
                None => prop_assert!(g.has_cycle()),
            }
        }
    }
}
