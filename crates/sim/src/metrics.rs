//! Performance metrics (Section 5.4) and multi-run aggregation.

use std::fmt;

/// The metrics of a single simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Transactions that completed (pseudo-committed or committed).
    pub completed: u64,
    /// Completions whose very first commit was already an actual commit.
    pub full_commit_completions: u64,
    /// Completions that were pseudo-commits at completion time.
    pub pseudo_commit_completions: u64,
    /// Simulated seconds elapsed.
    pub sim_time: f64,
    /// Completed transactions per simulated second.
    pub throughput: f64,
    /// Mean seconds from submission to completion (includes ready-queue
    /// time and restarts).
    pub response_time: f64,
    /// Blocking events per completed transaction.
    pub blocking_ratio: f64,
    /// Restarts per completed transaction.
    pub restart_ratio: f64,
    /// Cycle-detection invocations per completed transaction.
    pub cycle_check_ratio: f64,
    /// Mean number of operations executed by a transaction at the time it
    /// was aborted (zero when there were no aborts).
    pub abort_length: f64,
    /// Raw count of blocking events.
    pub blocks: u64,
    /// Raw count of restarts (= aborts, every aborted transaction restarts).
    pub restarts: u64,
    /// Raw count of cycle-detection invocations.
    pub cycle_checks: u64,
    /// Raw count of commit-dependency edges created.
    pub commit_dependencies: u64,
}

impl SimulationResult {
    /// Render the headline numbers on one line.
    pub fn summary(&self) -> String {
        format!(
            "throughput={:.2} tps, response={:.3} s, BR={:.3}, RR={:.3}, CCR={:.3}, AL={:.2}",
            self.throughput,
            self.response_time,
            self.blocking_ratio,
            self.restart_ratio,
            self.cycle_check_ratio,
            self.abort_length
        )
    }
}

impl fmt::Display for SimulationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Mean / spread of one metric over several runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregatedMetric {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (zero for a single run).
    pub std_dev: f64,
    /// Half-width of the 90% confidence interval (normal approximation).
    pub ci90_half_width: f64,
    /// Number of samples.
    pub samples: usize,
}

impl AggregatedMetric {
    /// Aggregate a slice of samples.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        assert!(n > 0, "at least one sample is required");
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std_dev = var.sqrt();
        // 90% two-sided normal quantile.
        let z = 1.6449;
        let ci90_half_width = if n > 1 {
            z * std_dev / (n as f64).sqrt()
        } else {
            0.0
        };
        AggregatedMetric {
            mean,
            std_dev,
            ci90_half_width,
            samples: n,
        }
    }

    /// The confidence interval half-width as a percentage of the mean
    /// (the paper reports ±2 percentage points for its runs).
    pub fn ci90_percent_of_mean(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.ci90_half_width / self.mean.abs()
        }
    }
}

impl fmt::Display for AggregatedMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ±{:.3}", self.mean, self.ci90_half_width)
    }
}

/// Aggregated metrics over several runs of the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedResult {
    /// Throughput (transactions per second).
    pub throughput: AggregatedMetric,
    /// Response time (seconds).
    pub response_time: AggregatedMetric,
    /// Blocking ratio.
    pub blocking_ratio: AggregatedMetric,
    /// Restart ratio.
    pub restart_ratio: AggregatedMetric,
    /// Cycle check ratio.
    pub cycle_check_ratio: AggregatedMetric,
    /// Abort length.
    pub abort_length: AggregatedMetric,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl AggregatedResult {
    /// Aggregate several runs.
    pub fn from_runs(runs: &[SimulationResult]) -> Self {
        assert!(!runs.is_empty(), "at least one run is required");
        let collect = |f: fn(&SimulationResult) -> f64| {
            AggregatedMetric::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
        };
        AggregatedResult {
            throughput: collect(|r| r.throughput),
            response_time: collect(|r| r.response_time),
            blocking_ratio: collect(|r| r.blocking_ratio),
            restart_ratio: collect(|r| r.restart_ratio),
            cycle_check_ratio: collect(|r| r.cycle_check_ratio),
            abort_length: collect(|r| r.abort_length),
            runs: runs.len(),
        }
    }
}

impl fmt::Display for AggregatedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "throughput={} tps, response={} s, BR={}, RR={}, CCR={}, AL={} ({} runs)",
            self.throughput,
            self.response_time,
            self.blocking_ratio,
            self.restart_ratio,
            self.cycle_check_ratio,
            self.abort_length,
            self.runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(throughput: f64) -> SimulationResult {
        SimulationResult {
            completed: 100,
            full_commit_completions: 80,
            pseudo_commit_completions: 20,
            sim_time: 10.0,
            throughput,
            response_time: 1.0,
            blocking_ratio: 0.5,
            restart_ratio: 0.1,
            cycle_check_ratio: 0.6,
            abort_length: 3.0,
            blocks: 50,
            restarts: 10,
            cycle_checks: 60,
            commit_dependencies: 40,
        }
    }

    #[test]
    fn aggregated_metric_mean_and_ci() {
        let m = AggregatedMetric::from_samples(&[10.0, 12.0, 14.0]);
        assert!((m.mean - 12.0).abs() < 1e-9);
        assert!((m.std_dev - 2.0).abs() < 1e-9);
        assert!(m.ci90_half_width > 0.0);
        assert_eq!(m.samples, 3);
        assert!(m.ci90_percent_of_mean() > 0.0);
        assert!(m.to_string().contains('±'));

        let single = AggregatedMetric::from_samples(&[5.0]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci90_half_width, 0.0);

        let zero_mean = AggregatedMetric::from_samples(&[0.0, 0.0]);
        assert_eq!(zero_mean.ci90_percent_of_mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn aggregated_metric_rejects_empty_input() {
        AggregatedMetric::from_samples(&[]);
    }

    #[test]
    fn aggregated_result_collects_all_metrics() {
        let runs = vec![result(50.0), result(60.0), result(70.0)];
        let agg = AggregatedResult::from_runs(&runs);
        assert_eq!(agg.runs, 3);
        assert!((agg.throughput.mean - 60.0).abs() < 1e-9);
        assert!((agg.response_time.mean - 1.0).abs() < 1e-9);
        assert!(agg.to_string().contains("runs"));
        assert!(runs[0].summary().contains("throughput"));
        assert!(runs[0].to_string().contains("BR="));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn aggregated_result_rejects_empty_input() {
        AggregatedResult::from_runs(&[]);
    }
}
