//! Multi-run aggregation and parameter sweeps.
//!
//! The paper reports each data point as the average of 10 independent runs;
//! [`run_averaged`] reproduces that, and [`sweep_mpl`] produces the
//! throughput-vs-multiprogramming-level series that most figures plot.

use crate::config::SimParams;
use crate::metrics::{AggregatedResult, SimulationResult};
use crate::simulator::Simulator;
use sbcc_core::ConflictPolicy;

/// Run the same configuration `runs` times with consecutive seeds and
/// aggregate the metrics.
pub fn run_averaged(params: &SimParams, runs: usize) -> AggregatedResult {
    assert!(runs > 0, "at least one run is required");
    let results: Vec<SimulationResult> = (0..runs)
        .map(|i| {
            let p = params.clone().with_seed(params.seed.wrapping_add(i as u64));
            Simulator::new(p).run()
        })
        .collect();
    AggregatedResult::from_runs(&results)
}

/// One point of a sweep: a multiprogramming level and its aggregated result.
#[derive(Debug, Clone)]
pub struct PolicySweepPoint {
    /// The multiprogramming level.
    pub mpl_level: usize,
    /// Aggregated metrics at that level.
    pub result: AggregatedResult,
}

/// A series of sweep points for one policy (one curve of a figure).
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// The conflict policy of this curve.
    pub policy: ConflictPolicy,
    /// A label for the curve (policy name, or `Pr=…` for the ADT model).
    pub label: String,
    /// The points, in the order of the supplied multiprogramming levels.
    pub points: Vec<PolicySweepPoint>,
}

impl SweepSeries {
    /// The multiprogramming level with the highest mean throughput.
    pub fn peak_throughput(&self) -> Option<&PolicySweepPoint> {
        self.points.iter().max_by(|a, b| {
            a.result
                .throughput
                .mean
                .partial_cmp(&b.result.throughput.mean)
                .expect("throughput is never NaN")
        })
    }
}

/// Sweep the multiprogramming level for each of the given policies, keeping
/// every other parameter from `base`.
pub fn sweep_mpl(
    base: &SimParams,
    mpl_levels: &[usize],
    policies: &[ConflictPolicy],
    runs: usize,
) -> Vec<SweepSeries> {
    policies
        .iter()
        .map(|policy| {
            let points = mpl_levels
                .iter()
                .map(|mpl| {
                    let mut p = base.clone();
                    p.mpl_level = *mpl;
                    p.policy = *policy;
                    PolicySweepPoint {
                        mpl_level: *mpl,
                        result: run_averaged(&p, runs),
                    }
                })
                .collect();
            SweepSeries {
                policy: *policy,
                label: policy.label().to_owned(),
                points,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> SimParams {
        SimParams {
            db_size: 50,
            num_terminals: 20,
            mpl_level: 10,
            target_completions: 150,
            seed: 5,
            ..SimParams::default()
        }
    }

    #[test]
    fn run_averaged_aggregates_multiple_seeds() {
        let agg = run_averaged(&tiny_params(), 3);
        assert_eq!(agg.runs, 3);
        assert!(agg.throughput.mean > 0.0);
        assert!(agg.response_time.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn run_averaged_rejects_zero_runs() {
        run_averaged(&tiny_params(), 0);
    }

    #[test]
    fn sweep_produces_one_series_per_policy() {
        let series = sweep_mpl(
            &tiny_params(),
            &[5, 10],
            &[
                ConflictPolicy::CommutativityOnly,
                ConflictPolicy::Recoverability,
            ],
            1,
        );
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].mpl_level, 5);
            assert_eq!(s.points[1].mpl_level, 10);
            assert!(s.peak_throughput().is_some());
            assert!(!s.label.is_empty());
        }
    }
}
