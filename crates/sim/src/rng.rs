//! Deterministic random-number helpers for the simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source wrapping [`StdRng`] with the distributions the
//  simulation needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Create a source from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `[low, high]` (inclusive).
    pub fn uniform_inclusive(&mut self, low: usize, high: usize) -> usize {
        debug_assert!(low <= high);
        self.rng.gen_range(low..=high)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Exponentially distributed sample with the given mean (used for think
    /// times). A zero mean always returns zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Access to the underlying RNG (e.g. for compatibility-table
    /// generation).
    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_inclusive(1, 10), b.uniform_inclusive(1, 10));
            assert_eq!(a.index(5), b.index(5));
            assert_eq!(a.chance(0.3), b.chance(0.3));
            assert!((a.exponential(1.0) - b.exponential(1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_inclusive_covers_the_range() {
        let mut rng = SimRng::new(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.uniform_inclusive(4, 8);
            assert!((4..=8).contains(&v));
            seen[v - 4] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values in range appear");
    }

    #[test]
    fn exponential_has_roughly_the_right_mean() {
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let mean = 1.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let avg = sum / n as f64;
        assert!(
            (avg - mean).abs() < 0.05,
            "sample mean {avg} too far from {mean}"
        );
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.exponential(-1.0), 0.0);
    }

    #[test]
    fn chance_respects_probability_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn inner_exposes_the_std_rng() {
        let mut rng = SimRng::new(4);
        let _: u32 = rng.inner().gen();
    }
}
