//! Simulation parameters (paper Tables IX and X).

use sbcc_core::{ConflictPolicy, RecoveryStrategy, VictimPolicy};

/// Which workload / data model the simulation uses (Section 5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DataModel {
    /// The traditional read/write model: each operation is a write with the
    /// given probability, otherwise a read; conflicts follow the Page
    /// compatibility tables (Tables I and II).
    ReadWrite {
        /// Probability that an operation is a write (paper: 0.3).
        write_probability: f64,
    },
    /// The abstract-data-type model: every object has `ops_per_object`
    /// operations and a randomly generated compatibility table with `p_c`
    /// commutative entries and `p_r` recoverable entries (Section 5.5.2).
    AbstractAdt {
        /// Number of operations per object (paper: 4).
        ops_per_object: usize,
        /// Number of commutative entries (`P_c`, even).
        p_c: usize,
        /// Number of recoverable entries (`P_r`).
        p_r: usize,
    },
}

impl DataModel {
    /// The paper's nominal read/write model.
    pub fn read_write() -> Self {
        DataModel::ReadWrite {
            write_probability: 0.3,
        }
    }

    /// The paper's abstract-data-type model with four operations.
    pub fn abstract_adt(p_c: usize, p_r: usize) -> Self {
        DataModel::AbstractAdt {
            ops_per_object: 4,
            p_c,
            p_r,
        }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            DataModel::ReadWrite { write_probability } => {
                format!("read/write (P(write)={write_probability})")
            }
            DataModel::AbstractAdt { p_c, p_r, .. } => format!("ADT (Pc={p_c}, Pr={p_r})"),
        }
    }
}

/// Hardware resource model (Section 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceMode {
    /// Infinite resources: every operation takes exactly `step_time`.
    Infinite,
    /// A finite number of resource units, each consisting of one CPU and two
    /// disks; operations queue for a CPU (`cpu_time`) and then for a
    /// randomly chosen disk (`io_time`).
    Finite {
        /// Number of resource units.
        resource_units: usize,
    },
}

impl ResourceMode {
    /// A short label for experiment output.
    pub fn label(&self) -> String {
        match self {
            ResourceMode::Infinite => "infinite resources".to_owned(),
            ResourceMode::Finite { resource_units } => {
                format!("{resource_units} resource unit(s)")
            }
        }
    }
}

/// Full parameter set for one simulation run (Tables IX and X).
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Number of objects in the database (paper: 1000).
    pub db_size: usize,
    /// Number of terminals (paper: 200).
    pub num_terminals: usize,
    /// Multiprogramming level: maximum concurrently active transactions.
    pub mpl_level: usize,
    /// Minimum transaction length in operations (paper: 4).
    pub min_length: usize,
    /// Maximum transaction length in operations (paper: 12).
    pub max_length: usize,
    /// Execution time of each operation in seconds (paper: 0.05).
    pub step_time: f64,
    /// CPU time per operation under finite resources (paper: 0.015).
    pub cpu_time: f64,
    /// Disk time per operation under finite resources (paper: 0.035).
    pub io_time: f64,
    /// Resource model.
    pub resource_mode: ResourceMode,
    /// Mean think time between transactions in seconds (paper: 1.0).
    pub ext_think_time: f64,
    /// The workload / data model.
    pub data_model: DataModel,
    /// Conflict policy (the paper's comparison axis).
    pub policy: ConflictPolicy,
    /// Fair scheduling (Section 5.2; the paper's default).
    pub fair_scheduling: bool,
    /// Recovery strategy used by the kernel (the paper does not model
    /// recovery cost; this only affects how results are computed).
    pub recovery: RecoveryStrategy,
    /// Victim selection policy.
    pub victim: VictimPolicy,
    /// Whether a pseudo-committed transaction keeps occupying its
    /// multiprogramming slot until it actually commits (see DESIGN.md §6).
    pub pseudo_commit_holds_slot: bool,
    /// Batched submission: a transaction hands its **entire remaining
    /// script** to the kernel as one group
    /// ([`sbcc_core::SchedulerKernel::request_batch`]) instead of one
    /// request per operation. The kernel classifies the group in one index
    /// pass; the admitted prefix is then serviced as one burst (its
    /// operations' service demands back to back), and a blocked call parks
    /// the transaction exactly as per-call submission would. The
    /// *admission* decisions for a given log state are identical to
    /// per-call submission; what changes is timing — and note the cost
    /// model's bias: the simulator charges **zero** overhead per
    /// submission, so batching's real-world win (fewer kernel round trips
    /// and lock acquisitions; see `BENCH_kernel.json`) is invisible here,
    /// while its cost — operations enter the uncommitted logs *before*
    /// their service time elapses, widening every transaction's conflict
    /// window — is fully modelled. Under heavy data contention batched
    /// simulated throughput can therefore trail per-call.
    pub batch_submission: bool,
    /// Stop the run after this many transactions have completed
    /// (paper: 50 000).
    pub target_completions: u64,
    /// Random seed (runs are deterministic for a fixed seed).
    pub seed: u64,
    /// Number of scheduler-kernel shards
    /// ([`sbcc_core::shard::ShardedKernel`]). One shard reproduces the
    /// paper's single state machine exactly; more shards model the sharded
    /// kernel's admission behaviour (cross-shard transactions acquire the
    /// same dependencies, cycles spanning shards are refused through the
    /// escalation graph). The simulator charges no time for shard
    /// coordination, so simulated throughput measures admission behaviour,
    /// not lock contention — use `repro --bench-kernel` for the wall-clock
    /// story.
    pub shards: usize,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            db_size: 1000,
            num_terminals: 200,
            mpl_level: 50,
            min_length: 4,
            max_length: 12,
            step_time: 0.05,
            cpu_time: 0.015,
            io_time: 0.035,
            resource_mode: ResourceMode::Infinite,
            ext_think_time: 1.0,
            data_model: DataModel::read_write(),
            policy: ConflictPolicy::Recoverability,
            fair_scheduling: true,
            recovery: RecoveryStrategy::IntentionsList,
            victim: VictimPolicy::Requester,
            pseudo_commit_holds_slot: false,
            batch_submission: false,
            target_completions: 10_000,
            seed: 42,
            shards: 1,
        }
    }
}

impl SimParams {
    /// Nominal read/write-model parameters at a given multiprogramming level
    /// and policy.
    pub fn read_write(mpl_level: usize, policy: ConflictPolicy) -> Self {
        SimParams {
            mpl_level,
            policy,
            data_model: DataModel::read_write(),
            ..SimParams::default()
        }
    }

    /// Nominal abstract-data-type-model parameters.
    pub fn abstract_adt(mpl_level: usize, policy: ConflictPolicy, p_c: usize, p_r: usize) -> Self {
        SimParams {
            mpl_level,
            policy,
            data_model: DataModel::abstract_adt(p_c, p_r),
            ..SimParams::default()
        }
    }

    /// Builder-style: set the resource mode.
    pub fn with_resources(mut self, mode: ResourceMode) -> Self {
        self.resource_mode = mode;
        self
    }

    /// Builder-style: set the number of completions to simulate.
    pub fn with_completions(mut self, target: u64) -> Self {
        self.target_completions = target;
        self
    }

    /// Builder-style: set the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: enable or disable fair scheduling.
    pub fn with_fair_scheduling(mut self, fair: bool) -> Self {
        self.fair_scheduling = fair;
        self
    }

    /// Builder-style: enable or disable batched submission.
    pub fn with_batch_submission(mut self, batched: bool) -> Self {
        self.batch_submission = batched;
        self
    }

    /// Builder-style: set the kernel shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style: set the victim policy.
    pub fn with_victim(mut self, victim: VictimPolicy) -> Self {
        self.victim = victim;
        self
    }

    /// Mean transaction length implied by the min/max lengths.
    pub fn mean_length(&self) -> f64 {
        (self.min_length + self.max_length) as f64 / 2.0
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.db_size == 0 {
            return Err("db_size must be positive".into());
        }
        if self.num_terminals == 0 {
            return Err("num_terminals must be positive".into());
        }
        if self.mpl_level == 0 {
            return Err("mpl_level must be positive".into());
        }
        if self.min_length == 0 || self.min_length > self.max_length {
            return Err("transaction lengths must satisfy 0 < min <= max".into());
        }
        if self.step_time <= 0.0 || self.cpu_time < 0.0 || self.io_time < 0.0 {
            return Err("service times must be positive".into());
        }
        if self.ext_think_time < 0.0 {
            return Err("think time must be non-negative".into());
        }
        if self.target_completions == 0 {
            return Err("target_completions must be positive".into());
        }
        if let DataModel::ReadWrite { write_probability } = self.data_model {
            if !(0.0..=1.0).contains(&write_probability) {
                return Err("write_probability must lie in [0, 1]".into());
            }
        }
        if let DataModel::AbstractAdt {
            ops_per_object,
            p_c,
            p_r,
        } = self.data_model
        {
            if ops_per_object == 0 || ops_per_object > 8 {
                return Err("ops_per_object must lie in 1..=8".into());
            }
            if p_c % 2 != 0 {
                return Err("p_c must be even".into());
            }
            if p_c + p_r > ops_per_object * ops_per_object {
                return Err("p_c + p_r must not exceed the table size".into());
            }
        }
        if let ResourceMode::Finite { resource_units } = self.resource_mode {
            if resource_units == 0 {
                return Err("resource_units must be positive".into());
            }
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        // Both victim policies are modelled: the closed-network driver
        // handles asynchronous victim aborts (a transaction aborted while
        // it has an in-flight service event) by generation-stamping service
        // events and purging the victim from the resource queues, so
        // `VictimPolicy::Youngest` runs at scale.
        Ok(())
    }

    /// One-line description used by the experiment harness.
    pub fn describe(&self) -> String {
        format!(
            "{} | {} | mpl={} | {} | fair={} | {} | {} shard(s) | {} completions",
            self.data_model.label(),
            self.policy,
            self.mpl_level,
            self.resource_mode.label(),
            self.fair_scheduling,
            if self.batch_submission {
                "batched"
            } else {
                "per-call"
            },
            self.shards,
            self.target_completions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_nominal_values() {
        let p = SimParams::default();
        assert_eq!(p.db_size, 1000);
        assert_eq!(p.num_terminals, 200);
        assert_eq!(p.min_length, 4);
        assert_eq!(p.max_length, 12);
        assert!((p.step_time - 0.05).abs() < 1e-12);
        assert!((p.cpu_time - 0.015).abs() < 1e-12);
        assert!((p.io_time - 0.035).abs() < 1e-12);
        assert!((p.ext_think_time - 1.0).abs() < 1e-12);
        assert_eq!(p.mean_length(), 8.0);
        assert_eq!(
            p.data_model,
            DataModel::ReadWrite {
                write_probability: 0.3
            }
        );
        p.validate().unwrap();
    }

    #[test]
    fn constructors_and_builders() {
        let p = SimParams::read_write(100, ConflictPolicy::CommutativityOnly)
            .with_resources(ResourceMode::Finite { resource_units: 5 })
            .with_completions(500)
            .with_seed(7)
            .with_fair_scheduling(false);
        assert_eq!(p.mpl_level, 100);
        assert_eq!(p.policy, ConflictPolicy::CommutativityOnly);
        assert_eq!(p.resource_mode, ResourceMode::Finite { resource_units: 5 });
        assert_eq!(p.target_completions, 500);
        assert_eq!(p.seed, 7);
        assert!(!p.fair_scheduling);
        assert!(!p.batch_submission, "per-call submission is the default");
        let p = p.with_batch_submission(true);
        assert!(p.batch_submission);
        assert!(p.describe().contains("batched"));
        p.validate().unwrap();

        let p = SimParams::abstract_adt(25, ConflictPolicy::Recoverability, 4, 8);
        assert_eq!(
            p.data_model,
            DataModel::AbstractAdt {
                ops_per_object: 4,
                p_c: 4,
                p_r: 8
            }
        );
        p.validate().unwrap();
        assert!(p.describe().contains("Pc=4"));
        assert!(SimParams::default().describe().contains("read/write"));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let base = SimParams::default();
        for (mutate, _name) in [
            (Box::new(|p: &mut SimParams| p.db_size = 0) as Box<dyn Fn(&mut SimParams)>, "db"),
            (Box::new(|p: &mut SimParams| p.num_terminals = 0), "terminals"),
            (Box::new(|p: &mut SimParams| p.mpl_level = 0), "mpl"),
            (Box::new(|p: &mut SimParams| p.min_length = 0), "min"),
            (Box::new(|p: &mut SimParams| {
                p.min_length = 10;
                p.max_length = 4;
            }), "min>max"),
            (Box::new(|p: &mut SimParams| p.step_time = 0.0), "step"),
            (Box::new(|p: &mut SimParams| p.ext_think_time = -1.0), "think"),
            (Box::new(|p: &mut SimParams| p.target_completions = 0), "completions"),
            (Box::new(|p: &mut SimParams| {
                p.data_model = DataModel::ReadWrite {
                    write_probability: 1.5,
                }
            }), "writeprob"),
            (Box::new(|p: &mut SimParams| {
                p.data_model = DataModel::AbstractAdt {
                    ops_per_object: 4,
                    p_c: 3,
                    p_r: 0,
                }
            }), "odd pc"),
            (Box::new(|p: &mut SimParams| {
                p.data_model = DataModel::AbstractAdt {
                    ops_per_object: 2,
                    p_c: 2,
                    p_r: 8,
                }
            }), "overfull"),
            (Box::new(|p: &mut SimParams| {
                p.resource_mode = ResourceMode::Finite { resource_units: 0 }
            }), "resources"),
            (Box::new(|p: &mut SimParams| p.shards = 0), "shards"),
        ] {
            let mut p = base.clone();
            mutate(&mut p);
            assert!(p.validate().is_err());
        }
    }

    #[test]
    fn labels() {
        assert!(DataModel::read_write().label().contains("0.3"));
        assert!(DataModel::abstract_adt(2, 8).label().contains("Pr=8"));
        assert_eq!(ResourceMode::Infinite.label(), "infinite resources");
        assert!(ResourceMode::Finite { resource_units: 5 }
            .label()
            .contains('5'));
    }
}
