//! The discrete-event core: a time-ordered event queue with deterministic
//! tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Index of a simulated transaction (stable across restarts, unlike the
/// kernel transaction id which changes every time the transaction restarts).
pub type SimTxnKey = usize;

/// Service stages a transaction step can be waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStage {
    /// Fixed-delay service under infinite resources.
    Step,
    /// CPU service under finite resources.
    Cpu,
    /// Disk service under finite resources (which disk is busy).
    Disk {
        /// Index of the disk being used.
        disk: usize,
    },
}

/// Events driving the closed queuing network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A terminal finished thinking and submits a new transaction.
    TerminalSubmit {
        /// The submitting terminal.
        terminal: usize,
    },
    /// A transaction finished a service stage of its current operation.
    ServiceDone {
        /// The simulated transaction.
        txn: SimTxnKey,
        /// Which stage completed.
        stage: ServiceStage,
        /// The transaction's restart count when the service was scheduled.
        /// An asynchronous victim abort (possible under
        /// [`sbcc_core::VictimPolicy::Youngest`]) restarts the transaction
        /// while this event is still in flight; the mismatch marks the
        /// event stale — its resource hand-off still happens, but it must
        /// not advance the restarted incarnation's script.
        gen: u64,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: f64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// The current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` to fire `delay` seconds from now.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: Event) {
        assert!(delay >= 0.0 && delay.is_finite(), "invalid delay {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// Schedule `event` at an absolute time (not before the current time).
    pub fn schedule_at(&mut self, time: f64, event: Event) {
        assert!(
            time >= self.now && time.is_finite(),
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pop the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let scheduled = self.heap.pop()?;
        debug_assert!(scheduled.time >= self.now, "time went backwards");
        self.now = scheduled.time;
        Some((scheduled.time, scheduled.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_in(2.0, Event::TerminalSubmit { terminal: 2 });
        q.schedule_in(1.0, Event::TerminalSubmit { terminal: 1 });
        q.schedule_in(3.0, Event::TerminalSubmit { terminal: 3 });
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| match e {
            Event::TerminalSubmit { terminal } => terminal,
            _ => unreachable!(),
        })
        .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
        assert!((q.now() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for terminal in 0..5 {
            q.schedule_in(1.0, Event::TerminalSubmit { terminal });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| match e {
            Event::TerminalSubmit { terminal } => terminal,
            _ => unreachable!(),
        })
        .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(0.5, Event::ServiceDone { txn: 1, stage: ServiceStage::Step, gen: 0 });
        let (t, _) = q.pop().unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        // scheduling relative to the new now
        q.schedule_in(0.25, Event::ServiceDone { txn: 2, stage: ServiceStage::Cpu, gen: 0 });
        let (t, e) = q.pop().unwrap();
        assert!((t - 0.75).abs() < 1e-12);
        assert_eq!(e, Event::ServiceDone { txn: 2, stage: ServiceStage::Cpu, gen: 0 });
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delays_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule_in(-1.0, Event::TerminalSubmit { terminal: 0 });
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_is_rejected() {
        let mut q = EventQueue::new();
        q.schedule_in(1.0, Event::TerminalSubmit { terminal: 0 });
        q.pop();
        q.schedule_at(0.5, Event::TerminalSubmit { terminal: 1 });
    }
}
