//! # sbcc-sim — the closed-queuing-network simulator
//!
//! A faithful re-implementation of the simulation model the paper uses for
//! its evaluation (Section 5), which in turn follows Agrawal, Carey & Livny
//! ("Concurrency control performance modeling: alternatives and
//! implications", ACM TODS 1987):
//!
//! * a fixed number of **terminals** submit transactions in a closed loop,
//!   with exponentially distributed think times between a completion and the
//!   next submission;
//! * at most `mpl_level` transactions are active at once; excess submissions
//!   wait in a **ready queue**;
//! * each transaction executes a script of 4–12 operations on objects drawn
//!   uniformly from the database, pausing `step_time` per operation (either
//!   a fixed delay under infinite resources or CPU + disk service under a
//!   finite number of resource units);
//! * operation requests are scheduled by the [`sbcc_core`] kernel — blocked
//!   requests wait for conflicting transactions to terminate, aborted
//!   transactions **restart immediately** at the end of the ready queue and
//!   re-execute the identical script;
//! * a transaction *completes* when it pseudo-commits or commits; its
//!   terminal then starts thinking about the next one.
//!
//! Two workload models are provided ([`DataModel`]): the read/write model
//! (write probability 0.3) and the abstract-data-type model where each
//! object's conflict behaviour is a random table with `P_c` commutative and
//! `P_r` recoverable entries (Section 5.5.2).
//!
//! The simulator reports the paper's metrics (Section 5.4): throughput,
//! response time, blocking ratio, restart ratio, cycle-check ratio and abort
//! length, with multi-run aggregation and confidence intervals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod event;
pub mod metrics;
pub mod resources;
pub mod rng;
pub mod runner;
pub mod simulator;
pub mod workload;

pub use config::{DataModel, ResourceMode, SimParams};
pub use metrics::{AggregatedMetric, AggregatedResult, SimulationResult};
pub use runner::{run_averaged, sweep_mpl, PolicySweepPoint, SweepSeries};
pub use simulator::Simulator;
pub use workload::WorkloadGenerator;
