//! Hardware resource model (Section 5.1).
//!
//! Under **infinite resources** every operation simply takes `step_time`.
//! Under **finite resources** the database owns `resource_units` units, each
//! consisting of one CPU and two disks. A transaction step first acquires a
//! CPU from the shared pool (FIFO), holds it for `cpu_time`, then queues at
//! a randomly chosen disk for `io_time`.

use crate::event::SimTxnKey;
use std::collections::VecDeque;

/// The shared CPU pool and per-disk queues for the finite-resource model.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    free_cpus: usize,
    cpu_queue: VecDeque<SimTxnKey>,
    disks: Vec<Disk>,
    /// Total CPU-queue wait events (diagnostics).
    pub cpu_waits: u64,
    /// Total disk-queue wait events (diagnostics).
    pub disk_waits: u64,
}

#[derive(Debug, Clone, Default)]
struct Disk {
    busy: bool,
    queue: VecDeque<SimTxnKey>,
}

/// What happened when a transaction asked for a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// The resource was free: service starts immediately.
    Acquired,
    /// The resource is busy: the transaction was queued and will be granted
    /// the resource when it frees up.
    Queued,
}

impl ResourcePool {
    /// Create a pool with `resource_units` units (1 CPU + 2 disks each).
    pub fn new(resource_units: usize) -> Self {
        assert!(resource_units > 0, "at least one resource unit is required");
        ResourcePool {
            free_cpus: resource_units,
            cpu_queue: VecDeque::new(),
            disks: vec![Disk::default(); resource_units * 2],
            cpu_waits: 0,
            disk_waits: 0,
        }
    }

    /// Number of CPUs in the pool (one per resource unit).
    pub fn cpu_count(&self) -> usize {
        self.disks.len() / 2
    }

    /// Number of disks in the pool.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Ask for a CPU. Returns [`Grant::Acquired`] if service can start now.
    pub fn acquire_cpu(&mut self, txn: SimTxnKey) -> Grant {
        if self.free_cpus > 0 {
            self.free_cpus -= 1;
            Grant::Acquired
        } else {
            self.cpu_queue.push_back(txn);
            self.cpu_waits += 1;
            Grant::Queued
        }
    }

    /// Release a CPU; if someone is waiting, the CPU is handed to them and
    /// their key is returned so the caller can start their service.
    pub fn release_cpu(&mut self) -> Option<SimTxnKey> {
        if let Some(next) = self.cpu_queue.pop_front() {
            Some(next)
        } else {
            self.free_cpus += 1;
            None
        }
    }

    /// Ask for a specific disk.
    pub fn acquire_disk(&mut self, disk: usize, txn: SimTxnKey) -> Grant {
        let d = &mut self.disks[disk];
        if d.busy {
            d.queue.push_back(txn);
            self.disk_waits += 1;
            Grant::Queued
        } else {
            d.busy = true;
            Grant::Acquired
        }
    }

    /// Release a disk; returns the next queued transaction, if any, which
    /// immediately starts service on that disk.
    pub fn release_disk(&mut self, disk: usize) -> Option<SimTxnKey> {
        let d = &mut self.disks[disk];
        if let Some(next) = d.queue.pop_front() {
            Some(next)
        } else {
            d.busy = false;
            None
        }
    }

    /// Remove every queued entry of a transaction from the CPU and disk
    /// queues (it was aborted asynchronously — e.g. as a `Youngest` cycle
    /// victim — and must not be granted a resource it no longer wants).
    /// Resources it currently *holds* are reclaimed when their in-flight
    /// service event fires (the stale-event path in the simulator).
    pub fn purge(&mut self, txn: SimTxnKey) {
        self.cpu_queue.retain(|k| *k != txn);
        for disk in &mut self.disks {
            disk.queue.retain(|k| *k != txn);
        }
    }

    /// Number of transactions currently waiting for a CPU.
    pub fn cpu_queue_len(&self) -> usize {
        self.cpu_queue.len()
    }

    /// Number of transactions currently waiting for any disk.
    pub fn disk_queue_len(&self) -> usize {
        self.disks.iter().map(|d| d.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pool_grants_and_queues() {
        let mut pool = ResourcePool::new(2);
        assert_eq!(pool.cpu_count(), 2);
        assert_eq!(pool.disk_count(), 4);
        assert_eq!(pool.acquire_cpu(1), Grant::Acquired);
        assert_eq!(pool.acquire_cpu(2), Grant::Acquired);
        assert_eq!(pool.acquire_cpu(3), Grant::Queued);
        assert_eq!(pool.cpu_queue_len(), 1);
        assert_eq!(pool.cpu_waits, 1);
        // Releasing hands the CPU to the waiter.
        assert_eq!(pool.release_cpu(), Some(3));
        assert_eq!(pool.cpu_queue_len(), 0);
        // Releasing with an empty queue frees the CPU.
        assert_eq!(pool.release_cpu(), None);
        assert_eq!(pool.release_cpu(), None);
        assert_eq!(pool.acquire_cpu(4), Grant::Acquired);
    }

    #[test]
    fn disks_are_independent_fifo_queues() {
        let mut pool = ResourcePool::new(1);
        assert_eq!(pool.acquire_disk(0, 1), Grant::Acquired);
        assert_eq!(pool.acquire_disk(1, 2), Grant::Acquired);
        assert_eq!(pool.acquire_disk(0, 3), Grant::Queued);
        assert_eq!(pool.acquire_disk(0, 4), Grant::Queued);
        assert_eq!(pool.disk_queue_len(), 2);
        assert_eq!(pool.disk_waits, 2);
        assert_eq!(pool.release_disk(0), Some(3));
        assert_eq!(pool.release_disk(0), Some(4));
        assert_eq!(pool.release_disk(0), None);
        assert_eq!(pool.release_disk(1), None);
        assert_eq!(pool.disk_queue_len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one resource unit")]
    fn zero_units_rejected() {
        ResourcePool::new(0);
    }

    #[test]
    fn purge_drops_queued_entries_everywhere() {
        let mut pool = ResourcePool::new(1);
        assert_eq!(pool.acquire_cpu(1), Grant::Acquired);
        assert_eq!(pool.acquire_cpu(2), Grant::Queued);
        assert_eq!(pool.acquire_cpu(3), Grant::Queued);
        assert_eq!(pool.acquire_disk(0, 4), Grant::Acquired);
        assert_eq!(pool.acquire_disk(0, 2), Grant::Queued);
        pool.purge(2);
        assert_eq!(pool.cpu_queue_len(), 1);
        assert_eq!(pool.disk_queue_len(), 0);
        // The CPU goes to the surviving waiter, not the purged one.
        assert_eq!(pool.release_cpu(), Some(3));
        assert_eq!(pool.release_disk(0), None);
    }
}
