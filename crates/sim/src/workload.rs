//! Workload generation: database population and per-transaction operation
//! scripts for the read/write and abstract-data-type models (Section 5.5).

use crate::config::{DataModel, SimParams};
use crate::rng::SimRng;
use sbcc_adt::{AbstractObject, OpCall};
use sbcc_core::{ObjectId, SchedulerKernel, ShardedKernel};

/// Kind index of a read in the read/write model.
pub const RW_READ: usize = 0;
/// Kind index of a write in the read/write model.
pub const RW_WRITE: usize = 1;

/// Generates the database population and transaction scripts.
#[derive(Debug)]
pub struct WorkloadGenerator {
    data_model: DataModel,
    db_size: usize,
    min_length: usize,
    max_length: usize,
}

impl WorkloadGenerator {
    /// Build a generator from the simulation parameters.
    pub fn new(params: &SimParams) -> Self {
        WorkloadGenerator {
            data_model: params.data_model,
            db_size: params.db_size,
            min_length: params.min_length,
            max_length: params.max_length,
        }
    }

    /// Register the `db_size` objects with the kernel and return their ids
    /// (index `i` of the returned vector is object `i` of the database).
    ///
    /// * Read/write model: every object behaves like a Page (read/write
    ///   compatibility), with no materialised state — the simulation only
    ///   cares about conflicts.
    /// * Abstract-data-type model: every object gets its own randomly
    ///   generated compatibility table with `P_c` commutative and `P_r`
    ///   recoverable entries.
    pub fn populate(&self, kernel: &mut SchedulerKernel, rng: &mut SimRng) -> Vec<ObjectId> {
        let mut ids = Vec::with_capacity(self.db_size);
        for i in 0..self.db_size {
            let object = self.make_object(rng);
            let id = kernel
                .register_object(format!("obj{i}"), Box::new(object))
                .expect("object names are unique");
            ids.push(id);
        }
        ids
    }

    /// [`Self::populate`] against a sharded kernel: same names, same
    /// registration order, and therefore the same (global) object ids —
    /// only the shard placement differs, by the name hash.
    pub fn populate_sharded(&self, kernel: &ShardedKernel, rng: &mut SimRng) -> Vec<ObjectId> {
        let mut ids = Vec::with_capacity(self.db_size);
        for i in 0..self.db_size {
            let object = self.make_object(rng);
            let (id, _loc) = kernel
                .register_object(format!("obj{i}"), Box::new(object))
                .expect("object names are unique");
            ids.push(id);
        }
        ids
    }

    fn make_object(&self, rng: &mut SimRng) -> AbstractObject {
        match self.data_model {
            DataModel::ReadWrite { .. } => AbstractObject::read_write(),
            DataModel::AbstractAdt {
                ops_per_object,
                p_c,
                p_r,
            } => AbstractObject::random(ops_per_object, p_c, p_r, rng.inner()),
        }
    }

    /// Generate a transaction script: a uniformly distributed number of
    /// operations, each on a uniformly chosen object, with the operation
    /// kind drawn according to the data model.
    pub fn generate_script(&self, objects: &[ObjectId], rng: &mut SimRng) -> Vec<(ObjectId, OpCall)> {
        let length = rng.uniform_inclusive(self.min_length, self.max_length);
        let mut script = Vec::with_capacity(length);
        for _ in 0..length {
            let object = objects[rng.index(self.db_size)];
            let kind = match self.data_model {
                DataModel::ReadWrite { write_probability } => {
                    if rng.chance(write_probability) {
                        RW_WRITE
                    } else {
                        RW_READ
                    }
                }
                DataModel::AbstractAdt { ops_per_object, .. } => rng.index(ops_per_object),
            };
            script.push((object, OpCall::nullary(kind)));
        }
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_core::{ConflictPolicy, SchedulerConfig};

    fn kernel() -> SchedulerKernel {
        SchedulerKernel::new(
            SchedulerConfig::default()
                .with_policy(ConflictPolicy::Recoverability)
                .with_history(false),
        )
    }

    #[test]
    fn populate_registers_db_size_objects() {
        let params = SimParams {
            db_size: 20,
            ..SimParams::default()
        };
        let gen = WorkloadGenerator::new(&params);
        let mut k = kernel();
        let mut rng = SimRng::new(1);
        let ids = gen.populate(&mut k, &mut rng);
        assert_eq!(ids.len(), 20);
        assert_eq!(k.object_count(), 20);
        assert_eq!(k.object_id("obj0"), Some(ids[0]));
        assert_eq!(k.object_id("obj19"), Some(ids[19]));
    }

    #[test]
    fn read_write_scripts_respect_the_write_probability() {
        let params = SimParams {
            db_size: 50,
            data_model: DataModel::ReadWrite {
                write_probability: 0.3,
            },
            ..SimParams::default()
        };
        let gen = WorkloadGenerator::new(&params);
        let mut k = kernel();
        let mut rng = SimRng::new(2);
        let ids = gen.populate(&mut k, &mut rng);

        let mut writes = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let script = gen.generate_script(&ids, &mut rng);
            assert!(script.len() >= params.min_length && script.len() <= params.max_length);
            for (_, call) in &script {
                assert!(call.kind == RW_READ || call.kind == RW_WRITE);
                if call.kind == RW_WRITE {
                    writes += 1;
                }
                total += 1;
            }
        }
        let ratio = writes as f64 / total as f64;
        assert!(
            (ratio - 0.3).abs() < 0.03,
            "write ratio {ratio} should be close to 0.3"
        );
    }

    #[test]
    fn adt_scripts_use_all_operation_kinds_uniformly() {
        let params = SimParams {
            db_size: 10,
            data_model: DataModel::abstract_adt(4, 4),
            ..SimParams::default()
        };
        let gen = WorkloadGenerator::new(&params);
        let mut k = kernel();
        let mut rng = SimRng::new(3);
        let ids = gen.populate(&mut k, &mut rng);
        let mut counts = [0usize; 4];
        for _ in 0..1000 {
            for (_, call) in gen.generate_script(&ids, &mut rng) {
                assert!(call.kind < 4);
                counts[call.kind] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for c in counts {
            let share = c as f64 / total as f64;
            assert!((share - 0.25).abs() < 0.05, "operation share {share}");
        }
    }

    #[test]
    fn scripts_are_deterministic_for_a_seed() {
        let params = SimParams {
            db_size: 30,
            ..SimParams::default()
        };
        let gen = WorkloadGenerator::new(&params);
        let mut k1 = kernel();
        let mut k2 = kernel();
        let mut r1 = SimRng::new(9);
        let mut r2 = SimRng::new(9);
        let ids1 = gen.populate(&mut k1, &mut r1);
        let ids2 = gen.populate(&mut k2, &mut r2);
        assert_eq!(ids1, ids2);
        for _ in 0..10 {
            assert_eq!(gen.generate_script(&ids1, &mut r1), gen.generate_script(&ids2, &mut r2));
        }
    }
}
