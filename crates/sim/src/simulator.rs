//! The closed-queuing-network simulator (Figure 3 of the paper).
//!
//! Terminals submit transactions after exponential think times; at most
//! `mpl_level` transactions are active; each operation is admitted by the
//! concurrency-control kernel and then consumes resources (`step_time`, or
//! CPU + disk under finite resources); blocked transactions wait inside the
//! kernel; aborted transactions restart immediately at the end of the ready
//! queue with the identical script; a transaction completes when it
//! pseudo-commits or commits, at which point its terminal starts thinking
//! about the next one.

use crate::config::{ResourceMode, SimParams};
use crate::event::{Event, EventQueue, ServiceStage, SimTxnKey};
use crate::metrics::SimulationResult;
use crate::resources::{Grant, ResourcePool};
use crate::rng::SimRng;
use crate::workload::WorkloadGenerator;
use sbcc_adt::OpCall;
use sbcc_core::{
    BatchCall, BatchStop, DatabaseConfig, KernelEvent, KernelStats, ObjectId, RequestOutcome,
    SchedulerConfig, ShardedKernel, StatsSnapshot, TxnId,
};
use std::collections::{HashMap, VecDeque};

/// Phase of a simulated transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting in the ready queue (either new or restarting).
    Ready,
    /// Admitted; currently requesting or serving operations.
    Running,
    /// Blocked inside the kernel, waiting for a conflicting transaction.
    BlockedInKernel,
    /// Completed (pseudo-committed or committed).
    Completed,
}

/// One simulated transaction (stable across restarts).
#[derive(Debug, Clone)]
struct SimTxn {
    terminal: usize,
    script: Vec<(ObjectId, OpCall)>,
    next_op: usize,
    submit_time: f64,
    kernel_txn: Option<TxnId>,
    restarts: u64,
    phase: Phase,
    holds_slot: bool,
    completed: bool,
    /// Batched mode: operations admitted by the kernel whose service burst
    /// has not started yet (accumulated while the batch's terminator is
    /// blocked inside the kernel).
    owed_service: u64,
    /// Number of operations covered by the service burst in flight
    /// (always 1 under per-call submission).
    service_burst: u64,
}

/// The simulator. Build it from [`SimParams`] and call [`Simulator::run`].
///
/// The kernel behind the closed network is a [`ShardedKernel`]; with the
/// default `shards = 1` it reproduces the paper's single scheduler state
/// machine exactly, and larger shard counts exercise the sharded admission
/// path (cross-shard enrollment, escalated cycle checks, coordinated
/// commits) under the simulated workload.
pub struct Simulator {
    params: SimParams,
    kernel: ShardedKernel,
    objects: Vec<ObjectId>,
    workload: WorkloadGenerator,
    rng: SimRng,
    queue: EventQueue,
    pool: Option<ResourcePool>,
    txns: Vec<SimTxn>,
    kernel_to_sim: HashMap<TxnId, SimTxnKey>,
    ready_queue: VecDeque<SimTxnKey>,
    active_count: usize,
    // accumulators
    completed: u64,
    full_commit_completions: u64,
    pseudo_commit_completions: u64,
    total_response_time: f64,
    restarts: u64,
    total_abort_length: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("params", &self.params.describe())
            .field("completed", &self.completed)
            .finish()
    }
}

impl Simulator {
    /// Build a simulator for the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`SimParams::validate`].
    pub fn new(params: SimParams) -> Self {
        params.validate().expect("invalid simulation parameters");
        let mut rng = SimRng::new(params.seed);
        let config = SchedulerConfig::default()
            .with_policy(params.policy)
            .with_fair_scheduling(params.fair_scheduling)
            .with_recovery(params.recovery)
            .with_victim(params.victim)
            .with_history(false);
        let kernel = ShardedKernel::new(DatabaseConfig {
            scheduler: config,
            shards: params.shards.into(),
            wal: None,
        });
        let workload = WorkloadGenerator::new(&params);
        let objects = workload.populate_sharded(&kernel, &mut rng);
        let pool = match params.resource_mode {
            ResourceMode::Infinite => None,
            ResourceMode::Finite { resource_units } => Some(ResourcePool::new(resource_units)),
        };
        Simulator {
            params,
            kernel,
            objects,
            workload,
            rng,
            queue: EventQueue::new(),
            pool,
            txns: Vec::new(),
            kernel_to_sim: HashMap::new(),
            ready_queue: VecDeque::new(),
            active_count: 0,
            completed: 0,
            full_commit_completions: 0,
            pseudo_commit_completions: 0,
            total_response_time: 0.0,
            restarts: 0,
            total_abort_length: 0,
        }
    }

    /// The parameters this simulator was built with.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Snapshot of the aggregate kernel counters (useful mid-run in tests).
    pub fn kernel_stats(&self) -> KernelStats {
        self.kernel.stats()
    }

    /// The aggregate plus per-shard counter breakdown.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.kernel.stats_snapshot()
    }

    /// Run the simulation until `target_completions` transactions have
    /// completed and return the collected metrics.
    pub fn run(&mut self) -> SimulationResult {
        // Every terminal starts thinking at time zero and submits its first
        // transaction after a think time.
        for terminal in 0..self.params.num_terminals {
            let delay = self.rng.exponential(self.params.ext_think_time);
            self.queue
                .schedule_in(delay, Event::TerminalSubmit { terminal });
        }

        while self.completed < self.params.target_completions {
            let Some((_, event)) = self.queue.pop() else {
                // Should be impossible in a closed network, but guard anyway.
                break;
            };
            match event {
                Event::TerminalSubmit { terminal } => self.submit_transaction(terminal),
                Event::ServiceDone { txn, stage, gen } => self.service_done(txn, stage, gen),
            }
        }
        self.result()
    }

    /// Metrics collected so far.
    pub fn result(&self) -> SimulationResult {
        let sim_time = self.queue.now().max(f64::EPSILON);
        let completed = self.completed.max(1);
        let stats = self.kernel.stats();
        SimulationResult {
            completed: self.completed,
            full_commit_completions: self.full_commit_completions,
            pseudo_commit_completions: self.pseudo_commit_completions,
            sim_time: self.queue.now(),
            throughput: self.completed as f64 / sim_time,
            response_time: if self.completed == 0 {
                0.0
            } else {
                self.total_response_time / self.completed as f64
            },
            blocking_ratio: stats.blocks as f64 / completed as f64,
            restart_ratio: self.restarts as f64 / completed as f64,
            cycle_check_ratio: self.kernel.cycle_checks() as f64 / completed as f64,
            abort_length: if self.restarts == 0 {
                0.0
            } else {
                self.total_abort_length as f64 / self.restarts as f64
            },
            blocks: stats.blocks,
            restarts: self.restarts,
            cycle_checks: self.kernel.cycle_checks(),
            commit_dependencies: stats.commit_dependencies,
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn submit_transaction(&mut self, terminal: usize) {
        let script = self.workload.generate_script(&self.objects, &mut self.rng);
        let key = self.txns.len();
        self.txns.push(SimTxn {
            terminal,
            script,
            next_op: 0,
            submit_time: self.queue.now(),
            kernel_txn: None,
            restarts: 0,
            phase: Phase::Ready,
            holds_slot: false,
            completed: false,
            owed_service: 0,
            service_burst: 1,
        });
        self.ready_queue.push_back(key);
        self.try_admit();
    }

    fn try_admit(&mut self) {
        while self.active_count < self.params.mpl_level {
            let Some(key) = self.ready_queue.pop_front() else {
                break;
            };
            self.admit(key);
        }
    }

    fn admit(&mut self, key: SimTxnKey) {
        self.active_count += 1;
        let kernel_txn = self.kernel.begin();
        {
            let txn = &mut self.txns[key];
            debug_assert_eq!(txn.phase, Phase::Ready);
            txn.kernel_txn = Some(kernel_txn);
            txn.phase = Phase::Running;
            txn.holds_slot = true;
            txn.next_op = 0;
        }
        self.kernel_to_sim.insert(kernel_txn, key);
        self.issue_next_op(key);
    }

    fn issue_next_op(&mut self, key: SimTxnKey) {
        if self.params.batch_submission {
            return self.issue_next_batch(key);
        }
        let (done, kernel_txn, object, call) = {
            let txn = &self.txns[key];
            if txn.next_op >= txn.script.len() {
                (true, txn.kernel_txn.expect("admitted"), ObjectId(0), OpCall::nullary(0))
            } else {
                let (object, call) = txn.script[txn.next_op].clone();
                (false, txn.kernel_txn.expect("admitted"), object, call)
            }
        };
        if done {
            self.finish_transaction(key);
            return;
        }
        let gen = self.txns[key].restarts;
        let outcome = self
            .kernel
            .request(kernel_txn, object, call)
            .expect("valid request");
        self.process_kernel_events();
        if self.txns[key].restarts != gen {
            // The settle triggered by this very request victim-aborted this
            // transaction (it can be the youngest participant of a cycle a
            // *retried* request closes); `handle_abort` already re-queued
            // it — the outcome belongs to the dead incarnation.
            return;
        }
        match outcome {
            RequestOutcome::Executed { .. } => self.start_service(key),
            RequestOutcome::Blocked { .. } => {
                self.txns[key].phase = Phase::BlockedInKernel;
            }
            RequestOutcome::Aborted { .. } => self.handle_abort(key),
        }
    }

    /// Submit the transaction's entire remaining script as one kernel
    /// batch; service the admitted prefix as one burst.
    fn issue_next_batch(&mut self, key: SimTxnKey) {
        let (kernel_txn, calls) = {
            let txn = &self.txns[key];
            if txn.next_op >= txn.script.len() {
                self.finish_transaction(key);
                return;
            }
            let calls: Vec<BatchCall> = txn.script[txn.next_op..]
                .iter()
                .map(|(object, call)| BatchCall::new(*object, call.clone()))
                .collect();
            (txn.kernel_txn.expect("admitted"), calls)
        };
        let gen = self.txns[key].restarts;
        let outcome = self
            .kernel
            .request_batch(kernel_txn, calls)
            .expect("valid batch");
        self.process_kernel_events();
        if self.txns[key].restarts != gen {
            // Victim-aborted while the batch's side effects settled; see
            // `issue_next_op`.
            return;
        }
        let executed = outcome.executed.len() as u64;
        self.txns[key].next_op += executed as usize;
        match outcome.stopped {
            None => {
                if executed == 0 {
                    self.finish_transaction(key);
                } else {
                    self.start_service_burst(key, executed);
                }
            }
            Some(BatchStop::Blocked { .. }) => {
                // The executed prefix's service is owed; it is bundled into
                // the burst that starts when the pending call unblocks.
                let txn = &mut self.txns[key];
                txn.owed_service += executed;
                txn.phase = Phase::BlockedInKernel;
            }
            Some(BatchStop::Aborted { .. }) => self.handle_abort(key),
        }
    }

    fn start_service(&mut self, key: SimTxnKey) {
        self.start_service_burst(key, 1);
    }

    /// Schedule service for `ops` back-to-back operations (one operation
    /// under per-call submission; an admitted batch prefix under batched
    /// submission, which pays its CPU/disk demands as one scaled burst).
    fn start_service_burst(&mut self, key: SimTxnKey, ops: u64) {
        self.txns[key].phase = Phase::Running;
        self.txns[key].service_burst = ops;
        let gen = self.txns[key].restarts;
        match self.params.resource_mode {
            ResourceMode::Infinite => {
                self.queue.schedule_in(
                    self.params.step_time * ops as f64,
                    Event::ServiceDone {
                        txn: key,
                        stage: ServiceStage::Step,
                        gen,
                    },
                );
            }
            ResourceMode::Finite { .. } => {
                let pool = self.pool.as_mut().expect("finite resources have a pool");
                match pool.acquire_cpu(key) {
                    Grant::Acquired => {
                        self.queue.schedule_in(
                            self.params.cpu_time * ops as f64,
                            Event::ServiceDone {
                                txn: key,
                                stage: ServiceStage::Cpu,
                                gen,
                            },
                        );
                    }
                    Grant::Queued => {
                        // Waiting in the CPU queue; service starts when a CPU
                        // frees up (handled in `service_done`).
                    }
                }
            }
        }
    }

    /// Handle a completed service stage. `gen` is the restart count the
    /// event was scheduled under: a mismatch means the transaction was
    /// aborted asynchronously (a `Youngest` cycle victim) while this event
    /// was in flight — the stale event still performs its resource
    /// hand-off (the victim's burst occupied the CPU/disk until now; the
    /// wasted service is the abort's cost), but it must not advance the
    /// restarted incarnation's script.
    fn service_done(&mut self, key: SimTxnKey, stage: ServiceStage, gen: u64) {
        let stale = self.txns[key].restarts != gen;
        match stage {
            ServiceStage::Step => {
                if !stale {
                    self.operation_complete(key);
                }
            }
            ServiceStage::Cpu => {
                // Hand the CPU to the next waiter, if any.
                let next = self
                    .pool
                    .as_mut()
                    .expect("finite resources have a pool")
                    .release_cpu();
                if let Some(next_key) = next {
                    let next_gen = self.txns[next_key].restarts;
                    self.queue.schedule_in(
                        self.params.cpu_time * self.txns[next_key].service_burst as f64,
                        Event::ServiceDone {
                            txn: next_key,
                            stage: ServiceStage::Cpu,
                            gen: next_gen,
                        },
                    );
                }
                if stale {
                    return; // the aborted incarnation's burst ends here
                }
                // This transaction now needs a randomly chosen disk.
                let pool = self.pool.as_mut().expect("finite resources have a pool");
                let disk = self.rng.index(pool.disk_count());
                match pool.acquire_disk(disk, key) {
                    Grant::Acquired => {
                        self.queue.schedule_in(
                            self.params.io_time * self.txns[key].service_burst as f64,
                            Event::ServiceDone {
                                txn: key,
                                stage: ServiceStage::Disk { disk },
                                gen,
                            },
                        );
                    }
                    Grant::Queued => {}
                }
            }
            ServiceStage::Disk { disk } => {
                let next = self
                    .pool
                    .as_mut()
                    .expect("finite resources have a pool")
                    .release_disk(disk);
                if let Some(next_key) = next {
                    let next_gen = self.txns[next_key].restarts;
                    self.queue.schedule_in(
                        self.params.io_time * self.txns[next_key].service_burst as f64,
                        Event::ServiceDone {
                            txn: next_key,
                            stage: ServiceStage::Disk { disk },
                            gen: next_gen,
                        },
                    );
                }
                if !stale {
                    self.operation_complete(key);
                }
            }
        }
    }

    fn operation_complete(&mut self, key: SimTxnKey) {
        if !self.params.batch_submission {
            // Batched mode advances `next_op` when the kernel admits the
            // calls, not when their service burst ends.
            self.txns[key].next_op += 1;
        }
        self.issue_next_op(key);
    }

    fn finish_transaction(&mut self, key: SimTxnKey) {
        let kernel_txn = self.txns[key].kernel_txn.expect("admitted");
        let outcome = self.kernel.commit(kernel_txn).expect("commit of active txn");
        self.process_kernel_events();

        let now = self.queue.now();
        let is_pseudo = outcome.is_pseudo_commit();
        {
            let txn = &mut self.txns[key];
            txn.phase = Phase::Completed;
            txn.completed = true;
            self.total_response_time += now - txn.submit_time;
        }
        self.completed += 1;
        if is_pseudo {
            self.pseudo_commit_completions += 1;
        } else {
            self.full_commit_completions += 1;
            self.kernel_to_sim.remove(&kernel_txn);
        }

        // Multiprogramming slot accounting.
        let release_now = !(is_pseudo && self.params.pseudo_commit_holds_slot);
        if release_now {
            let txn = &mut self.txns[key];
            if txn.holds_slot {
                txn.holds_slot = false;
                self.active_count -= 1;
            }
        }

        // The terminal starts thinking about its next transaction.
        let terminal = self.txns[key].terminal;
        let think = self.rng.exponential(self.params.ext_think_time);
        self.queue
            .schedule_in(think, Event::TerminalSubmit { terminal });

        if release_now {
            self.try_admit();
        }
    }

    fn handle_abort(&mut self, key: SimTxnKey) {
        let old_kernel_txn = {
            let txn = &mut self.txns[key];
            self.restarts += 1;
            self.total_abort_length += txn.next_op as u64;
            txn.restarts += 1;
            let old = txn.kernel_txn.take();
            txn.next_op = 0;
            txn.owed_service = 0;
            txn.phase = Phase::Ready;
            if txn.holds_slot {
                txn.holds_slot = false;
                self.active_count -= 1;
            }
            old
        };
        if let Some(k) = old_kernel_txn {
            self.kernel_to_sim.remove(&k);
        }
        // An asynchronous victim may be queued for a CPU or disk; it no
        // longer wants the grant (resources it *holds* are reclaimed by
        // the stale-event path of `service_done`).
        if let Some(pool) = self.pool.as_mut() {
            pool.purge(key);
        }
        // "An aborted transaction is restarted immediately, i.e., placed at
        // the end of the ready queue."
        self.ready_queue.push_back(key);
        self.try_admit();
    }

    fn process_kernel_events(&mut self) {
        let events = self.kernel.drain_events();
        for event in events {
            match event {
                KernelEvent::Unblocked { txn, outcome } => {
                    let Some(&key) = self.kernel_to_sim.get(&txn) else {
                        continue;
                    };
                    match outcome {
                        RequestOutcome::Executed { .. } => {
                            if self.params.batch_submission {
                                // The unblocked pending call plus the owed
                                // prefix are serviced as one burst.
                                let txn = &mut self.txns[key];
                                txn.next_op += 1;
                                let burst = txn.owed_service + 1;
                                txn.owed_service = 0;
                                self.start_service_burst(key, burst);
                            } else {
                                self.start_service(key);
                            }
                        }
                        RequestOutcome::Aborted { .. } => self.handle_abort(key),
                        RequestOutcome::Blocked { .. } => {
                            unreachable!("the kernel never reports re-blocking")
                        }
                    }
                }
                KernelEvent::Aborted { txn, .. } => {
                    if let Some(&key) = self.kernel_to_sim.get(&txn) {
                        self.handle_abort(key);
                    }
                }
                KernelEvent::Committed { txn } => {
                    // A pseudo-committed transaction actually committed.
                    let Some(key) = self.kernel_to_sim.remove(&txn) else {
                        continue;
                    };
                    if self.params.pseudo_commit_holds_slot {
                        let txn_rec = &mut self.txns[key];
                        if txn_rec.holds_slot && txn_rec.completed {
                            txn_rec.holds_slot = false;
                            self.active_count -= 1;
                            self.try_admit();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DataModel;
    use sbcc_core::{ConflictPolicy, VictimPolicy};

    fn small_params(policy: ConflictPolicy) -> SimParams {
        SimParams {
            db_size: 100,
            num_terminals: 40,
            mpl_level: 20,
            target_completions: 400,
            seed: 11,
            policy,
            ..SimParams::default()
        }
    }

    #[test]
    fn runs_to_completion_and_reports_metrics() {
        let mut sim = Simulator::new(small_params(ConflictPolicy::Recoverability));
        let result = sim.run();
        assert!(result.completed >= 400);
        assert!(result.sim_time > 0.0);
        assert!(result.throughput > 0.0);
        assert!(result.response_time > 0.0);
        assert!(result.cycle_checks > 0);
        assert!(result.blocking_ratio >= 0.0);
        assert!(!format!("{sim:?}").is_empty());
        assert_eq!(sim.params().mpl_level, 20);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        let b = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        assert_eq!(a, b);
        let c = Simulator::new(small_params(ConflictPolicy::Recoverability).with_seed(12)).run();
        assert_ne!(a, c, "different seeds should give different runs");
    }

    #[test]
    fn recoverability_blocks_less_than_commutativity() {
        let rec = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        let base = Simulator::new(small_params(ConflictPolicy::CommutativityOnly)).run();
        assert!(
            rec.blocking_ratio <= base.blocking_ratio,
            "recoverability BR {} should not exceed commutativity BR {}",
            rec.blocking_ratio,
            base.blocking_ratio
        );
        assert!(
            rec.throughput >= base.throughput * 0.95,
            "recoverability throughput {} should be at least as high as commutativity {}",
            rec.throughput,
            base.throughput
        );
        assert!(rec.pseudo_commit_completions > 0);
    }

    #[test]
    fn finite_resources_reduce_throughput() {
        let infinite = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        let finite = Simulator::new(
            small_params(ConflictPolicy::Recoverability)
                .with_resources(ResourceMode::Finite { resource_units: 1 }),
        )
        .run();
        assert!(
            finite.throughput < infinite.throughput,
            "1 resource unit ({}) must be slower than infinite resources ({})",
            finite.throughput,
            infinite.throughput
        );
    }

    #[test]
    fn adt_model_with_more_recoverability_blocks_less() {
        let mk = |p_r: usize| {
            let mut p = small_params(ConflictPolicy::Recoverability);
            p.data_model = DataModel::abstract_adt(4, p_r);
            Simulator::new(p).run()
        };
        let none = mk(0);
        let lots = mk(8);
        assert!(
            lots.blocking_ratio <= none.blocking_ratio,
            "Pr=8 BR {} should not exceed Pr=0 BR {}",
            lots.blocking_ratio,
            none.blocking_ratio
        );
    }

    #[test]
    fn batched_submission_runs_to_completion_and_stays_deterministic() {
        let params = small_params(ConflictPolicy::Recoverability).with_batch_submission(true);
        let mut sim = Simulator::new(params.clone());
        let a = sim.run();
        assert!(a.completed >= 400);
        assert!(a.throughput > 0.0);
        let stats = sim.kernel_stats();
        assert!(stats.batches > 0, "batched mode must reach request_batch");
        assert!(stats.batched_calls >= stats.batches);
        let b = Simulator::new(params).run();
        assert_eq!(a, b, "batched runs are deterministic for a fixed seed");
    }

    #[test]
    fn batched_submission_works_under_finite_resources_and_baseline_policy() {
        for policy in [
            ConflictPolicy::Recoverability,
            ConflictPolicy::CommutativityOnly,
        ] {
            let params = small_params(policy)
                .with_batch_submission(true)
                .with_resources(ResourceMode::Finite { resource_units: 2 });
            let result = Simulator::new(params).run();
            assert!(result.completed >= 400, "policy {policy}: completes");
            assert!(result.throughput > 0.0);
        }
    }

    #[test]
    fn batched_submission_profits_on_an_uncontended_workload() {
        // With little data contention the whole script is admitted in one
        // batch and serviced as one burst, so a transaction finishes in
        // (roughly) one service round instead of one per operation —
        // batched throughput must be at least the per-call throughput.
        let mut params = small_params(ConflictPolicy::Recoverability);
        params.db_size = 2_000; // spread transactions across many objects
        let percall = Simulator::new(params.clone()).run();
        let batched = Simulator::new(params.with_batch_submission(true)).run();
        assert!(
            batched.throughput >= percall.throughput,
            "batched {:.1} tps should not trail per-call {:.1} tps",
            batched.throughput,
            percall.throughput
        );
    }

    #[test]
    fn youngest_victim_policy_runs_at_scale() {
        // The ROADMAP item: asynchronous victim aborts (a transaction
        // aborted while it has an in-flight service event) must not corrupt
        // the closed network. Run to completion, deterministically, under
        // both resource models.
        let params = small_params(ConflictPolicy::Recoverability).with_victim(VictimPolicy::Youngest);
        let a = Simulator::new(params.clone()).run();
        assert!(a.completed >= 400);
        assert!(a.throughput > 0.0);
        let b = Simulator::new(params.clone()).run();
        assert_eq!(a, b, "async victim aborts stay deterministic");

        let finite = Simulator::new(
            params.with_resources(ResourceMode::Finite { resource_units: 2 }),
        )
        .run();
        assert!(finite.completed >= 400, "stale service events and queue purges hold up");
    }

    #[test]
    fn sharded_simulation_completes_and_is_deterministic() {
        for shards in [2usize, 4] {
            let params = small_params(ConflictPolicy::Recoverability).with_shards(shards);
            let mut sim = Simulator::new(params.clone());
            let a = sim.run();
            assert!(a.completed >= 400, "{shards} shards complete");
            let snapshot = sim.stats_snapshot();
            assert_eq!(snapshot.shards.len(), shards);
            assert!(
                snapshot.aggregate.escalated_edges > 0,
                "multi-object transactions span shards and escalate edges"
            );
            let b = Simulator::new(params).run();
            assert_eq!(a, b, "{shards}-shard runs are deterministic");
        }
    }

    #[test]
    fn single_shard_simulation_matches_the_unsharded_defaults() {
        // shards = 1 must degenerate to the paper's single state machine:
        // the default-parameter runs above were recorded against the
        // unsharded kernel, so an explicit 1-shard run must reproduce the
        // implicit default bit for bit.
        let base = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        let one = Simulator::new(small_params(ConflictPolicy::Recoverability).with_shards(1)).run();
        assert_eq!(base, one);
    }

    #[test]
    fn mpl_slot_accounting_choice_is_respected() {
        let mut hold = small_params(ConflictPolicy::Recoverability);
        hold.pseudo_commit_holds_slot = true;
        let held = Simulator::new(hold).run();
        let released = Simulator::new(small_params(ConflictPolicy::Recoverability)).run();
        // Holding the slot can only reduce (or leave unchanged) concurrency.
        assert!(held.throughput <= released.throughput * 1.05);
    }
}
