//! # sbcc-bench — benchmark support
//!
//! The Criterion benchmarks live in `benches/`:
//!
//! * `classification` — compatibility-table lookups and random-table
//!   generation (the object managers' hot path);
//! * `cycle_detection` — dependency-graph cycle checks at various graph
//!   sizes;
//! * `kernel_throughput` — raw scheduler throughput under both conflict
//!   policies and both recovery strategies;
//! * `figures` — reduced-scale versions of the paper's figure sweeps
//!   (Figures 4, 8, 10, 11, 14, 17), small enough for `cargo bench` yet
//!   preserving the qualitative shape;
//! * `ablations` — the design choices called out in DESIGN.md §7
//!   (fair scheduling, mpl slot accounting, recovery strategy, victim
//!   policy, cycle-check algorithm).
//!
//! This library crate only hosts small helpers shared by the benches.

#![forbid(unsafe_code)]

use sbcc_core::ConflictPolicy;
use sbcc_sim::{SimParams, Simulator};

/// A reduced-scale parameter set that keeps the paper's structure (closed
/// network, think times, 4–12 operation transactions) but completes quickly
/// enough for a benchmark iteration.
pub fn bench_params(policy: ConflictPolicy, mpl: usize) -> SimParams {
    SimParams {
        db_size: 200,
        num_terminals: 60,
        mpl_level: mpl,
        target_completions: 400,
        seed: 99,
        policy,
        ..SimParams::default()
    }
}

/// Run one reduced-scale simulation and return its throughput (used as the
/// benchmark work item).
pub fn run_once(params: SimParams) -> f64 {
    Simulator::new(params).run().throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_params_are_valid_and_runnable() {
        let p = bench_params(ConflictPolicy::Recoverability, 20);
        p.validate().unwrap();
        let throughput = run_once(p);
        assert!(throughput > 0.0);
    }
}
