//! Micro-benchmarks of the semantic layer: compatibility classification (the
//! object managers' hot path) and random conflict-table generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbcc_adt::{
    AbstractObject, AdtObject, AdtOp, AdtSpec, ConflictTable, SemanticObject, Stack, StackOp,
    TableObject, TableOp, Value,
};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    configure(&mut group);

    // Typed classification through the static tables.
    let push = StackOp::Push(Value::Int(1));
    let pop = StackOp::Pop;
    group.bench_function("stack_typed_pair", |b| {
        b.iter(|| Stack::classify(black_box(&push), black_box(&pop)))
    });

    // Parameter-dependent classification on the keyed table.
    let ins = TableOp::Insert(Value::Int(10), Value::Int(1));
    let lookup = TableOp::Lookup(Value::Int(11));
    group.bench_function("table_parameter_dependent_pair", |b| {
        b.iter(|| TableObject::classify(black_box(&ins), black_box(&lookup)))
    });

    // Erased classification as the kernel performs it.
    let erased: Box<dyn SemanticObject> = Box::new(AdtObject::new(TableObject::new()));
    let ins_call = ins.to_call();
    let lookup_call = lookup.to_call();
    group.bench_function("table_erased_pair", |b| {
        b.iter(|| erased.classify(black_box(&ins_call), black_box(&lookup_call)))
    });

    // Abstract object (simulation model): direct table lookup.
    let mut rng = StdRng::seed_from_u64(1);
    let abstract_obj = AbstractObject::random(4, 4, 4, &mut rng);
    let a = sbcc_adt::OpCall::nullary(0);
    let b_call = sbcc_adt::OpCall::nullary(3);
    group.bench_function("abstract_object_pair", |b| {
        b.iter(|| abstract_obj.classify(black_box(&a), black_box(&b_call)))
    });

    // Scanning a log of 16 executed operations, as an object manager does.
    let executed: Vec<sbcc_adt::OpCall> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                TableOp::Insert(Value::Int(i), Value::Int(i)).to_call()
            } else {
                TableOp::Lookup(Value::Int(i)).to_call()
            }
        })
        .collect();
    let requested = TableOp::Size.to_call();
    group.bench_function("scan_log_of_16", |b| {
        b.iter(|| {
            executed
                .iter()
                .map(|e| erased.classify(black_box(&requested), black_box(e)))
                .filter(|c| !c.admits_execution())
                .count()
        })
    });

    group.finish();
}

fn bench_table_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_table_generation");
    configure(&mut group);

    for (p_c, p_r) in [(4usize, 0usize), (4, 4), (4, 8), (2, 8)] {
        group.bench_function(format!("random_pc{p_c}_pr{p_r}"), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| ConflictTable::random(4, black_box(p_c), black_box(p_r), &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification, bench_table_generation);
criterion_main!(benches);
