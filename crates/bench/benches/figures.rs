//! Reduced-scale versions of the paper's figure sweeps, one benchmark per
//! figure family. Each iteration runs a complete (small) closed-network
//! simulation, so the reported time tracks how expensive the corresponding
//! experiment is — and the returned throughput preserves the figure's shape
//! (recoverability ≥ commutativity, more recoverable entries ⇒ more
//! throughput).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_bench::bench_params;
use sbcc_core::ConflictPolicy;
use sbcc_sim::{DataModel, ResourceMode, SimParams, Simulator};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

fn run(params: SimParams) -> f64 {
    Simulator::new(params).run().throughput
}

fn bench_fig04_rw_infinite(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_rw_inf");
    configure(&mut group);
    for policy in [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ] {
        group.bench_function(format!("{policy}_mpl40"), |b| {
            b.iter(|| run(black_box(bench_params(policy, 40))))
        });
    }
    group.finish();
}

fn bench_fig10_fig11_rw_finite(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_fig11_rw_finite");
    configure(&mut group);
    for (label, units) in [("fig10_5ru", 5usize), ("fig11_1ru", 1)] {
        for policy in [
            ConflictPolicy::CommutativityOnly,
            ConflictPolicy::Recoverability,
        ] {
            group.bench_function(format!("{label}_{policy}"), |b| {
                b.iter(|| {
                    run(black_box(
                        bench_params(policy, 40)
                            .with_resources(ResourceMode::Finite { resource_units: units }),
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_fig14_fig17_adt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fig17_adt");
    configure(&mut group);
    for (label, resources) in [
        ("fig14_inf", ResourceMode::Infinite),
        ("fig17_5ru", ResourceMode::Finite { resource_units: 5 }),
    ] {
        for p_r in [0usize, 4, 8] {
            group.bench_function(format!("{label}_pr{p_r}"), |b| {
                b.iter(|| {
                    let mut p = bench_params(ConflictPolicy::Recoverability, 40)
                        .with_resources(resources);
                    p.data_model = DataModel::abstract_adt(4, p_r);
                    run(black_box(p))
                })
            });
        }
    }
    group.finish();
}

fn bench_fig08_unfair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_rw_unfair");
    configure(&mut group);
    for policy in [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ] {
        group.bench_function(format!("{policy}_mpl40"), |b| {
            b.iter(|| run(black_box(bench_params(policy, 40).with_fair_scheduling(false))))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig04_rw_infinite,
    bench_fig08_unfair,
    bench_fig10_fig11_rw_finite,
    bench_fig14_fig17_adt
);
criterion_main!(benches);
