//! Raw scheduler throughput: how many operations per second the kernel
//! admits under each conflict policy and recovery strategy, independent of
//! the queuing model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_adt::{Counter, CounterOp, Stack, StackOp, TableObject, TableOp, Value};
use sbcc_core::{ConflictPolicy, RecoveryStrategy, SchedulerConfig, SchedulerKernel};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// 64 transactions of 8 operations each over a small hot object set — a
/// dense, conflict-heavy workload.
fn run_workload(policy: ConflictPolicy, recovery: RecoveryStrategy) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_policy(policy)
            .with_recovery(recovery)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let counter = kernel.register("counter", Counter::new()).unwrap();
    let table = kernel.register("table", TableObject::new()).unwrap();

    let mut completed = 0u64;
    let mut live = Vec::new();
    for round in 0..64i64 {
        let t = kernel.begin();
        let mut aborted = false;
        for step in 0..8i64 {
            let outcome = match step % 4 {
                0 => kernel.request_op(t, stack, &StackOp::Push(Value::Int(round))),
                1 => kernel.request_op(t, counter, &CounterOp::Increment(1)),
                2 => kernel.request_op(
                    t,
                    table,
                    &TableOp::Insert(Value::Int(round * 8 + step), Value::Int(step)),
                ),
                _ => kernel.request_op(t, counter, &CounterOp::Decrement(1)),
            }
            .unwrap();
            if !outcome.is_executed() {
                aborted = true;
                break;
            }
        }
        if !aborted {
            let _ = kernel.commit(t);
            completed += 1;
        }
        let _ = kernel.drain_events();
        live.push(t);
        // Periodically commit stragglers so logs do not grow without bound.
        if round % 16 == 15 {
            live.clear();
        }
    }
    completed
}

fn bench_kernel_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_throughput");
    configure(&mut group);
    for policy in [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ] {
        group.bench_function(format!("policy_{policy}"), |b| {
            b.iter(|| run_workload(black_box(policy), RecoveryStrategy::IntentionsList))
        });
    }
    for recovery in [RecoveryStrategy::IntentionsList, RecoveryStrategy::UndoReplay] {
        group.bench_function(format!("recovery_{recovery}"), |b| {
            b.iter(|| run_workload(ConflictPolicy::Recoverability, black_box(recovery)))
        });
    }
    group.finish();
}

fn bench_hotspot_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_counter");
    configure(&mut group);
    group.bench_function("200_concurrent_increments", |b| {
        b.iter(|| {
            let mut kernel = SchedulerKernel::new(
                SchedulerConfig::default().with_history(false),
            );
            let counter = kernel.register("hits", Counter::new()).unwrap();
            let txns: Vec<_> = (0..200).map(|_| kernel.begin()).collect();
            for t in &txns {
                let _ = kernel.request_op(*t, counter, &CounterOp::Increment(1));
            }
            for t in &txns {
                let _ = kernel.commit(*t);
            }
            kernel.stats().commits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_policies, bench_hotspot_counter);
criterion_main!(benches);
