//! Raw scheduler throughput: how many operations per second the kernel
//! admits under each conflict policy and recovery strategy, independent of
//! the queuing model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_adt::{Counter, CounterOp, Stack, StackOp, TableObject, TableOp, Value};
use sbcc_core::{
    ConflictPolicy, CycleDetector, RecoveryStrategy, ReorderStrategy, SchedulerConfig,
    SchedulerKernel,
};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

/// 64 transactions of 8 operations each over a small hot object set — a
/// dense, conflict-heavy workload.
fn run_workload(policy: ConflictPolicy, recovery: RecoveryStrategy) -> u64 {
    run_workload_with(policy, recovery, CycleDetector::Incremental)
}

fn run_workload_with(
    policy: ConflictPolicy,
    recovery: RecoveryStrategy,
    detector: CycleDetector,
) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_policy(policy)
            .with_recovery(recovery)
            .with_cycle_detector(detector)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let counter = kernel.register("counter", Counter::new()).unwrap();
    let table = kernel.register("table", TableObject::new()).unwrap();

    let mut completed = 0u64;
    let mut live = Vec::new();
    for round in 0..64i64 {
        let t = kernel.begin();
        let mut aborted = false;
        for step in 0..8i64 {
            let outcome = match step % 4 {
                0 => kernel.request_op(t, stack, &StackOp::Push(Value::Int(round))),
                1 => kernel.request_op(t, counter, &CounterOp::Increment(1)),
                2 => kernel.request_op(
                    t,
                    table,
                    &TableOp::Insert(Value::Int(round * 8 + step), Value::Int(step)),
                ),
                _ => kernel.request_op(t, counter, &CounterOp::Decrement(1)),
            }
            .unwrap();
            if !outcome.is_executed() {
                aborted = true;
                break;
            }
        }
        if !aborted {
            let _ = kernel.commit(t);
            completed += 1;
        }
        let _ = kernel.drain_events();
        live.push(t);
        // Periodically commit stragglers so logs do not grow without bound.
        if round % 16 == 15 {
            live.clear();
        }
    }
    completed
}

fn bench_kernel_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_throughput");
    configure(&mut group);
    for policy in [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ] {
        group.bench_function(format!("policy_{policy}"), |b| {
            b.iter(|| run_workload(black_box(policy), RecoveryStrategy::IntentionsList))
        });
    }
    for recovery in [RecoveryStrategy::IntentionsList, RecoveryStrategy::UndoReplay] {
        group.bench_function(format!("recovery_{recovery}"), |b| {
            b.iter(|| run_workload(ConflictPolicy::Recoverability, black_box(recovery)))
        });
    }
    group.finish();
}

/// The old-vs-new comparison at the kernel level: the same conflict-heavy
/// workload scheduled with the incremental detector vs the from-scratch
/// SCC oracle per check. The two are behaviourally identical (differential
/// tests prove it), so the gap is pure cycle-check cost.
fn bench_cycle_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_cycle_detector");
    configure(&mut group);
    for detector in [CycleDetector::Incremental, CycleDetector::SccOracle] {
        group.bench_function(format!("detector_{detector}"), |b| {
            b.iter(|| {
                run_workload_with(
                    ConflictPolicy::Recoverability,
                    RecoveryStrategy::IntentionsList,
                    black_box(detector),
                )
            })
        });
    }
    group.finish();
}

/// Dense dependency workload: `n` concurrent transactions all pushing onto
/// one stack. Every push is recoverable relative to every earlier
/// uncommitted push, so request `k` runs a cycle check against `k - 1`
/// targets over a `k`-node commit-dependency graph — the quadratic shape
/// where per-check cost decides throughput. Committing in reverse order
/// then cascades the whole pseudo-commit chain.
fn run_dense_chain(n: u64, detector: CycleDetector) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_cycle_detector(detector)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let txns: Vec<_> = (0..n).map(|_| kernel.begin()).collect();
    for (i, t) in txns.iter().enumerate() {
        let r = kernel
            .request_op(*t, stack, &StackOp::Push(Value::Int(i as i64)))
            .unwrap();
        assert!(r.is_executed());
    }
    for t in txns.iter().rev() {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    kernel.stats().commits
}

fn bench_dense_chain_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dense_chain");
    configure(&mut group);
    for n in [64u64, 256, 512] {
        for detector in [CycleDetector::Incremental, CycleDetector::SccOracle] {
            group.bench_function(format!("{n}_txns_detector_{detector}"), |b| {
                b.iter(|| run_dense_chain(black_box(n), black_box(detector)))
            });
        }
    }
    group.finish();
}

/// [`run_dense_chain`] with the pushes submitted in **reverse** begin
/// order: every commit-dependency edge then points from an older (lower
/// labeled) transaction to newer ones, so every push triggers a
/// Pearce–Kelly order-violation repair over the chain built so far — the
/// dense_chain workload variant that actually exercises the reorder.
fn run_dense_chain_rev(n: u64, reorder: ReorderStrategy) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_reorder(reorder)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let txns: Vec<_> = (0..n).map(|_| kernel.begin()).collect();
    for (i, t) in txns.iter().enumerate().rev() {
        let r = kernel
            .request_op(*t, stack, &StackOp::Push(Value::Int(i as i64)))
            .unwrap();
        assert!(r.is_executed());
    }
    for t in txns.iter() {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    assert!(kernel.reorder_telemetry().violations >= n / 2);
    kernel.stats().commits
}

/// Gap-labeled vs dense reorder on the violation-heavy dense chain: the
/// two repairs make identical scheduling decisions (differential proptests
/// pin it), so the gap is pure reorder maintenance cost.
fn bench_dense_chain_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_dense_chain");
    configure(&mut group);
    for n in [64u64, 384] {
        for reorder in [ReorderStrategy::GapLabel, ReorderStrategy::DenseRedistribute] {
            group.bench_function(format!("{n}_txns_reversed_{reorder}"), |b| {
                b.iter(|| run_dense_chain_rev(black_box(n), black_box(reorder)))
            });
        }
    }
    group.finish();
}

/// Batched vs per-call submission on the contended submission workload
/// (96 live transactions, 8 operations each, everything admissible): the
/// two modes make identical scheduling decisions — the differential suite
/// proves it — so the gap is pure per-call overhead: one classification
/// index walk per operation vs one per group.
fn bench_submission_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_submission");
    configure(&mut group);
    for (name, batched) in [("percall", false), ("batched", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                sbcc_experiments::bench_kernel::submission_workload(black_box(batched), 96, 8)
            })
        });
    }
    group.finish();
}

fn bench_hotspot_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_counter");
    configure(&mut group);
    group.bench_function("200_concurrent_increments", |b| {
        b.iter(|| {
            let mut kernel = SchedulerKernel::new(
                SchedulerConfig::default().with_history(false),
            );
            let counter = kernel.register("hits", Counter::new()).unwrap();
            let txns: Vec<_> = (0..200).map(|_| kernel.begin()).collect();
            for t in &txns {
                let _ = kernel.request_op(*t, counter, &CounterOp::Increment(1));
            }
            for t in &txns {
                let _ = kernel.commit(*t);
            }
            kernel.stats().commits
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernel_policies,
    bench_cycle_detectors,
    bench_dense_chain_detectors,
    bench_dense_chain_reorder,
    bench_submission_modes,
    bench_hotspot_counter
);
criterion_main!(benches);
