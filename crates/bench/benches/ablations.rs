//! Ablation benchmarks for the design choices called out in DESIGN.md §7:
//! fair scheduling, mpl-slot accounting for pseudo-committed transactions,
//! recovery strategy, victim policy, and the cycle-check algorithm.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_bench::bench_params;
use sbcc_core::{ConflictPolicy, RecoveryStrategy, VictimPolicy};
use sbcc_graph::{strongly_connected_components, DependencyGraph, EdgeKind};
use sbcc_sim::Simulator;
use std::collections::HashMap;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

fn bench_ablate_policy_and_fairness(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_policy_fairness");
    configure(&mut group);
    for (label, policy, fair) in [
        ("commutativity_fair", ConflictPolicy::CommutativityOnly, true),
        ("recoverability_fair", ConflictPolicy::Recoverability, true),
        ("recoverability_unfair", ConflictPolicy::Recoverability, false),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                Simulator::new(black_box(bench_params(policy, 40).with_fair_scheduling(fair)))
                    .run()
                    .throughput
            })
        });
    }
    group.finish();
}

fn bench_ablate_mpl_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_mpl_slot");
    configure(&mut group);
    for (label, holds) in [("release_on_pseudo_commit", false), ("hold_until_commit", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut p = bench_params(ConflictPolicy::Recoverability, 40);
                p.pseudo_commit_holds_slot = holds;
                Simulator::new(black_box(p)).run().throughput
            })
        });
    }
    group.finish();
}

fn bench_ablate_recovery_and_victim(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_recovery_victim");
    configure(&mut group);
    for recovery in [RecoveryStrategy::IntentionsList, RecoveryStrategy::UndoReplay] {
        group.bench_function(format!("recovery_{recovery}"), |b| {
            b.iter(|| {
                let mut p = bench_params(ConflictPolicy::Recoverability, 40);
                p.recovery = recovery;
                Simulator::new(black_box(p)).run().throughput
            })
        });
    }
    // Victim-policy ablation at the kernel level: the closed-network
    // simulator only models requester-victim selection (the paper's choice),
    // so the comparison here drives the scheduler directly with a
    // conflict-heavy scripted workload.
    for victim in [VictimPolicy::Requester, VictimPolicy::Youngest] {
        group.bench_function(format!("victim_{victim}_kernel"), |b| {
            b.iter(|| kernel_victim_workload(black_box(victim)))
        });
    }
    group.finish();
}

/// A conflict-heavy scripted kernel workload that regularly closes
/// commit-dependency cycles, so the victim policy actually matters.
fn kernel_victim_workload(victim: VictimPolicy) -> u64 {
    use sbcc_adt::{AdtOp, Stack, StackOp, Value};
    use sbcc_core::{SchedulerConfig, SchedulerKernel};

    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_victim(victim)
            .with_history(false),
    );
    let a = kernel.register("a", Stack::new()).unwrap();
    let b = kernel.register("b", Stack::new()).unwrap();
    let mut committed = 0u64;
    for round in 0..200i64 {
        let t1 = kernel.begin();
        let t2 = kernel.begin();
        // Opposite-order pushes: the second transaction's second push closes
        // a commit-dependency cycle, forcing a victim decision.
        let _ = kernel.request_op(t1, a, &StackOp::Push(Value::Int(round)));
        let _ = kernel.request_op(t2, b, &StackOp::Push(Value::Int(round)));
        let _ = kernel.request_op(t1, b, &StackOp::Push(Value::Int(round)));
        let _ = kernel.request_op(t2, a, &StackOp::Push(Value::Int(round)));
        for t in [t1, t2] {
            if kernel.commit(t).is_ok() {
                committed += 1;
            }
        }
        let _ = kernel.drain_events();
    }
    committed
}

fn bench_ablate_cycle_check(c: &mut Criterion) {
    // Incremental targeted DFS (what the kernel does) vs recomputing the
    // strongly connected components of the whole graph on every check.
    let mut group = c.benchmark_group("ablate_cycle_check");
    configure(&mut group);

    let n = 300u64;
    let mut graph = DependencyGraph::new();
    let mut adjacency: HashMap<u64, Vec<u64>> = HashMap::new();
    for i in 1..n {
        graph.add_edge(i, i - 1, EdgeKind::CommitDep);
        adjacency.entry(i).or_default().push(i - 1);
        adjacency.entry(i - 1).or_default();
        if i % 5 == 0 {
            graph.add_edge(i, i / 3, EdgeKind::WaitFor);
            adjacency.entry(i).or_default().push(i / 3);
        }
    }

    group.bench_function("incremental_dfs", |b| {
        b.iter(|| graph.would_close_cycle(black_box(0), black_box(&[n - 1])))
    });
    group.bench_function("full_scc_recomputation", |b| {
        b.iter(|| {
            let mut adj = adjacency.clone();
            adj.entry(0).or_default().push(n - 1);
            strongly_connected_components(black_box(&adj))
                .iter()
                .any(|c| c.len() > 1)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ablate_policy_and_fairness,
    bench_ablate_mpl_slot,
    bench_ablate_recovery_and_victim,
    bench_ablate_cycle_check
);
criterion_main!(benches);
