//! Benchmarks of the dependency-graph substrate: the would-close-cycle check
//! the scheduler performs on every blocking or recoverable request.
//!
//! The headline comparison runs the same checks through both paths:
//!
//! * `incremental/…` — the production detector: a maintained topological
//!   order prunes each check to the affected position window;
//! * `oracle/…` — the pre-incremental path: a from-scratch Tarjan SCC pass
//!   over a snapshot of the graph per check.
//!
//! Both are exercised on a dense scheduler-shaped workload (commit-dep
//! chains with cross wait-for/commit-dep edges) at increasing sizes; the
//! two paths are proven behaviourally identical by differential tests, so
//! the numbers measure exactly the algorithmic difference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_graph::{DependencyGraph, EdgeKind, ReorderStrategy};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
}

/// Build a graph shaped like the scheduler's: `n` transactions, dense
/// commit-dependency chains plus cross wait-for and commit-dep edges.
/// Every edge points from a newer transaction to an older one, as requests
/// against already-executed operations do.
fn build_graph(n: u64) -> DependencyGraph<u64> {
    let mut g = DependencyGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for i in 1..n {
        // chain of commit dependencies on the previous transaction
        g.add_edge(i, i - 1, EdgeKind::CommitDep);
        if i % 7 == 0 {
            g.add_edge(i, i / 2, EdgeKind::WaitFor);
        }
        if i % 3 == 0 && i >= 3 {
            g.add_edge(i, i - 3, EdgeKind::CommitDep);
        }
    }
    g
}

/// The per-request check mix the scheduler issues: mostly new-vs-old
/// no-cycle checks (the common case, dismissed by position in O(1)), plus
/// old-vs-new checks. Note the graph's backbone chain makes every older
/// node reachable from every newer one, so each old-vs-new check here
/// genuinely closes a cycle — the incremental detector finds it inside the
/// position window, the oracle by recomputing SCCs of the whole graph.
fn query_mix(n: u64) -> Vec<(u64, Vec<u64>)> {
    vec![
        // Newer requester, older holders: O(1) dismissal by position.
        (n - 1, vec![0, n / 2]),
        (n - 2, vec![n - 3, n / 3]),
        (n / 2 + 1, vec![n / 2, 1]),
        (n / 3, vec![1, 2]),
        // Older requester against a newer holder: window-bounded search
        // that finds the cycle (holder's dependency chain reaches back).
        (n / 2, vec![n / 2 + 2]),
        // The adjacent-pair variant of the same.
        (n - 2, vec![n - 1]),
    ]
}

fn bench_would_close_cycle(c: &mut Criterion) {
    for n in [50u64, 200, 1000] {
        let queries = query_mix(n);

        let mut group = c.benchmark_group("incremental");
        configure(&mut group);
        let mut g = build_graph(n);
        assert!(g.order_is_valid(), "scheduler-shaped inserts keep the order");
        group.bench_function(format!("dense_{n}_check_mix"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for (from, targets) in &queries {
                    if g.would_close_cycle(black_box(*from), black_box(targets)) {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.finish();

        let mut group = c.benchmark_group("oracle");
        configure(&mut group);
        let mut g = build_graph(n);
        group.bench_function(format!("dense_{n}_check_mix"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for (from, targets) in &queries {
                    if g.would_close_cycle_oracle(black_box(*from), black_box(targets)) {
                        hits += 1;
                    }
                }
                hits
            })
        });
        group.finish();
    }

    // The original single-query shapes, kept for continuity with the seed's
    // baseline numbers.
    let mut group = c.benchmark_group("would_close_cycle");
    configure(&mut group);
    for n in [50u64, 200, 1000] {
        let mut g = build_graph(n);
        group.bench_function(format!("chain_{n}_nodes_cycle"), |b| {
            b.iter(|| g.would_close_cycle(black_box(n - 2), black_box(&[n - 1])))
        });
        group.bench_function(format!("chain_{n}_nodes_no_cycle"), |b| {
            b.iter(|| g.would_close_cycle(black_box(n - 1), black_box(&[0])))
        });
    }
    group.finish();
}

fn bench_graph_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_maintenance");
    configure(&mut group);

    group.bench_function("add_and_remove_200_node_graph", |b| {
        b.iter(|| {
            let mut g = build_graph(200);
            for i in 0..200u64 {
                g.remove_node(black_box(i));
            }
            g.node_count()
        })
    });

    // Edge inserts that violate the maintained order (an old transaction
    // acquiring a dependency on a newer one) pay for a bounded reorder.
    // Two disjoint chains keep the inserts acyclic.
    group.bench_function("insert_order_violating_edges_200", |b| {
        b.iter(|| {
            let mut g: DependencyGraph<u64> = DependencyGraph::new();
            for i in 1..100u64 {
                g.add_edge(i, i - 1, EdgeKind::CommitDep);
                g.add_edge(100 + i, 100 + i - 1, EdgeKind::CommitDep);
            }
            for i in 0..40u64 {
                // Old chain-A member depends on a newer chain-B member.
                g.add_edge(black_box(i), black_box(199 - i), EdgeKind::WaitFor);
            }
            assert!(g.order_is_valid());
            g.node_count()
        })
    });

    let mut g = build_graph(200);
    group.bench_function("zero_out_degree_scan_200", |b| {
        b.iter(|| black_box(&mut g).zero_out_degree_nodes().len())
    });
    group.finish();
}

/// Build the dense chain through order-violating inserts: every node first
/// (labels ascend with id), then the chain edges from the **old end**
/// backwards — each insert points from a lower-labeled node to a
/// higher-labeled one and triggers a reorder with a small (1–2 node)
/// affected region. This is the repair hot path the gap labels exist for.
fn build_chain_backwards(n: u64, reorder: ReorderStrategy) -> DependencyGraph<u64> {
    let mut g: DependencyGraph<u64> = DependencyGraph::new();
    g.set_reorder_strategy(reorder);
    for i in 0..n {
        g.add_node(i);
    }
    for i in (0..n - 1).rev() {
        g.add_edge(i, i + 1, EdgeKind::CommitDep);
    }
    g
}

/// Disjoint 8-node clusters, each repaired by one 7-node-region violation:
/// the canonical small-violation workload — regions always fit the inline
/// scratch, so the gap-labeled repair performs **zero** heap allocations
/// (asserted every iteration).
fn build_smallviol_clusters(clusters: u64, reorder: ReorderStrategy) -> DependencyGraph<u64> {
    let mut g: DependencyGraph<u64> = DependencyGraph::new();
    g.set_reorder_strategy(reorder);
    for c in 0..clusters {
        let base = c * 8;
        for n in base..base + 8 {
            g.add_node(n);
        }
        for i in base + 2..base + 8 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        g.add_edge(base, base + 7, EdgeKind::WaitFor);
    }
    g
}

/// Old-vs-new reorder comparison on violation storms: the gap-labeled
/// repair relabels only the forward region into the gap below the source
/// (allocation-free while the region fits the inline scratch), the dense
/// baseline additionally walks the backward region and allocates its
/// region vectors, visited set and label pool on every violation.
fn bench_reorder_strategies(c: &mut Criterion) {
    for reorder in [ReorderStrategy::GapLabel, ReorderStrategy::DenseRedistribute] {
        let mut group = c.benchmark_group(format!("reorder_{reorder}"));
        configure(&mut group);
        for n in [200u64, 1000] {
            group.bench_function(format!("dense_chain_{n}_backwards_inserts"), |b| {
                b.iter(|| {
                    let g = build_chain_backwards(black_box(n), reorder);
                    let t = g.order_telemetry();
                    // Most inserts violate; a gap-exhaustion renumbering in
                    // between can put a few of the rest in order already.
                    assert!(t.violations >= n / 2, "inserts must exercise the reorder");
                    g.node_count()
                })
            });
        }
        group.bench_function("smallviol_64_clusters", |b| {
            b.iter(|| {
                let g = build_smallviol_clusters(black_box(64), reorder);
                let t = g.order_telemetry();
                assert_eq!(t.violations, 64);
                if reorder == ReorderStrategy::GapLabel {
                    assert_eq!(
                        t.slow_path_allocs, 0,
                        "small-violation repairs must stay allocation-free"
                    );
                }
                g.node_count()
            })
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_would_close_cycle,
    bench_graph_maintenance,
    bench_reorder_strategies
);
criterion_main!(benches);
