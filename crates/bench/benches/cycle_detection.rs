//! Benchmarks of the dependency-graph substrate: the would-close-cycle check
//! the scheduler performs on every blocking or recoverable request.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sbcc_graph::{DependencyGraph, EdgeKind};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(30);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
}

/// Build a graph shaped like the scheduler's: `n` transactions, a sparse mix
/// of commit-dependency chains plus some wait-for edges.
fn build_graph(n: u64) -> DependencyGraph<u64> {
    let mut g = DependencyGraph::new();
    for i in 0..n {
        g.add_node(i);
    }
    for i in 1..n {
        // chain of commit dependencies on the previous transaction
        g.add_edge(i, i - 1, EdgeKind::CommitDep);
        if i % 7 == 0 {
            g.add_edge(i, i / 2, EdgeKind::WaitFor);
        }
    }
    g
}

fn bench_would_close_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("would_close_cycle");
    configure(&mut group);

    for n in [50u64, 200, 1000] {
        let mut g = build_graph(n);
        // Asking whether the oldest transaction may depend on the newest —
        // the worst case, traversing the whole chain without finding a cycle
        // ... except it does find one, which is exactly the expensive path.
        group.bench_function(format!("chain_{n}_nodes_cycle"), |b| {
            b.iter(|| g.would_close_cycle(black_box(0), black_box(&[n - 1])))
        });
        // And a cheap no-cycle check from the newest.
        group.bench_function(format!("chain_{n}_nodes_no_cycle"), |b| {
            b.iter(|| g.would_close_cycle(black_box(n - 1), black_box(&[0])))
        });
    }
    group.finish();
}

fn bench_graph_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_maintenance");
    configure(&mut group);

    group.bench_function("add_and_remove_200_node_graph", |b| {
        b.iter(|| {
            let mut g = build_graph(200);
            for i in 0..200u64 {
                g.remove_node(black_box(i));
            }
            g.node_count()
        })
    });

    let mut g = build_graph(200);
    group.bench_function("zero_out_degree_scan_200", |b| {
        b.iter(|| black_box(&mut g).zero_out_degree_nodes().len())
    });
    group.finish();
}

criterion_group!(benches, bench_would_close_cycle, bench_graph_maintenance);
criterion_main!(benches);
