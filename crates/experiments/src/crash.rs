//! The crash-recovery smoke workload behind `repro --crash-workload` /
//! `repro --crash-recover`.
//!
//! The workload process runs a fixed, deterministic transaction sequence
//! against a write-ahead-logged database, prints `workload-done`, and
//! lingers so a driver can `kill -9` it — either mid-run or after the
//! done line. The recover process reopens the same directory and checks
//! the recovered state against the workload's own definition: whatever
//! number of commits survived, the object states must equal an
//! uncrashed run of exactly that prefix (computed in-process on a
//! non-durable database). It prints `recovered prefix=N/40` so a driver
//! can additionally assert *which* prefix survived (40/40 after a
//! post-done kill).
//!
//! Every acknowledged commit is durable (group commit blocks the
//! committer until its flush), and the sequence is committed from one
//! session, so the survivors are always a prefix — any other shape is a
//! recovery bug and exits nonzero.

use sbcc_adt::{Counter, CounterOp, Stack, StackOp, Value};
use sbcc_core::{Database, DatabaseConfig, FsyncPolicy, SchedulerConfig, WalConfig};
use std::path::Path;

/// Total transactions in the fixed sequence.
pub const CRASH_WORKLOAD_TXNS: u64 = 40;

struct Objects {
    journal: sbcc_core::Handle<Stack>,
    left: sbcc_core::Handle<Counter>,
    right: sbcc_core::Handle<Counter>,
}

fn register_all(db: &Database) -> Objects {
    Objects {
        journal: db.register("journal", Stack::new()),
        left: db.register("left", Counter::new()),
        right: db.register("right", Counter::new()),
    }
}

/// Transaction `k` of the sequence: every fourth commit touches all
/// three objects (multi-shard whenever their names hash to different
/// shards), the rest push onto the journal alone.
fn run_txn(db: &Database, objects: &Objects, k: u64) {
    let txn = db.begin();
    txn.exec(&objects.journal, StackOp::Push(Value::Int(k as i64)))
        .expect("push");
    if k % 4 == 3 {
        txn.exec(&objects.left, CounterOp::Increment(k as i64))
            .expect("left");
        txn.exec(&objects.right, CounterOp::Increment(1)).expect("right");
    }
    txn.commit().expect("commit");
}

fn durable_config(dir: &Path) -> DatabaseConfig {
    DatabaseConfig::new(SchedulerConfig::default())
        .with_wal(WalConfig::new(dir).with_fsync(FsyncPolicy::GroupCommit))
}

/// Run the fixed sequence against `dir`, printing one progress line per
/// commit and `workload-done` at the end (flushed, so a driver can wait
/// for it before killing the process).
pub fn run_workload(dir: &Path) {
    use std::io::Write;
    let db = Database::with_config(durable_config(dir));
    assert_eq!(
        db.stats().commits,
        0,
        "--crash-workload needs an empty log directory"
    );
    let objects = register_all(&db);
    for k in 0..CRASH_WORKLOAD_TXNS {
        run_txn(&db, &objects, k);
        println!("committed {}/{CRASH_WORKLOAD_TXNS}", k + 1);
        let _ = std::io::stdout().flush();
    }
    println!("workload-done");
    let _ = std::io::stdout().flush();
}

/// Snapshot every workload object's committed debug state.
fn digests(db: &Database) -> Vec<Option<String>> {
    ["journal", "left", "right"]
        .iter()
        .map(|name| {
            db.with_sharded_kernel(|k| {
                k.object_id(name)
                    .and_then(|id| k.with_object_committed(id, |o| o.debug_state()))
            })
        })
        .collect()
}

/// Reopen `dir`, recover, and self-check: the survivors must be exactly
/// the first `N` transactions for the recovered commit count `N`.
/// Returns the recovered prefix length, or an error describing the
/// divergence.
pub fn run_recover(dir: &Path) -> Result<u64, String> {
    let recovered = Database::with_config(durable_config(dir));
    let prefix = recovered.stats().commits;
    if prefix > CRASH_WORKLOAD_TXNS {
        return Err(format!(
            "recovered {prefix} commits, but the workload only runs {CRASH_WORKLOAD_TXNS}"
        ));
    }
    if prefix > 0 {
        // An uncrashed reference run of exactly the surviving prefix.
        let reference = Database::with_config(DatabaseConfig::new(SchedulerConfig::default()));
        let objects = register_all(&reference);
        for k in 0..prefix {
            run_txn(&reference, &objects, k);
        }
        let got = digests(&recovered);
        let want = digests(&reference);
        if got != want {
            return Err(format!(
                "recovered state is not the {prefix}-commit prefix:\n  recovered: {got:?}\n  expected:  {want:?}"
            ));
        }
    }
    Ok(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "sbcc-crash-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        path
    }

    #[test]
    fn full_run_recovers_the_whole_sequence() {
        let dir = scratch("full");
        run_workload(&dir);
        assert_eq!(run_recover(&dir), Ok(CRASH_WORKLOAD_TXNS));
        // Recovery is idempotent: a second reopen sees the same prefix.
        assert_eq!(run_recover(&dir), Ok(CRASH_WORKLOAD_TXNS));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_log_recovers_a_strict_prefix() {
        // Truncation surgery is only a *valid* crash image at one shard
        // (with several, dropping a fragment while its commit marker
        // survives is a disk state no real crash can produce — the
        // marker flushes strictly after the fragments).
        if durable_config(Path::new("/")).shards.resolve() != 1 {
            return;
        }
        let dir = scratch("cut");
        run_workload(&dir);
        // Chop the tail off shard 0's log: a crash image mid-flush.
        let path = sbcc_core::wal::shard_log_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len / 2).unwrap();
        drop(file);
        let prefix = run_recover(&dir).expect("a truncated image is still a valid prefix");
        assert!(prefix < CRASH_WORKLOAD_TXNS);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
