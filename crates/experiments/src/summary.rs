//! The Section 5.6 headline claims, recomputed from the reproduced figures.
//!
//! The reproduction targets the *shape* of the paper's findings (who wins,
//! roughly by how much, where thrashing sets in), not the absolute numbers —
//! the substrate is a re-implemented simulator, not the authors' testbed.

use crate::figures::{FigureId, FigureRunner};
use crate::output::SeriesTable;

/// One recomputed claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Short identifier.
    pub name: String,
    /// What the paper reports.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the qualitative shape holds.
    pub holds: bool,
}

/// The full set of recomputed claims.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// All claims, in presentation order.
    pub claims: Vec<Claim>,
}

impl Summary {
    /// `true` when every claim's shape holds.
    pub fn all_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// Render the summary as text.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Section 5.6 summary claims (shape reproduction)\n");
        for c in &self.claims {
            out.push_str(&format!(
                "  [{}] {}\n      paper:    {}\n      measured: {}\n",
                if c.holds { "ok" } else { "!!" },
                c.name,
                c.paper,
                c.measured
            ));
        }
        out.push_str(&format!(
            "=> {}/{} claims hold\n",
            self.claims.iter().filter(|c| c.holds).count(),
            self.claims.len()
        ));
        out
    }
}

fn peak(table: &SeriesTable, column: &str) -> (String, f64) {
    let mut best = (String::new(), f64::MIN);
    for (x, _) in &table.rows {
        if let Some(v) = table.value(x, column) {
            if v > best.1 {
                best = (x.clone(), v);
            }
        }
    }
    best
}

fn improvement_percent(better: f64, base: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (better - base) / base
    }
}

/// Recompute the summary claims using the given runner (the runner's cache
/// is shared with any figures already built at the same scale).
pub fn compute_summary(runner: &mut FigureRunner) -> Summary {
    let mut claims = Vec::new();

    // ---- Read/write model, infinite resources (Figures 4–7) ----
    let fig4 = FigureId(4).build(runner).table;
    let (rec_peak_mpl, rec_peak) = peak(&fig4, "recoverability");
    let comm_at_same = fig4.value(&rec_peak_mpl, "commutativity").unwrap_or(0.0);
    let imp = improvement_percent(rec_peak, comm_at_same);
    claims.push(Claim {
        name: "RW/∞: peak throughput improvement".into(),
        paper: "≈67% higher with recoverability at the peak (mpl=50)".into(),
        measured: format!(
            "{imp:.0}% higher at mpl={rec_peak_mpl} ({rec_peak:.1} vs {comm_at_same:.1} tps)"
        ),
        holds: imp > 10.0,
    });

    let fig6 = FigureId(6).build(runner).table;
    let br_ok = fig6.rows.iter().all(|(x, _)| {
        let rec = fig6.value(x, "recoverability BR").unwrap_or(f64::MAX);
        let com = fig6.value(x, "commutativity BR").unwrap_or(0.0);
        rec <= com + 1e-9
    });
    claims.push(Claim {
        name: "RW/∞: blocking ratio ordering".into(),
        paper: "blocking ratio is smaller with recoverability at every mpl".into(),
        measured: format!("lower-or-equal at every mpl: {br_ok}"),
        holds: br_ok,
    });

    let fig7 = FigureId(7).build(runner).table;
    let ccr_ok = {
        let low_mpls: Vec<&String> = fig7
            .rows
            .iter()
            .map(|(x, _)| x)
            .filter(|x| x.parse::<usize>().unwrap_or(0) <= 100)
            .collect();
        low_mpls.iter().all(|x| {
            fig7.value(x, "recoverability CCR").unwrap_or(0.0)
                >= fig7.value(x, "commutativity CCR").unwrap_or(f64::MAX) - 1e-9
        })
    };
    claims.push(Claim {
        name: "RW/∞: cycle-check ratio ordering".into(),
        paper: "cycle check ratio is higher with recoverability (below heavy thrashing)".into(),
        measured: format!("higher-or-equal for mpl ≤ 100: {ccr_ok}"),
        holds: ccr_ok,
    });

    let al_decreases = {
        let col = "recoverability AL";
        let mut values: Vec<(usize, f64)> = fig7
            .rows
            .iter()
            .filter_map(|(x, _)| {
                Some((x.parse::<usize>().ok()?, fig7.value(x, col)?))
            })
            .filter(|(mpl, _)| *mpl >= 50)
            .collect();
        values.sort_by_key(|(mpl, _)| *mpl);
        values.windows(2).all(|w| w[1].1 <= w[0].1 + 0.5)
    };
    claims.push(Claim {
        name: "RW/∞: abort length past the knee".into(),
        paper: "once thrashing begins, abort length decreases with mpl".into(),
        measured: format!("non-increasing (±0.5 ops) for mpl ≥ 50: {al_decreases}"),
        holds: al_decreases,
    });

    // ---- Fair vs unfair scheduling (Figures 4 vs 8) ----
    let fig8 = FigureId(8).build(runner).table;
    let (_, unfair_peak_rec) = peak(&fig8, "recoverability");
    let (_, unfair_peak_com) = peak(&fig8, "commutativity");
    let (_, fair_peak_rec) = peak(&fig4, "recoverability");
    let (_, fair_peak_com) = peak(&fig4, "commutativity");
    let unfair_higher = unfair_peak_rec >= fair_peak_rec * 0.98 && unfair_peak_com >= fair_peak_com * 0.98;
    claims.push(Claim {
        name: "RW/∞: fair vs unfair peak throughput".into(),
        paper: "peak throughput without fair scheduling is higher for both policies".into(),
        measured: format!(
            "unfair peaks {unfair_peak_com:.1}/{unfair_peak_rec:.1} vs fair {fair_peak_com:.1}/{fair_peak_rec:.1} (comm/rec)"
        ),
        holds: unfair_higher,
    });

    // ---- Read/write model, finite resources (Figures 10 and 11) ----
    let fig10 = FigureId(10).build(runner).table;
    let (rec10_mpl, rec10_peak) = peak(&fig10, "recoverability");
    let com10_at_same = fig10.value(&rec10_mpl, "commutativity").unwrap_or(0.0);
    let imp10 = improvement_percent(rec10_peak, com10_at_same);
    let resource_gap_smaller = imp10 <= imp + 1e-9;
    claims.push(Claim {
        name: "RW/5RU: improvement shrinks under resource contention".into(),
        paper: "≈15% at the peak with 5 resource units (vs 67% with infinite)".into(),
        measured: format!("{imp10:.0}% at mpl={rec10_mpl} (infinite-resource gap was {imp:.0}%)"),
        holds: imp10 >= 0.0 && resource_gap_smaller,
    });

    let fig10_lower = {
        let inf_peak = rec_peak;
        rec10_peak < inf_peak
    };
    claims.push(Claim {
        name: "RW: finite resources cap throughput".into(),
        paper: "peak throughput with 5 resource units is below the infinite-resource peak".into(),
        measured: format!("{rec10_peak:.1} tps (5RU) vs {rec_peak:.1} tps (∞)"),
        holds: fig10_lower,
    });

    let fig11 = FigureId(11).build(runner).table;
    let (_, rec11_peak) = peak(&fig11, "recoverability");
    let (_, com11_peak) = peak(&fig11, "commutativity");
    claims.push(Claim {
        name: "RW/1RU: heavy resource contention".into(),
        paper: "throughput is very low and recoverability's peak is only slightly higher".into(),
        measured: format!(
            "peaks {rec11_peak:.1} vs {com11_peak:.1} tps, both far below the 5RU peak {rec10_peak:.1}"
        ),
        holds: rec11_peak >= com11_peak * 0.95 && rec11_peak < rec10_peak,
    });

    // ---- ADT model (Figures 14 and 17) ----
    let fig14 = FigureId(14).build(runner).table;
    let pr0 = "Pc=4, Pr=0";
    let pr4 = "Pc=4, Pr=4";
    let pr8 = "Pc=4, Pr=8";
    let v = |mpl: &str, col: &str| fig14.value(mpl, col).unwrap_or(0.0);
    let imp_pr4 = improvement_percent(v("25", pr4), v("25", pr0));
    claims.push(Claim {
        name: "ADT/∞ Pc=4: Pr=4 vs Pr=0 at mpl=25".into(),
        paper: "≈15% higher throughput".into(),
        measured: format!("{imp_pr4:.0}% higher ({:.1} vs {:.1} tps)", v("25", pr4), v("25", pr0)),
        holds: imp_pr4 > 0.0,
    });
    let ratio_pr8 = if v("50", pr0) > 0.0 {
        v("50", pr8) / v("50", pr0)
    } else {
        0.0
    };
    claims.push(Claim {
        name: "ADT/∞ Pc=4: Pr=8 vs Pr=0 at mpl=50".into(),
        paper: "more than double the throughput".into(),
        measured: format!("{ratio_pr8:.2}x ({:.1} vs {:.1} tps)", v("50", pr8), v("50", pr0)),
        holds: ratio_pr8 > 1.3,
    });
    let knee_shifts = {
        // Pr=8 should not have collapsed at mpl=50 the way Pr=0 has: its
        // mpl=50 throughput stays at or above its mpl=25 throughput more
        // than Pr=0 does.
        let drop0 = v("50", pr0) / v("25", pr0).max(f64::EPSILON);
        let drop8 = v("50", pr8) / v("25", pr8).max(f64::EPSILON);
        drop8 >= drop0
    };
    claims.push(Claim {
        name: "ADT/∞: thrashing sets in later for higher Pr".into(),
        paper: "for Pr=8 thrashing starts only at mpl=50 (mpl=25 for Pr=0 and 4)".into(),
        measured: format!("relative mpl-25→50 retention: Pr=8 vs Pr=0 = ok:{knee_shifts}"),
        holds: knee_shifts,
    });

    let fig17 = FigureId(17).build(runner).table;
    let v17 = |mpl: &str, col: &str| fig17.value(mpl, col).unwrap_or(0.0);
    let imp17 = improvement_percent(v17("50", pr8), v17("50", pr0));
    claims.push(Claim {
        name: "ADT/5RU Pc=4: Pr=8 vs Pr=0 at mpl=50".into(),
        paper: "≈35% higher throughput".into(),
        measured: format!("{imp17:.0}% higher ({:.1} vs {:.1} tps)", v17("50", pr8), v17("50", pr0)),
        holds: imp17 > 0.0,
    });

    Summary { claims }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_and_improvement_helpers() {
        let mut t = SeriesTable::new("mpl", vec!["a".to_owned()]);
        t.push_row("10", vec![5.0]);
        t.push_row("25", vec![9.0]);
        t.push_row("50", vec![7.0]);
        let (mpl, v) = peak(&t, "a");
        assert_eq!(mpl, "25");
        assert_eq!(v, 9.0);
        assert!((improvement_percent(15.0, 10.0) - 50.0).abs() < 1e-9);
        assert_eq!(improvement_percent(15.0, 0.0), 0.0);
    }

    #[test]
    fn summary_rendering() {
        let s = Summary {
            claims: vec![
                Claim {
                    name: "x".into(),
                    paper: "p".into(),
                    measured: "m".into(),
                    holds: true,
                },
                Claim {
                    name: "y".into(),
                    paper: "p".into(),
                    measured: "m".into(),
                    holds: false,
                },
            ],
        };
        assert!(!s.all_hold());
        let text = s.render_text();
        assert!(text.contains("[ok] x"));
        assert!(text.contains("[!!] y"));
        assert!(text.contains("1/2"));
    }
}
