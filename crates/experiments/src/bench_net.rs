//! Closed-loop network benchmark: real clients over real loopback
//! sockets against a [`sbcc_net::Server`] (in-process or remote).
//!
//! Each connection runs the classic closed loop — begin, a fixed burst
//! of commuting increments on its own counter, commit, repeat — so the
//! measured number is the wire front-end's end-to-end transaction
//! round-trip cost (framing, reader thread hand-off, router dispatch,
//! session task, write-back) rather than kernel contention. `Busy`
//! sheds are retried with a short backoff and counted, never silently
//! swallowed.
//!
//! Two entry points:
//!
//! * [`closed_loop_txns`] — a fixed per-connection transaction count,
//!   used by the `net_closedloop_{1,4}conn` entries of
//!   `repro --bench-kernel` (deterministic work volume per repetition);
//! * [`closed_loop_timed`] — a wall-clock budget, used by
//!   `repro --bench-net` for multi-process runs against `repro --serve`.

use sbcc_adt::{AdtOp, CounterOp};
use sbcc_core::aio::AsyncDatabase;
use sbcc_core::SchedulerConfig;
use sbcc_net::{AdtType, NetClient, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one closed-loop run did.
#[derive(Debug, Clone)]
pub struct NetBenchReport {
    /// Client connections driven in parallel.
    pub conns: usize,
    /// Transactions committed across all connections.
    pub txns_committed: u64,
    /// Operations executed across all connections (excluding commits).
    pub ops_executed: u64,
    /// `Busy` sheds absorbed (each retried after a short backoff).
    pub busy_sheds: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
}

impl NetBenchReport {
    /// Committed transactions per second.
    pub fn txns_per_sec(&self) -> f64 {
        self.txns_committed as f64 / self.elapsed_secs.max(f64::EPSILON)
    }

    /// Executed operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops_executed as f64 / self.elapsed_secs.max(f64::EPSILON)
    }

    /// One human-readable summary line.
    pub fn render_text(&self) -> String {
        format!(
            "{} conn(s): {} txns ({:.1} txn/s), {} ops ({:.1} op/s), {} busy shed(s), {:.2}s",
            self.conns,
            self.txns_committed,
            self.txns_per_sec(),
            self.ops_executed,
            self.ops_per_sec(),
            self.busy_sheds,
            self.elapsed_secs
        )
    }
}

/// Per-connection loop: commit transactions until `keep_going` says
/// stop (checked between transactions) or the fixed count is reached.
fn connection_loop(
    addr: SocketAddr,
    conn_index: usize,
    ops_per_txn: u64,
    txn_limit: Option<u64>,
    keep_going: Arc<AtomicBool>,
) -> (u64, u64, u64) {
    let mut client = NetClient::connect(addr, "bench").expect("connect bench client");
    let counter = format!("c{conn_index}");
    client
        .register(&counter, AdtType::Counter)
        .expect("register bench counter");
    let call = CounterOp::Increment(1).to_call();
    let (mut txns, mut ops, mut busy) = (0u64, 0u64, 0u64);
    while keep_going.load(Ordering::Relaxed) && txn_limit.map_or(true, |limit| txns < limit) {
        let txn = loop {
            match client.begin() {
                Ok(t) => break t,
                Err(e) if e.is_busy() => {
                    busy += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(e) => panic!("bench begin failed: {e}"),
            }
        };
        for _ in 0..ops_per_txn {
            client
                .exec(txn, &counter, call.clone())
                .expect("bench increment");
            ops += 1;
        }
        client.commit(txn).expect("bench commit");
        txns += 1;
    }
    (txns, ops, busy)
}

fn run_closed_loop(
    addr: SocketAddr,
    conns: usize,
    ops_per_txn: u64,
    txn_limit: Option<u64>,
    budget: Option<Duration>,
) -> NetBenchReport {
    let keep_going = Arc::new(AtomicBool::new(true));
    let start = Instant::now();
    let threads: Vec<_> = (0..conns.max(1))
        .map(|i| {
            let keep_going = keep_going.clone();
            std::thread::spawn(move || connection_loop(addr, i, ops_per_txn, txn_limit, keep_going))
        })
        .collect();
    if let Some(budget) = budget {
        std::thread::sleep(budget);
        keep_going.store(false, Ordering::Relaxed);
    }
    let (mut txns, mut ops, mut busy) = (0u64, 0u64, 0u64);
    for t in threads {
        let (t_txns, t_ops, t_busy) = t.join().expect("bench connection thread");
        txns += t_txns;
        ops += t_ops;
        busy += t_busy;
    }
    NetBenchReport {
        conns: conns.max(1),
        txns_committed: txns,
        ops_executed: ops,
        busy_sheds: busy,
        elapsed_secs: start.elapsed().as_secs_f64(),
    }
}

/// Closed loop with a fixed transaction count per connection — a
/// deterministic work volume, suitable for repeated measurement.
pub fn closed_loop_txns(
    addr: SocketAddr,
    conns: usize,
    txns_per_conn: u64,
    ops_per_txn: u64,
) -> NetBenchReport {
    run_closed_loop(addr, conns, ops_per_txn, Some(txns_per_conn), None)
}

/// Closed loop with a wall-clock budget — each connection commits as
/// many transactions as it can before the budget expires.
pub fn closed_loop_timed(
    addr: SocketAddr,
    conns: usize,
    ops_per_txn: u64,
    budget: Duration,
) -> NetBenchReport {
    run_closed_loop(addr, conns, ops_per_txn, None, Some(budget))
}

/// The `net_closedloop_{n}conn` kernel-bench workload: spin up an
/// in-process server on a fresh database, drive it with `conns`
/// closed-loop connections over real sockets, tear it down. Returns
/// the work-item count (wire operations + commits); panics on any
/// leaked session or connection — a benchmark must also be leak-free.
pub fn net_closedloop_workload(conns: usize, txns_per_conn: u64, ops_per_txn: u64) -> u64 {
    let server = Server::start(
        AsyncDatabase::new(SchedulerConfig::default()),
        ServerConfig::default().with_workers(2),
    )
    .expect("bind bench server");
    let report = closed_loop_txns(server.local_addr(), conns, txns_per_conn, ops_per_txn);
    let stats = server.shutdown();
    assert_eq!(stats.transactions_in_flight, 0, "bench leaked sessions");
    assert_eq!(stats.connections_open, 0, "bench leaked connections");
    assert_eq!(
        report.txns_committed,
        conns.max(1) as u64 * txns_per_conn,
        "closed loop must commit its full volume"
    );
    report.ops_executed + report.txns_committed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closedloop_workload_commits_its_exact_volume() {
        // 2 conns x 3 txns x 4 ops = 24 ops + 6 commits.
        assert_eq!(net_closedloop_workload(2, 3, 4), 30);
    }

    #[test]
    fn timed_loop_stops_and_reports() {
        let server = Server::start(
            AsyncDatabase::new(SchedulerConfig::default()),
            ServerConfig::default().with_workers(1),
        )
        .expect("bind");
        let report =
            closed_loop_timed(server.local_addr(), 2, 2, Duration::from_millis(50));
        assert!(report.txns_committed > 0, "made progress within the budget");
        assert_eq!(report.ops_executed, report.txns_committed * 2);
        assert!(report.render_text().contains("2 conn(s)"));
        let stats = server.shutdown();
        assert_eq!(stats.transactions_in_flight, 0);
    }
}
