//! Kernel-throughput baseline: deterministic workloads timed with wall
//! clocks and dumped as JSON (`BENCH_kernel.json`), so successive PRs have
//! a recorded perf trajectory without needing the full criterion suite.
//!
//! The workloads mirror the `kernel_throughput` criterion bench:
//!
//! * `mixed_<policy>` — 64 transactions × 8 operations over a hot
//!   stack/counter/table set;
//! * `dense_chain_<n>_<detector>` — `n` concurrent recoverable pushes on
//!   one stack (a quadratic cycle-check workload) committed in reverse;
//! * `dense_chain_rev_<n>_<reorder>` — the same chain with pushes
//!   submitted in reverse begin order, so every commit-dependency edge
//!   violates the maintained topological order: gap-labeled vs dense
//!   reorder on identical scheduling decisions;
//! * `reorder_smallviol_<reorder>` — the small-violation graph microbench
//!   (disjoint 8-node clusters, 7-node repair regions); the gap-labeled
//!   entry asserts **zero** allocating slow paths via the telemetry;
//! * `hotspot_counter_200` — 200 concurrent commuting increments;
//! * `graph_checks_<detector>` — raw would-close-cycle checks on a dense
//!   1000-node dependency graph;
//! * `submission_{percall,batched}` — the same contended kernel workload
//!   submitted one call at a time vs as per-transaction groups
//!   (`request_batch`): the batched-vs-per-call delta is the cost of
//!   walking the classification index once per call instead of once per
//!   group;
//! * `declared_disjoint_{declared,classified}` — a standing population of
//!   live transactions, each batching increments against its own private
//!   counter: `declared` submits with the write footprint declared up
//!   front (`request_batch_declared`, one coverage + disjointness scan,
//!   zero per-op classification), `classified` submits the identical
//!   batches through the per-op classifier; the ratio is the group
//!   admission fast path's win on declared-disjoint workloads;
//! * `session_{percall,batched}_4thr` — the same comparison at the
//!   [`sbcc_core::Database`] session level with 4 threads hammering one
//!   database: batching additionally amortises the lock acquisition and
//!   wakeup round-trip per submission;
//! * `sharded_disjoint_{n}shards_4thr` — 4 threads, each with its own
//!   private set of counters (a disjoint-footprint mix): with one shard
//!   every session serialises on the single kernel lock, with several the
//!   threads run on different shard locks and never contend — the
//!   shards-vs-1 ratio is the sharding subsystem's headline number;
//! * `sharded_hotspot_{n}shards_4thr` — the adversarial counterpart: all
//!   4 threads increment one hot counter, which lives in exactly one
//!   shard regardless of the shard count, so this measures the
//!   coordination overhead sharding adds when it cannot help;
//! * `async_mux_{n}txn_{s}shards_1thr` — a **single executor thread**
//!   multiplexing `n` concurrent async sessions (`sbcc_core::aio`) that
//!   yield between commuting increments, so the whole population is live
//!   at once: measures the async session + executor overhead and how the
//!   per-shard settle sweep scales with the standing population;
//! * `async_contended_stack_1thr` — producers hold uncommitted pushes
//!   while consumers pop and suspend; every pop exercises the
//!   `Waker`-backed half of the waiter-slot rendezvous on one thread
//!   (the sync API cannot run this workload single-threaded at all);
//! * `net_closedloop_{n}conn` — `n` closed-loop clients over real
//!   loopback sockets against an in-process wire-protocol server:
//!   begin / increment burst / commit per wire round trip (see
//!   [`crate::bench_net`]) — the end-to-end network front-end cost;
//! * `wal_groupcommit_{on,off}` — the 4-thread committed-session shape
//!   against a write-ahead-logged database: `on` shares one fsync per
//!   group-commit window, `off` pays one fsync per commit; the ratio is
//!   the group-commit amortisation factor;
//! * `wal_replay_{n}txn_{s}shards` — reopen a prebuilt `n`-commit log at
//!   `s` shards and replay it through the ADT dispatch: pure recovery
//!   speed.

use sbcc_adt::{AccessSet, Counter, CounterOp, Stack, StackOp, TableObject, TableOp, Value};
use sbcc_core::aio::{yield_now, AsyncDatabase, LocalExecutor};
use sbcc_core::{
    BatchCall, ConflictPolicy, CycleDetector, Database, DatabaseConfig, FsyncPolicy,
    ReorderStrategy, SchedulerConfig, SchedulerKernel, WalConfig,
};
use std::cell::Cell;
use std::rc::Rc;
use sbcc_graph::{DependencyGraph, EdgeKind};
use std::time::{Duration, Instant};

/// One measured workload.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload identifier.
    pub name: String,
    /// Total work items (operations / checks) across all repetitions.
    pub ops: u64,
    /// Wall-clock seconds spent.
    pub elapsed_secs: f64,
    /// Work items per second.
    pub ops_per_sec: f64,
}

/// Repeat `workload` until `budget` wall time has elapsed (at least twice)
/// and record its throughput. The closure returns the number of work items
/// it performed.
fn measure(name: &str, budget: Duration, mut workload: impl FnMut() -> u64) -> BenchResult {
    // Warm-up round (not counted).
    let _ = workload();
    let start = Instant::now();
    let mut ops = 0u64;
    let mut reps = 0u32;
    while reps < 2 || start.elapsed() < budget {
        ops += workload();
        reps += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    BenchResult {
        name: name.to_owned(),
        ops,
        elapsed_secs: elapsed,
        ops_per_sec: ops as f64 / elapsed.max(f64::EPSILON),
    }
}

fn mixed_workload(policy: ConflictPolicy) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_policy(policy)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let counter = kernel.register("counter", Counter::new()).unwrap();
    let table = kernel.register("table", TableObject::new()).unwrap();
    for round in 0..64i64 {
        let t = kernel.begin();
        let mut aborted = false;
        for step in 0..8i64 {
            let outcome = match step % 4 {
                0 => kernel.request_op(t, stack, &StackOp::Push(Value::Int(round))),
                1 => kernel.request_op(t, counter, &CounterOp::Increment(1)),
                2 => kernel.request_op(
                    t,
                    table,
                    &TableOp::Insert(Value::Int(round * 8 + step), Value::Int(step)),
                ),
                _ => kernel.request_op(t, counter, &CounterOp::Decrement(1)),
            }
            .unwrap();
            if !outcome.is_executed() {
                aborted = true;
                break;
            }
        }
        if !aborted {
            let _ = kernel.commit(t);
        }
        let _ = kernel.drain_events();
    }
    kernel.stats().operations_executed
}

fn dense_chain(n: u64, detector: CycleDetector) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_cycle_detector(detector)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let txns: Vec<_> = (0..n).map(|_| kernel.begin()).collect();
    for (i, t) in txns.iter().enumerate() {
        let r = kernel
            .request_op(*t, stack, &StackOp::Push(Value::Int(i as i64)))
            .unwrap();
        assert!(r.is_executed());
    }
    for t in txns.iter().rev() {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    kernel.stats().operations_executed + kernel.stats().commits
}

/// [`dense_chain`] with the pushes submitted in **reverse** begin order:
/// every commit-dependency edge then points from an older (lower labeled)
/// transaction to newer ones, so every push triggers a Pearce–Kelly
/// order-violation repair over the chain built so far — the variant of the
/// dense_chain family that actually exercises the reorder. `reorder`
/// selects the repair under measurement (gap-labeled vs the retained dense
/// baseline); both make identical scheduling decisions, so the entry delta
/// is pure reorder maintenance cost.
fn dense_chain_rev(n: u64, reorder: ReorderStrategy) -> u64 {
    let mut kernel = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_reorder(reorder)
            .with_history(false),
    );
    let stack = kernel.register("stack", Stack::new()).unwrap();
    let txns: Vec<_> = (0..n).map(|_| kernel.begin()).collect();
    for (i, t) in txns.iter().enumerate().rev() {
        let r = kernel
            .request_op(*t, stack, &StackOp::Push(Value::Int(i as i64)))
            .unwrap();
        assert!(r.is_executed());
    }
    for t in txns.iter() {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    // Most pushes violate; an intervening gap-exhaustion renumbering can
    // re-rank not-yet-pushed transactions and spare a few of the rest.
    assert!(
        kernel.reorder_telemetry().violations >= n / 2,
        "the reversed chain must exercise the reorder"
    );
    kernel.stats().operations_executed + kernel.stats().commits
}

/// The small-violation reorder microbench: disjoint 8-node clusters, each
/// repaired by one 7-node-region violation. Regions always fit the inline
/// scratch, so the gap-labeled repair must report **zero** allocating slow
/// paths (asserted — this entry is the allocation-free claim's receipt in
/// `BENCH_kernel.json`), while the dense baseline allocates per violation.
fn reorder_smallviol(reorder: ReorderStrategy) -> u64 {
    let clusters = 512u64;
    let mut g: DependencyGraph<u64> = DependencyGraph::new();
    g.set_reorder_strategy(reorder);
    for c in 0..clusters {
        let base = c * 8;
        for n in base..base + 8 {
            g.add_node(n);
        }
        for i in base + 2..base + 8 {
            g.add_edge(i, i - 1, EdgeKind::CommitDep);
        }
        g.add_edge(base, base + 7, EdgeKind::WaitFor);
    }
    let t = g.order_telemetry();
    assert_eq!(t.violations, clusters);
    if reorder == ReorderStrategy::GapLabel {
        assert_eq!(
            t.slow_path_allocs, 0,
            "small-violation repairs must stay allocation-free"
        );
    }
    // One repaired violation plus seven edges per cluster.
    clusters * 8
}

fn hotspot_counter() -> u64 {
    let mut kernel = SchedulerKernel::new(SchedulerConfig::default().with_history(false));
    let counter = kernel.register("hits", Counter::new()).unwrap();
    let txns: Vec<_> = (0..200).map(|_| kernel.begin()).collect();
    for t in &txns {
        let _ = kernel.request_op(*t, counter, &CounterOp::Increment(1));
    }
    for t in &txns {
        let _ = kernel.commit(*t);
    }
    kernel.stats().operations_executed + kernel.stats().commits
}

/// The submission-mode comparison workload: `txns` transactions all stay
/// live while each submits `ops_per_txn` commuting increments against one
/// hot counter. Every classification therefore walks one log-index bucket
/// per already-active transaction while the dependency graph stays empty
/// (increments commute — no blocking, no commit-dependency edges, no
/// cycle checks), so the measured gap between the modes is exactly the
/// per-call classification-pass overhead that grouped submission
/// amortises. Differential tests prove the two modes are behaviourally
/// identical; this measures the cost gap.
pub fn submission_workload(batched: bool, txns: u64, ops_per_txn: u64) -> u64 {
    let mut kernel = SchedulerKernel::new(SchedulerConfig::default().with_history(false));
    let counter = kernel.register("hits", Counter::new()).unwrap();
    let ids: Vec<_> = (0..txns).map(|_| kernel.begin()).collect();
    for t in &ids {
        if batched {
            let calls: Vec<BatchCall> = (0..ops_per_txn)
                .map(|_| BatchCall::new(counter, sbcc_adt::AdtOp::to_call(&CounterOp::Increment(1))))
                .collect();
            let outcome = kernel.request_batch(*t, calls).unwrap();
            assert!(outcome.is_complete());
        } else {
            for _ in 0..ops_per_txn {
                let outcome = kernel
                    .request(*t, counter, sbcc_adt::AdtOp::to_call(&CounterOp::Increment(1)))
                    .unwrap();
                assert!(outcome.is_executed());
            }
        }
    }
    for t in &ids {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    kernel.stats().operations_executed + kernel.stats().commits
}

/// The declared-admission comparison workload: a standing population of
/// `txns` live transactions, each owning one private counter (disjoint
/// footprints, so every declared object is quiescent) and submitting
/// `ops_per_txn` commuting increments as a single batch. With
/// `declared = true` the batch carries its write footprint up front and
/// rides [`SchedulerKernel::request_batch_declared`]'s fast path: one
/// coverage scan plus one disjointness scan admit the whole group, and
/// every call executes with zero per-op classification. With
/// `declared = false` the identical batches go through
/// [`SchedulerKernel::request_batch`], which classifies each call against
/// the object's log (including the transaction's own accumulating
/// entries — a quadratic-in-`ops_per_txn` commute-check bill the declared
/// path never pays). The declared-vs-classified ratio is the group
/// admission win on a workload that declares honestly and disjointly.
pub fn declared_workload(declared: bool, txns: u64, ops_per_txn: u64) -> u64 {
    let mut kernel = SchedulerKernel::new(SchedulerConfig::default().with_history(false));
    let counters: Vec<_> = (0..txns)
        .map(|t| kernel.register(format!("c{t}"), Counter::new()).unwrap())
        .collect();
    let ids: Vec<_> = (0..txns).map(|_| kernel.begin()).collect();
    for (t, counter) in ids.iter().zip(&counters) {
        let calls: Vec<BatchCall> = (0..ops_per_txn)
            .map(|_| BatchCall::new(*counter, sbcc_adt::AdtOp::to_call(&CounterOp::Increment(1))))
            .collect();
        let outcome = if declared {
            let mut access = AccessSet::new();
            access.declare_write(*counter);
            kernel.request_batch_declared(*t, calls, &access).unwrap()
        } else {
            kernel.request_batch(*t, calls).unwrap()
        };
        assert!(outcome.is_complete());
    }
    for t in &ids {
        let _ = kernel.commit(*t);
    }
    let _ = kernel.drain_events();
    let stats = kernel.stats();
    if declared {
        assert_eq!(stats.declared_admitted, txns, "every batch must group-admit");
    }
    stats.operations_executed + stats.commits
}

/// The session-level comparison: `threads` threads each run transactions of
/// `ops_per_txn` commuting counter increments against one shared
/// [`Database`]. Per-call submission takes the database lock (and drains
/// the event queue) once per operation; a batch takes it once per
/// transaction.
fn session_workload(batched: bool, threads: usize, txns_per_thread: u64, ops_per_txn: u64) -> u64 {
    let db = Database::new(SchedulerConfig::default().with_history(false));
    let counter = db.register("hits", Counter::new());
    let done: Vec<std::thread::JoinHandle<u64>> = (0..threads)
        .map(|_| {
            let db = db.clone();
            let counter = counter.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                for _ in 0..txns_per_thread {
                    let t = db.begin();
                    if batched {
                        let mut batch = t.batch();
                        for _ in 0..ops_per_txn {
                            batch.add_op(&counter, CounterOp::Increment(1));
                        }
                        ops += batch.submit().unwrap().len() as u64;
                    } else {
                        for _ in 0..ops_per_txn {
                            t.exec(&counter, CounterOp::Increment(1)).unwrap();
                            ops += 1;
                        }
                    }
                    t.commit().unwrap();
                }
                ops
            })
        })
        .collect();
    done.into_iter().map(|h| h.join().expect("bench thread")).sum()
}

/// The sharding comparison workload: `threads` threads drive a **standing
/// population** of live sessions (`live_per_round` open transactions per
/// thread per round, each executing `ops_per_txn` commuting increments,
/// then all committed) against one [`Database`] built with `shards`
/// kernel shards.
///
/// * `disjoint = true`: each thread owns 8 private counters (named so no
///   other thread touches them) — the footprints are disjoint, so every
///   session is single-shard and intra-shard admission never takes a
///   global lock. Two single-kernel costs scale with the *database-wide*
///   live population and shrink to the *per-shard* population under
///   sharding: the termination settle scan (zero-out-degree sweep over
///   the kernel's whole dependency graph on every commit) and, on
///   multi-core hardware, the serialisation of every session on one
///   kernel lock. The shards-vs-1 ratio is the sharding subsystem's
///   headline number.
/// * `disjoint = false`: every thread hits the *same* hot counter; all
///   transactions enroll in the one shard that owns it no matter how many
///   shards exist, so both costs stay global — this measures the overhead
///   the coordinator adds on a workload sharding cannot help.
pub fn sharded_session_workload(
    shards: usize,
    threads: usize,
    disjoint: bool,
    rounds: u64,
    live_per_round: u64,
    ops_per_txn: u64,
) -> u64 {
    let db = Database::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false)).with_shards(shards),
    );
    let objects_per_thread = 8usize;
    let handles: Vec<Vec<sbcc_core::Handle<Counter>>> = if disjoint {
        (0..threads)
            .map(|t| {
                (0..objects_per_thread)
                    .map(|o| db.register(format!("ctr_t{t}_o{o}"), Counter::new()))
                    .collect()
            })
            .collect()
    } else {
        let hot = db.register("hot", Counter::new());
        (0..threads).map(|_| vec![hot.clone()]).collect()
    };
    let workers: Vec<std::thread::JoinHandle<u64>> = handles
        .into_iter()
        .map(|counters| {
            let db = db.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                for _ in 0..rounds {
                    let mut sessions = Vec::with_capacity(live_per_round as usize);
                    for i in 0..live_per_round {
                        let txn = db.begin();
                        let counter = &counters[i as usize % counters.len()];
                        for _ in 0..ops_per_txn {
                            txn.exec(counter, CounterOp::Increment(1)).unwrap();
                            ops += 1;
                        }
                        sessions.push(txn);
                    }
                    // Commit the whole standing population: every commit
                    // pays the settle sweep over the live transactions
                    // co-located in its kernel.
                    for txn in sessions {
                        txn.commit().unwrap();
                    }
                }
                ops
            })
        })
        .collect();
    workers.into_iter().map(|h| h.join().expect("bench thread")).sum()
}

/// The read-mostly contended workload behind the
/// `read_mostly_{snapshot,blocking}_{N}shards` entries: `threads` threads
/// share one pool of 64 counters; every transaction reads nine of them
/// and increments one (90/10 read/write, overlapping windows into the
/// pool so footprints genuinely collide without every transaction
/// reading everything). In `snapshot` mode transactions
/// begin through [`Database::begin_snapshot`], so the reads are served by
/// the multi-version store at the begin stamp — no classification, no
/// blocking — under the SSI rw-antidependency guard (a dangerous
/// structure aborts and the transaction retries). In blocking mode the
/// same reads classify against the uncommitted increments of the other
/// threads and serialize behind them. Only committed transactions' ops
/// count, so aborted SSI attempts are honestly paid.
pub fn read_mostly_workload(
    shards: usize,
    threads: usize,
    txns_per_thread: u64,
    snapshot: bool,
) -> u64 {
    let db = Database::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false)).with_shards(shards),
    );
    let counters: Vec<sbcc_core::Handle<Counter>> = (0..64)
        .map(|i| db.register(format!("ctr{i}"), Counter::new()))
        .collect();
    let workers: Vec<std::thread::JoinHandle<u64>> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let counters = counters.clone();
            std::thread::spawn(move || {
                let mut ops = 0u64;
                for k in 0..txns_per_thread {
                    let base = (t as u64).wrapping_mul(31).wrapping_add(k);
                    loop {
                        let txn = if snapshot { db.begin_snapshot() } else { db.begin() };
                        let mut attempt = 0u64;
                        let mut ok = true;
                        for i in 0..10u64 {
                            let counter = &counters[((base + i) % 64) as usize];
                            let op = if i == 9 {
                                CounterOp::Increment(1)
                            } else {
                                CounterOp::Read
                            };
                            match txn.exec(counter, op) {
                                Ok(_) => attempt += 1,
                                Err(_) => {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok && txn.commit().is_ok() {
                            ops += attempt;
                            break;
                        }
                        // Scheduler abort (deadlock victim or SSI
                        // dangerous structure): retry the transaction.
                    }
                }
                ops
            })
        })
        .collect();
    workers.into_iter().map(|h| h.join().expect("bench thread")).sum()
}

/// The async-multiplexing workload: one [`LocalExecutor`] thread drives
/// `txns` concurrent [`AsyncDatabase`] sessions, each executing
/// `ops_per_txn` commuting increments on a shared counter pool with a
/// cooperative yield between operations — so the entire population stays
/// live simultaneously (like `sharded_session_workload`'s standing
/// population, but on ONE thread instead of one thread per session).
pub fn async_mux_workload(shards: usize, txns: usize, ops_per_txn: u64) -> u64 {
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false)).with_shards(shards),
    );
    let counters: Vec<_> = (0..64)
        .map(|i| db.register(format!("ctr{i}"), Counter::new()))
        .collect();
    let executor = LocalExecutor::new();
    let total = Rc::new(Cell::new(0u64));
    for i in 0..txns {
        let db = db.clone();
        let counter = counters[i % counters.len()].clone();
        let total = total.clone();
        executor.spawn(async move {
            let txn = db.begin();
            for _ in 0..ops_per_txn {
                txn.exec(&counter, CounterOp::Increment(1)).await.unwrap();
                // Hand the thread to the next session: keeps all `txns`
                // sessions in flight at once.
                yield_now().await;
            }
            txn.commit().await.unwrap();
            total.set(total.get() + ops_per_txn);
        });
    }
    executor.run();
    // Count increments only, like `sharded_session_workload`, so the
    // async-vs-threaded ops/sec comparison is like-for-like.
    total.get()
}

/// The async conflict workload: `pairs` producers push onto a small
/// stack pool and stay uncommitted until every consumer has had the
/// chance to block behind them; `pairs` consumers pop, suspend inside
/// the kernel, and are woken through their `Waker`-backed slots when
/// the producers commit. All on one executor thread.
pub fn async_contended_workload(pairs: usize) -> u64 {
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false)).with_shards(1),
    );
    let stacks: Vec<_> = (0..8)
        .map(|i| db.register(format!("stack{i}"), Stack::new()))
        .collect();
    let executor = LocalExecutor::new();
    let produced = Rc::new(Cell::new(0usize));
    for i in 0..pairs {
        let db = db.clone();
        let stack = stacks[i % stacks.len()].clone();
        let produced = produced.clone();
        executor.spawn(async move {
            let txn = db.begin();
            txn.exec(&stack, StackOp::Push(Value::Int(i as i64)))
                .await
                .unwrap();
            produced.set(produced.get() + 1);
            // Stay live until every producer holds its push (and the
            // consumers spawned after us have blocked behind them).
            while produced.get() < pairs {
                yield_now().await;
            }
            yield_now().await;
            txn.commit().await.unwrap();
        });
    }
    for i in 0..pairs {
        let db = db.clone();
        let stack = stacks[i % stacks.len()].clone();
        executor.spawn(async move {
            db.run(|txn| {
                let stack = stack.clone();
                async move { txn.exec(&stack, StackOp::Pop).await }
            })
            .await
            .unwrap();
        });
    }
    executor.run();
    let stats = db.stats();
    stats.operations_executed + stats.commits
}

/// A scratch directory for the durability workloads, removed on drop.
struct BenchDir(std::path::PathBuf);

impl BenchDir {
    fn new(tag: &str) -> BenchDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "sbcc-bench-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench wal dir");
        BenchDir(path)
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The durability workload: the disjoint multi-thread session shape
/// (each thread commits transactions of commuting increments on its own
/// counter) against a **write-ahead-logged** database. Under
/// [`FsyncPolicy::Always`] every commit pays its own fsync *inside the
/// log append*, so committers serialise on the device; under
/// [`FsyncPolicy::GroupCommit`] the append is a buffer copy and every
/// committer waiting inside one window shares a single flush. The
/// amortisation only pays once the concurrent-committer population
/// exceeds `window / fsync_cost` (≈ 10 on a ~100 µs-fsync device at the
/// 1 ms window used here) — below that, group commit trades throughput
/// for batching latency — which is why the bench drives a large
/// standing population rather than a handful of threads.
pub fn wal_session_workload(
    fsync: FsyncPolicy,
    threads: usize,
    txns_per_thread: u64,
    ops_per_txn: u64,
) -> u64 {
    let dir = BenchDir::new("session");
    let db = Database::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false))
            .with_shards(1)
            .with_wal(
                WalConfig::new(&dir.0)
                    .with_fsync(fsync)
                    .with_window(Duration::from_millis(1)),
            ),
    );
    let workers: Vec<std::thread::JoinHandle<u64>> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let counter = db.register(format!("wal_ctr_{t}"), Counter::new());
            std::thread::spawn(move || {
                let mut ops = 0u64;
                for _ in 0..txns_per_thread {
                    let txn = db.begin();
                    for _ in 0..ops_per_txn {
                        txn.exec(&counter, CounterOp::Increment(1)).unwrap();
                        ops += 1;
                    }
                    // A Committed acknowledgement is a durability promise:
                    // this blocks until the record is flushed (inline
                    // under Always, by the shared flusher window under
                    // GroupCommit).
                    txn.commit().unwrap();
                }
                ops
            })
        })
        .collect();
    workers.into_iter().map(|h| h.join().expect("bench thread")).sum()
}

/// Build the replay-source log once: `txns` single-shard commits of
/// `ops_per_txn` increments over 8 counters. Returns the directory (the
/// caller keeps it alive across the measured reopens).
pub fn wal_build_replay_log(txns: u64, ops_per_txn: u64) -> BenchWalLog {
    let dir = BenchDir::new("replay");
    {
        let db = Database::with_config(
            DatabaseConfig::new(SchedulerConfig::default().with_history(false))
                .with_shards(1)
                .with_wal(WalConfig::new(&dir.0).with_fsync(FsyncPolicy::Never)),
        );
        let counters: Vec<_> = (0..8)
            .map(|i| db.register(format!("wal_ctr_{i}"), Counter::new()))
            .collect();
        for k in 0..txns {
            let txn = db.begin();
            for _ in 0..ops_per_txn {
                txn.exec(&counters[k as usize % counters.len()], CounterOp::Increment(1))
                    .unwrap();
            }
            txn.commit().unwrap();
        }
    }
    BenchWalLog { dir, txns }
}

/// A prebuilt write-ahead log plus its expected commit count.
pub struct BenchWalLog {
    dir: BenchDir,
    txns: u64,
}

/// One measured rep: open the prebuilt log at `shards` shards, replaying
/// every commit through the ADT dispatch, and count the replayed
/// transactions. Measures pure recovery speed (parse + re-execute), not
/// append speed.
pub fn wal_replay_workload(log: &BenchWalLog, shards: usize) -> u64 {
    let db = Database::with_config(
        DatabaseConfig::new(SchedulerConfig::default().with_history(false))
            .with_shards(shards)
            .with_wal(WalConfig::new(&log.dir.0).with_fsync(FsyncPolicy::Never)),
    );
    let commits = db.stats().commits;
    assert_eq!(commits, log.txns, "replay must recover every logged commit");
    commits
}

fn graph_checks(detector: CycleDetector) -> u64 {
    let n = 1000u64;
    let mut g: DependencyGraph<u64> = DependencyGraph::new();
    for i in 1..n {
        g.add_edge(i, i - 1, EdgeKind::CommitDep);
        if i % 7 == 0 {
            g.add_edge(i, i / 2, EdgeKind::WaitFor);
        }
    }
    let queries: Vec<(u64, Vec<u64>)> = vec![
        (n - 1, vec![0, n / 2]),
        (n / 2 + 1, vec![n / 2, 1]),
        (n / 2, vec![n / 2 + 2]),
        (n - 2, vec![n - 1]),
    ];
    // The oracle pass is orders of magnitude slower; keep the rep count
    // proportionate so a run stays fast.
    let reps = match detector {
        CycleDetector::Incremental => 500,
        CycleDetector::SccOracle => 5,
    };
    let mut checks = 0u64;
    for _ in 0..reps {
        for (from, targets) in &queries {
            let _ = match detector {
                CycleDetector::Incremental => g.would_close_cycle(*from, targets),
                CycleDetector::SccOracle => g.would_close_cycle_oracle(*from, targets),
            };
            checks += 1;
        }
    }
    checks
}

/// Run every baseline workload. `quick` shrinks time budgets and the dense
/// chain size (used by CI smoke runs).
pub fn run_all(quick: bool) -> Vec<BenchResult> {
    let budget = if quick {
        Duration::from_millis(80)
    } else {
        // 800 ms per entry: the threaded session workloads are too noisy
        // at shorter budgets to support mode-vs-mode comparisons.
        Duration::from_millis(800)
    };
    let chain_n = if quick { 128 } else { 384 };
    let mut results = Vec::new();
    for policy in [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ] {
        results.push(measure(&format!("mixed_{policy}"), budget, || {
            mixed_workload(policy)
        }));
    }
    for detector in [CycleDetector::Incremental, CycleDetector::SccOracle] {
        results.push(measure(
            &format!("dense_chain_{chain_n}_{detector}"),
            budget,
            || dense_chain(chain_n, detector),
        ));
    }
    for reorder in [ReorderStrategy::GapLabel, ReorderStrategy::DenseRedistribute] {
        results.push(measure(
            &format!("dense_chain_rev_{chain_n}_{reorder}"),
            budget,
            || dense_chain_rev(chain_n, reorder),
        ));
    }
    for reorder in [ReorderStrategy::GapLabel, ReorderStrategy::DenseRedistribute] {
        results.push(measure(
            &format!("reorder_smallviol_{reorder}"),
            budget,
            || reorder_smallviol(reorder),
        ));
    }
    results.push(measure("hotspot_counter_200", budget, hotspot_counter));
    for detector in [CycleDetector::Incremental, CycleDetector::SccOracle] {
        results.push(measure(&format!("graph_checks_{detector}"), budget, || {
            graph_checks(detector)
        }));
    }
    let (sub_txns, sub_ops) = if quick { (48, 8) } else { (96, 8) };
    for batched in [false, true] {
        results.push(measure(
            if batched {
                "submission_batched"
            } else {
                "submission_percall"
            },
            budget,
            || submission_workload(batched, sub_txns, sub_ops),
        ));
    }
    // The declared-admission pair: the same disjoint standing-population
    // shape, declared write footprints vs per-op classification.
    let (decl_txns, decl_ops) = if quick { (48, 16) } else { (96, 24) };
    for declared in [true, false] {
        results.push(measure(
            if declared {
                "declared_disjoint_declared"
            } else {
                "declared_disjoint_classified"
            },
            budget,
            || declared_workload(declared, decl_txns, decl_ops),
        ));
    }
    // Enough transactions per thread that spawn overhead is amortised away.
    let (threads, sess_txns, sess_ops) = if quick { (4, 16, 8) } else { (4, 200, 8) };
    for batched in [false, true] {
        results.push(measure(
            if batched {
                "session_batched_4thr"
            } else {
                "session_percall_4thr"
            },
            budget,
            || session_workload(batched, threads, sess_txns, sess_ops),
        ));
    }
    // The sharding sweep: disjoint footprints (where shards should scale)
    // and the single-object hotspot (where they only add coordination).
    let (sh_rounds, sh_live, sh_ops) = if quick { (1, 32, 3) } else { (2, 128, 3) };
    for shards in [1usize, 2, 4, 8] {
        results.push(measure(
            &format!("sharded_disjoint_{shards}shards_4thr"),
            budget,
            || sharded_session_workload(shards, threads, true, sh_rounds, sh_live, sh_ops),
        ));
    }
    for shards in [1usize, 4] {
        results.push(measure(
            &format!("sharded_hotspot_{shards}shards_4thr"),
            budget,
            || sharded_session_workload(shards, threads, false, sh_rounds, sh_live, sh_ops),
        ));
    }
    // The multi-version read path: 90/10 read/write over one shared
    // counter pool, snapshot reads (multi-version, non-blocking,
    // SSI-guarded) vs classified blocking reads, at 1 and 4 shards.
    let rm_txns = if quick { 16 } else { 200 };
    for shards in [1usize, 4] {
        for (mode, snapshot) in [("snapshot", true), ("blocking", false)] {
            results.push(measure(
                &format!("read_mostly_{mode}_{shards}shards"),
                budget,
                || read_mostly_workload(shards, threads, rm_txns, snapshot),
            ));
        }
    }
    // The async front-end: a standing population multiplexed on one
    // executor thread (shard sweep), plus the blocking/wakeup workload.
    let (amux_txns, amux_ops) = if quick { (64, 3) } else { (512, 4) };
    for shards in [1usize, 4] {
        results.push(measure(
            &format!("async_mux_{amux_txns}txn_{shards}shards_1thr"),
            budget,
            || async_mux_workload(shards, amux_txns, amux_ops),
        ));
    }
    let apairs = if quick { 48 } else { 256 };
    results.push(measure("async_contended_stack_1thr", budget, || {
        async_contended_workload(apairs)
    }));
    // The network front-end: closed-loop clients over real loopback
    // sockets against an in-process server — the end-to-end wire
    // round-trip cost (framing, reader hand-off, router, session task).
    let (net_txns, net_ops) = if quick { (8, 4) } else { (40, 6) };
    for conns in [1usize, 4] {
        results.push(measure(
            &format!("net_closedloop_{conns}conn"),
            budget,
            || crate::bench_net::net_closedloop_workload(conns, net_txns, net_ops),
        ));
    }
    // The durability sweep: the same 4-thread committed-session shape
    // with a write-ahead log, group commit on (shared flush per window)
    // vs off (one fsync per commit) — the on/off ratio is the
    // amortisation factor — plus pure replay speed at 1 and 4 shards.
    let (wal_threads, wal_txns, wal_ops) = if quick { (16, 4, 4) } else { (32, 16, 6) };
    for (name, fsync) in [
        ("wal_groupcommit_on", FsyncPolicy::GroupCommit),
        ("wal_groupcommit_off", FsyncPolicy::Always),
    ] {
        results.push(measure(name, budget, || {
            wal_session_workload(fsync, wal_threads, wal_txns, wal_ops)
        }));
    }
    let replay_txns = if quick { 100 } else { 500 };
    let log = wal_build_replay_log(replay_txns, 4);
    for shards in [1usize, 4] {
        results.push(measure(
            &format!("wal_replay_{replay_txns}txn_{shards}shards"),
            budget,
            || wal_replay_workload(&log, shards),
        ));
    }
    results
}

/// Render results as the `BENCH_kernel.json` document (hand-rolled JSON —
/// the offline build has no serde).
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"suite\": \"kernel_throughput\",\n");
    out.push_str("  \"note\": \"ops/sec are machine-dependent; compare ratios across entries and trends across commits\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"elapsed_secs\": {:.4}, \"ops_per_sec\": {:.1}}}{}\n",
            r.name,
            r.ops,
            r.elapsed_secs,
            r.ops_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_entries_and_valid_json() {
        let results = run_all(true);
        assert_eq!(results.len(), 36);
        for r in &results {
            assert!(r.ops > 0, "{} did work", r.name);
            assert!(r.ops_per_sec > 0.0);
        }
        let json = to_json(&results);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("dense_chain"));
        assert!(json.contains("dense_chain_rev_128_gaplabel"));
        assert!(json.contains("dense_chain_rev_128_densereorder"));
        assert!(json.contains("reorder_smallviol_gaplabel"));
        assert!(json.contains("reorder_smallviol_densereorder"));
        assert!(json.contains("graph_checks_incremental"));
        assert!(json.contains("submission_batched"));
        assert!(json.contains("session_percall_4thr"));
        assert!(json.contains("sharded_disjoint_4shards_4thr"));
        assert!(json.contains("sharded_hotspot_1shards_4thr"));
        assert!(json.contains("read_mostly_snapshot_1shards"));
        assert!(json.contains("read_mostly_blocking_1shards"));
        assert!(json.contains("read_mostly_snapshot_4shards"));
        assert!(json.contains("read_mostly_blocking_4shards"));
        assert!(json.contains("async_mux_64txn_1shards_1thr"));
        assert!(json.contains("async_mux_64txn_4shards_1thr"));
        assert!(json.contains("async_contended_stack_1thr"));
        assert!(json.contains("net_closedloop_1conn"));
        assert!(json.contains("net_closedloop_4conn"));
        assert!(json.contains("wal_groupcommit_on"));
        assert!(json.contains("wal_groupcommit_off"));
        assert!(json.contains("wal_replay_100txn_1shards"));
        assert!(json.contains("wal_replay_100txn_4shards"));
        // Crude JSON sanity: balanced braces/brackets, one object per line.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn incremental_detector_beats_the_oracle_on_the_graph_microbench() {
        let results = run_all(true);
        let rate = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.ops_per_sec)
                .expect("entry present")
        };
        let speedup = rate("graph_checks_incremental") / rate("graph_checks_scc-oracle");
        assert!(
            speedup >= 2.0,
            "incremental checks should be at least 2x the oracle (got {speedup:.1}x)"
        );
    }

    #[test]
    fn read_mostly_modes_do_identical_committed_work() {
        // Committed work is deterministic in both modes: every committed
        // transaction performed exactly ten operations, and aborted
        // attempts (deadlock victims, SSI conflicts) are not counted.
        let want = 2 * 8 * 10;
        assert_eq!(read_mostly_workload(1, 2, 8, true), want);
        assert_eq!(read_mostly_workload(1, 2, 8, false), want);
        assert_eq!(read_mostly_workload(4, 2, 8, true), want);
        assert_eq!(read_mostly_workload(4, 2, 8, false), want);
    }

    #[test]
    fn reorder_strategies_do_identical_work() {
        // The two repairs maintain the same invariant, so the reversed
        // dense chain performs exactly the same kernel work under either.
        assert_eq!(
            dense_chain_rev(48, ReorderStrategy::GapLabel),
            dense_chain_rev(48, ReorderStrategy::DenseRedistribute),
        );
        assert_eq!(
            reorder_smallviol(ReorderStrategy::GapLabel),
            reorder_smallviol(ReorderStrategy::DenseRedistribute),
        );
        // And the reversed chain moves the same volume as the in-order one.
        assert_eq!(
            dense_chain_rev(48, ReorderStrategy::GapLabel),
            dense_chain(48, CycleDetector::Incremental),
        );
    }

    #[test]
    fn submission_modes_do_identical_work() {
        // The speedup comparison lives in the release-mode numbers
        // (`repro --bench-kernel`, BENCH_kernel.json) — a debug test run
        // in a parallel suite is far too noisy for any wall-clock
        // assertion. What must hold unconditionally: both modes perform
        // exactly the same kernel work.
        assert_eq!(
            submission_workload(false, 48, 8),
            submission_workload(true, 48, 8),
            "batched and per-call submission must execute identical workloads"
        );
        assert_eq!(
            session_workload(false, 2, 8, 8),
            session_workload(true, 2, 8, 8),
            "batched and per-call sessions must execute identical workloads"
        );
    }

    #[test]
    fn async_workloads_do_identical_work_and_really_block() {
        assert_eq!(
            async_mux_workload(1, 32, 3),
            async_mux_workload(4, 32, 3),
            "the async mux workload is shard-count independent in volume"
        );
        // pairs pushes + pairs pops + 2*pairs commits (retries permitting,
        // at least that much work happens).
        assert!(async_contended_workload(16) >= 16 * 4);
    }

    #[test]
    fn sharded_workloads_do_identical_work_at_every_shard_count() {
        let baseline = sharded_session_workload(1, 2, true, 1, 12, 3);
        for shards in [2usize, 4, 8] {
            assert_eq!(
                sharded_session_workload(shards, 2, true, 1, 12, 3),
                baseline,
                "disjoint workload at {shards} shards"
            );
        }
        assert_eq!(
            sharded_session_workload(1, 2, false, 1, 12, 3),
            sharded_session_workload(4, 2, false, 1, 12, 3),
            "hotspot workload is shard-count independent"
        );
    }
}
