//! Plain-text and CSV rendering of experiment results.

/// A rectangular result table: one row per multiprogramming level (or other
/// x value), one column per series/metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesTable {
    /// Name of the x column (usually `mpl`).
    pub x_name: String,
    /// Column headers (one per series/metric).
    pub columns: Vec<String>,
    /// Rows: the x value and one cell per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl SeriesTable {
    /// Create an empty table with the given column layout.
    pub fn new(x_name: impl Into<String>, columns: Vec<String>) -> Self {
        SeriesTable {
            x_name: x_name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the column count"
        );
        self.rows.push((x.into(), values));
    }

    /// Render as an aligned plain-text table.
    pub fn render_text(&self) -> String {
        format_table(&self.x_name, &self.columns, &self.rows)
    }

    /// Render as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_name);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, values) in &self.rows {
            out.push_str(x);
            for v in values {
                out.push(',');
                out.push_str(&format!("{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// The value at a given row (by x value) and column (by header).
    pub fn value(&self, x: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|(rx, _)| rx == x)?;
        row.1.get(col).copied()
    }
}

/// Format an aligned text table.
pub fn format_table(x_name: &str, columns: &[String], rows: &[(String, Vec<f64>)]) -> String {
    let mut widths: Vec<usize> = Vec::with_capacity(columns.len() + 1);
    widths.push(
        rows.iter()
            .map(|(x, _)| x.len())
            .chain(std::iter::once(x_name.len()))
            .max()
            .unwrap_or(4)
            + 2,
    );
    for (i, c) in columns.iter().enumerate() {
        let data_width = rows
            .iter()
            .map(|(_, vals)| format!("{:.3}", vals[i]).len())
            .max()
            .unwrap_or(6);
        widths.push(c.len().max(data_width) + 2);
    }

    let mut out = String::new();
    out.push_str(&format!("{:<width$}", x_name, width = widths[0]));
    for (i, c) in columns.iter().enumerate() {
        out.push_str(&format!("{:>width$}", c, width = widths[i + 1]));
    }
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>()));
    out.push('\n');
    for (x, values) in rows {
        out.push_str(&format!("{:<width$}", x, width = widths[0]));
        for (i, v) in values.iter().enumerate() {
            out.push_str(&format!("{:>width$.3}", v, width = widths[i + 1]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesTable {
        let mut t = SeriesTable::new(
            "mpl",
            vec!["commutativity".to_owned(), "recoverability".to_owned()],
        );
        t.push_row("10", vec![20.0, 25.5]);
        t.push_row("50", vec![48.25, 80.125]);
        t
    }

    #[test]
    fn text_rendering_is_aligned_and_complete() {
        let text = sample().render_text();
        assert!(text.contains("mpl"));
        assert!(text.contains("commutativity"));
        assert!(text.contains("recoverability"));
        assert!(text.contains("80.125") || text.contains("80.12"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "mpl,commutativity,recoverability");
        assert!(lines[1].starts_with("10,20.0000,25.5000"));
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn value_lookup() {
        let t = sample();
        assert_eq!(t.value("10", "recoverability"), Some(25.5));
        assert_eq!(t.value("50", "commutativity"), Some(48.25));
        assert_eq!(t.value("99", "commutativity"), None);
        assert_eq!(t.value("10", "bogus"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = SeriesTable::new("x", vec!["a".to_owned()]);
        t.push_row("1", vec![1.0, 2.0]);
    }
}
