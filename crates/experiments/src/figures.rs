//! Figures 4–18: the simulation sweeps behind every figure of the paper's
//! evaluation section, reproduced as numeric series.

use crate::output::SeriesTable;
use sbcc_core::ConflictPolicy;
use sbcc_sim::{run_averaged, AggregatedResult, DataModel, ResourceMode, SimParams};
use std::collections::HashMap;

/// Which metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Completed transactions per second.
    Throughput,
    /// Mean response time in seconds.
    ResponseTime,
    /// Blocking events per completed transaction.
    BlockingRatio,
    /// Restarts per completed transaction.
    RestartRatio,
    /// Cycle-detection invocations per completed transaction.
    CycleCheckRatio,
    /// Mean operations executed at abort time.
    AbortLength,
}

impl Metric {
    /// Column suffix for this metric.
    pub fn suffix(&self) -> &'static str {
        match self {
            Metric::Throughput => "tput",
            Metric::ResponseTime => "resp",
            Metric::BlockingRatio => "BR",
            Metric::RestartRatio => "RR",
            Metric::CycleCheckRatio => "CCR",
            Metric::AbortLength => "AL",
        }
    }

    /// Extract the metric's mean from an aggregated result.
    pub fn extract(&self, result: &AggregatedResult) -> f64 {
        match self {
            Metric::Throughput => result.throughput.mean,
            Metric::ResponseTime => result.response_time.mean,
            Metric::BlockingRatio => result.blocking_ratio.mean,
            Metric::RestartRatio => result.restart_ratio.mean,
            Metric::CycleCheckRatio => result.cycle_check_ratio.mean,
            Metric::AbortLength => result.abort_length.mean,
        }
    }
}

/// One curve of a figure: a label and the parameters that stay fixed while
/// the multiprogramming level sweeps.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// Curve label (e.g. `"recoverability"` or `"Pc=4, Pr=8"`).
    pub label: String,
    /// Base parameters for the curve.
    pub params: SimParams,
}

/// Sweep scale: how many completions and runs per point, and which
/// multiprogramming levels.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Completed transactions per run.
    pub completions: u64,
    /// Independent runs per point.
    pub runs: usize,
    /// Multiprogramming levels to sweep.
    pub mpl_levels: Vec<usize>,
}

impl Scale {
    /// The paper's full scale: 50 000 completions, 10 runs per point.
    pub fn full() -> Self {
        Scale {
            completions: 50_000,
            runs: 10,
            mpl_levels: crate::tables::PAPER_MPL_LEVELS.to_vec(),
        }
    }

    /// The default reproduction scale: 50 000 completions, 3 runs per point.
    pub fn default_scale() -> Self {
        Scale {
            completions: 50_000,
            runs: 3,
            mpl_levels: crate::tables::PAPER_MPL_LEVELS.to_vec(),
        }
    }

    /// A quick smoke-test scale for CI and benchmarks.
    pub fn quick() -> Self {
        Scale {
            completions: 2_000,
            runs: 1,
            mpl_levels: vec![10, 25, 50, 100],
        }
    }
}

/// Runs sweeps with memoisation so figures sharing a sweep (e.g. Figures
/// 4–7) only pay for it once.
#[derive(Debug)]
pub struct FigureRunner {
    scale: Scale,
    cache: HashMap<String, AggregatedResult>,
}

impl FigureRunner {
    /// Create a runner at the given scale.
    pub fn new(scale: Scale) -> Self {
        FigureRunner {
            scale,
            cache: HashMap::new(),
        }
    }

    /// The runner's scale.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// Aggregated result for one parameter point (memoised).
    pub fn point(&mut self, params: &SimParams) -> AggregatedResult {
        let mut p = params.clone();
        p.target_completions = self.scale.completions;
        let key = format!("{p:?}|runs={}", self.scale.runs);
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let result = run_averaged(&p, self.scale.runs);
        self.cache.insert(key, result.clone());
        result
    }

    /// Build the result table for a set of series and metrics.
    pub fn sweep(&mut self, series: &[SeriesSpec], metrics: &[Metric]) -> SeriesTable {
        let mut columns = Vec::new();
        for s in series {
            for m in metrics {
                if metrics.len() == 1 {
                    columns.push(s.label.clone());
                } else {
                    columns.push(format!("{} {}", s.label, m.suffix()));
                }
            }
        }
        let mut table = SeriesTable::new("mpl", columns);
        let levels = self.scale.mpl_levels.clone();
        for mpl in levels {
            let mut row = Vec::new();
            for s in series {
                let mut p = s.params.clone();
                p.mpl_level = mpl;
                let agg = self.point(&p);
                for m in metrics {
                    row.push(m.extract(&agg));
                }
            }
            table.push_row(mpl.to_string(), row);
        }
        table
    }
}

/// Identifier of one of the paper's figures (4–18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FigureId(pub usize);

impl FigureId {
    /// All figure numbers in the paper's evaluation.
    pub fn all() -> Vec<FigureId> {
        (4..=18).map(FigureId).collect()
    }

    /// Parse a figure number; returns `None` when out of range.
    pub fn from_number(n: usize) -> Option<FigureId> {
        if (4..=18).contains(&n) {
            Some(FigureId(n))
        } else {
            None
        }
    }

    /// The figure's caption in the paper.
    pub fn title(&self) -> &'static str {
        match self.0 {
            4 => "Figure 4 — Throughput (infinite resources), read/write model",
            5 => "Figure 5 — Response time (infinite resources), read/write model",
            6 => "Figure 6 — Conflict ratios (infinite resources), read/write model",
            7 => "Figure 7 — Cycle check ratio and abort length (infinite resources), read/write model",
            8 => "Figure 8 — Throughput (infinite resources), read/write model, no fair scheduling",
            9 => "Figure 9 — Conflict ratios (infinite resources), read/write model, no fair scheduling",
            10 => "Figure 10 — Throughput (5 resource units), read/write model",
            11 => "Figure 11 — Throughput (1 resource unit), read/write model",
            12 => "Figure 12 — Conflict ratios (5 resource units), read/write model",
            13 => "Figure 13 — Cycle check ratio and abort length (5 resource units), read/write model",
            14 => "Figure 14 — Throughput (infinite resources), ADT model, Pc=4",
            15 => "Figure 15 — Throughput (infinite resources), ADT model, Pc=2",
            16 => "Figure 16 — Conflict ratios (infinite resources), ADT model, Pc=4",
            17 => "Figure 17 — Throughput (5 resource units), ADT model, Pc=4",
            18 => "Figure 18 — Throughput (1 resource unit), ADT model, Pc=4",
            _ => "unknown figure",
        }
    }

    /// The metrics this figure plots.
    pub fn metrics(&self) -> Vec<Metric> {
        match self.0 {
            4 | 8 | 10 | 11 | 14 | 15 | 17 | 18 => vec![Metric::Throughput],
            5 => vec![Metric::ResponseTime],
            6 | 9 | 12 | 16 => vec![Metric::BlockingRatio, Metric::RestartRatio],
            7 | 13 => vec![Metric::CycleCheckRatio, Metric::AbortLength],
            _ => vec![Metric::Throughput],
        }
    }

    /// The series (curves) this figure plots.
    pub fn series(&self) -> Vec<SeriesSpec> {
        match self.0 {
            // Read/write model, fair scheduling, infinite resources.
            4..=7 => rw_policy_series(ResourceMode::Infinite, true),
            // No fair scheduling.
            8 | 9 => rw_policy_series(ResourceMode::Infinite, false),
            // Finite resources.
            10 | 12 | 13 => rw_policy_series(ResourceMode::Finite { resource_units: 5 }, true),
            11 => rw_policy_series(ResourceMode::Finite { resource_units: 1 }, true),
            // ADT model.
            14 | 16 => adt_series(4, ResourceMode::Infinite),
            15 => adt_series(2, ResourceMode::Infinite),
            17 => adt_series(4, ResourceMode::Finite { resource_units: 5 }),
            18 => adt_series(4, ResourceMode::Finite { resource_units: 1 }),
            _ => vec![],
        }
    }

    /// Run the figure at the runner's scale.
    pub fn build(&self, runner: &mut FigureRunner) -> Figure {
        let table = runner.sweep(&self.series(), &self.metrics());
        Figure {
            id: self.0,
            title: self.title().to_owned(),
            table,
        }
    }
}

fn rw_policy_series(resources: ResourceMode, fair: bool) -> Vec<SeriesSpec> {
    [
        ConflictPolicy::CommutativityOnly,
        ConflictPolicy::Recoverability,
    ]
    .into_iter()
    .map(|policy| SeriesSpec {
        label: policy.label().to_owned(),
        params: SimParams {
            policy,
            data_model: DataModel::read_write(),
            resource_mode: resources,
            fair_scheduling: fair,
            ..SimParams::default()
        },
    })
    .collect()
}

fn adt_series(p_c: usize, resources: ResourceMode) -> Vec<SeriesSpec> {
    [0usize, 4, 8]
        .into_iter()
        .map(|p_r| SeriesSpec {
            label: format!("Pc={p_c}, Pr={p_r}"),
            params: SimParams {
                policy: ConflictPolicy::Recoverability,
                data_model: DataModel::abstract_adt(p_c, p_r),
                resource_mode: resources,
                fair_scheduling: true,
                ..SimParams::default()
            },
        })
        .collect()
}

/// A reproduced figure: its number, title and numeric series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure number in the paper.
    pub id: usize,
    /// Caption.
    pub title: String,
    /// The numeric series (rows = multiprogramming levels).
    pub table: SeriesTable,
}

impl Figure {
    /// Render as plain text.
    pub fn render_text(&self) -> String {
        format!("{}\n{}", self.title, self.table.render_text())
    }

    /// Render as CSV (with a comment line carrying the title).
    pub fn render_csv(&self) -> String {
        format!("# {}\n{}", self.title, self.table.render_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_ids_cover_4_to_18() {
        assert_eq!(FigureId::all().len(), 15);
        assert!(FigureId::from_number(3).is_none());
        assert!(FigureId::from_number(19).is_none());
        for id in FigureId::all() {
            assert!(!id.title().is_empty());
            assert!(!id.metrics().is_empty());
            assert!(!id.series().is_empty());
        }
    }

    #[test]
    fn series_specs_match_the_papers_setups() {
        let f4 = FigureId(4).series();
        assert_eq!(f4.len(), 2);
        assert_eq!(f4[0].params.policy, ConflictPolicy::CommutativityOnly);
        assert_eq!(f4[1].params.policy, ConflictPolicy::Recoverability);
        assert!(f4.iter().all(|s| s.params.fair_scheduling));
        assert!(f4
            .iter()
            .all(|s| s.params.resource_mode == ResourceMode::Infinite));

        let f8 = FigureId(8).series();
        assert!(f8.iter().all(|s| !s.params.fair_scheduling));

        let f10 = FigureId(10).series();
        assert!(f10
            .iter()
            .all(|s| s.params.resource_mode == ResourceMode::Finite { resource_units: 5 }));

        let f15 = FigureId(15).series();
        assert_eq!(f15.len(), 3);
        assert!(f15[2].label.contains("Pr=8"));
        match f15[2].params.data_model {
            DataModel::AbstractAdt { p_c, p_r, .. } => {
                assert_eq!(p_c, 2);
                assert_eq!(p_r, 8);
            }
            _ => panic!("ADT model expected"),
        }

        let f18 = FigureId(18).series();
        assert!(f18
            .iter()
            .all(|s| s.params.resource_mode == ResourceMode::Finite { resource_units: 1 }));
    }

    #[test]
    fn metric_extraction_and_suffixes() {
        use sbcc_sim::SimulationResult;
        let runs = vec![SimulationResult {
            completed: 10,
            full_commit_completions: 10,
            pseudo_commit_completions: 0,
            sim_time: 1.0,
            throughput: 10.0,
            response_time: 0.5,
            blocking_ratio: 0.1,
            restart_ratio: 0.2,
            cycle_check_ratio: 0.3,
            abort_length: 4.0,
            blocks: 1,
            restarts: 2,
            cycle_checks: 3,
            commit_dependencies: 4,
        }];
        let agg = AggregatedResult::from_runs(&runs);
        assert_eq!(Metric::Throughput.extract(&agg), 10.0);
        assert_eq!(Metric::ResponseTime.extract(&agg), 0.5);
        assert_eq!(Metric::BlockingRatio.extract(&agg), 0.1);
        assert_eq!(Metric::RestartRatio.extract(&agg), 0.2);
        assert_eq!(Metric::CycleCheckRatio.extract(&agg), 0.3);
        assert_eq!(Metric::AbortLength.extract(&agg), 4.0);
        for m in [
            Metric::Throughput,
            Metric::ResponseTime,
            Metric::BlockingRatio,
            Metric::RestartRatio,
            Metric::CycleCheckRatio,
            Metric::AbortLength,
        ] {
            assert!(!m.suffix().is_empty());
        }
    }

    #[test]
    fn tiny_figure_build_produces_rows_and_caches() {
        // A miniature scale so the test stays fast.
        let scale = Scale {
            completions: 150,
            runs: 1,
            mpl_levels: vec![5, 10],
        };
        let mut runner = FigureRunner::new(scale);
        // shrink the database/terminal count for speed
        let mut series = FigureId(4).series();
        for s in &mut series {
            s.params.db_size = 60;
            s.params.num_terminals = 20;
        }
        let table = runner.sweep(&series, &[Metric::Throughput]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 2);
        // second sweep over the same params hits the cache (same values)
        let table2 = runner.sweep(&series, &[Metric::Throughput]);
        assert_eq!(table, table2);
        assert_eq!(runner.scale().runs, 1);
    }

    #[test]
    fn scales() {
        assert_eq!(Scale::full().completions, 50_000);
        assert_eq!(Scale::full().runs, 10);
        assert_eq!(Scale::default_scale().runs, 3);
        assert!(Scale::quick().completions < Scale::default_scale().completions);
    }
}
