//! Tables I–X: the compatibility tables of the example data types and the
//! simulation parameter tables.

use sbcc_adt::{AdtSpec, Page, Set, Stack, TableObject};
use sbcc_sim::SimParams;

/// Render one of the paper's tables by number (1–10). Returns `None` for an
/// unknown table number.
pub fn render_table(number: usize) -> Option<String> {
    let text = match number {
        1 => format!("Table I — {}", Page::commutativity_table().render()),
        2 => format!("Table II — {}", Page::recoverability_table().render()),
        3 => format!("Table III — {}", Stack::commutativity_table().render()),
        4 => format!("Table IV — {}", Stack::recoverability_table().render()),
        5 => format!("Table V — {}", Set::commutativity_table().render()),
        6 => format!("Table VI — {}", Set::recoverability_table().render()),
        7 => format!("Table VII — {}", TableObject::commutativity_table().render()),
        8 => format!(
            "Table VIII — {}",
            TableObject::recoverability_table().render()
        ),
        9 => render_parameter_meanings(),
        10 => render_nominal_values(),
        _ => return None,
    };
    Some(text)
}

/// Table IX: the simulation parameters and their meanings.
pub fn render_parameter_meanings() -> String {
    let rows = [
        ("database_size", "Number of objects in the database"),
        ("num_of_terminals", "Number of terminals"),
        ("transaction_length", "Mean transaction length"),
        ("max_length", "Maximum number of operations in a transaction"),
        ("min_length", "Minimum number of operations in a transaction"),
        ("mpl_level", "Level of multiprogramming"),
        ("step_time", "Execution time of each operation"),
        ("cpu_time", "CPU time for accessing an object"),
        ("io_time", "I/O time for accessing an object"),
        ("resource_units", "Number of resource units"),
        ("ext_think_time", "Mean time between transactions"),
        ("write_probability", "Probability of a write operation"),
    ];
    let mut out = String::from("Table IX — Simulation parameters\n");
    for (name, meaning) in rows {
        out.push_str(&format!("  {name:<20} {meaning}\n"));
    }
    out
}

/// Table X: the nominal parameter values, taken from [`SimParams::default`].
pub fn render_nominal_values() -> String {
    let p = SimParams::default();
    let mut out = String::from("Table X — Parameters and their nominal values\n");
    out.push_str(&format!("  {:<20} {} objects\n", "database_size", p.db_size));
    out.push_str(&format!("  {:<20} {}\n", "num_of_terminals", p.num_terminals));
    out.push_str(&format!(
        "  {:<20} {} steps\n",
        "transaction_length",
        p.mean_length()
    ));
    out.push_str(&format!("  {:<20} {} steps\n", "min_length", p.min_length));
    out.push_str(&format!("  {:<20} {} steps\n", "max_length", p.max_length));
    out.push_str(&format!(
        "  {:<20} 10, 25, 50, 100, 150, 200\n",
        "mpl_level"
    ));
    out.push_str(&format!("  {:<20} {} seconds\n", "step_time", p.step_time));
    out.push_str(&format!("  {:<20} {} seconds\n", "cpu_time", p.cpu_time));
    out.push_str(&format!("  {:<20} {} seconds\n", "io_time", p.io_time));
    out.push_str(&format!(
        "  {:<20} {} second(s)\n",
        "ext_think_time", p.ext_think_time
    ));
    out.push_str(&format!("  {:<20} 0.3\n", "write_probability"));
    out
}

/// The multiprogramming levels the paper evaluates.
pub const PAPER_MPL_LEVELS: &[usize] = &[10, 25, 50, 100, 150, 200];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_tables_render() {
        for n in 1..=10 {
            let text = render_table(n).unwrap_or_else(|| panic!("table {n} missing"));
            assert!(!text.is_empty());
        }
        assert!(render_table(0).is_none());
        assert!(render_table(11).is_none());
    }

    #[test]
    fn compatibility_tables_mention_their_operations() {
        assert!(render_table(1).unwrap().contains("read"));
        assert!(render_table(3).unwrap().contains("push"));
        assert!(render_table(5).unwrap().contains("member"));
        assert!(render_table(8).unwrap().contains("size"));
    }

    #[test]
    fn table_iv_contains_the_push_push_yes_entry() {
        let t = render_table(4).unwrap();
        assert!(t.contains("push"));
        assert!(t.contains("Yes"));
        assert!(t.contains("No"));
    }

    #[test]
    fn parameter_tables_carry_the_nominal_values() {
        let ix = render_table(9).unwrap();
        assert!(ix.contains("mpl_level"));
        let x = render_table(10).unwrap();
        assert!(x.contains("1000 objects"));
        assert!(x.contains("200"));
        assert!(x.contains("0.05"));
        assert!(x.contains("0.3"));
        assert_eq!(PAPER_MPL_LEVELS.len(), 6);
    }
}
