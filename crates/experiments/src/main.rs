//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --table N            print Table N (1–10)
//! repro --figure N           reproduce Figure N (4–18)
//! repro --figures            reproduce every figure
//! repro --summary            recompute the Section 5.6 headline claims
//! repro --all                tables + figures + summary
//! repro --bench-kernel       measure kernel throughput, write BENCH_kernel.json
//! repro --serve              run the wire-protocol TCP server
//! repro --bench-net          closed-loop network benchmark (multi-process capable)
//! repro --dst                explore seeds in the deterministic-simulation harness
//! repro --dst-replay SEED    replay one seed, shrinking the schedule on failure
//! repro --dst-snapshots      add two snapshot/SSI sessions to the DST workload
//! repro --dst-declared       add two declared-batch sessions to the DST workload
//! repro --crash-workload     run the durable smoke workload (pair with kill -9)
//! repro --crash-recover      recover the workload's log and self-check the prefix
//!
//! scale options:
//!   --quick                  2 000 completions, 1 run, mpl ∈ {10,25,50,100}
//!   --full                   50 000 completions, 10 runs (the paper's scale)
//!   --runs R                 override the number of runs per point
//!   --completions C          override the completions per run
//!   --mpl a,b,c              override the multiprogramming levels
//!   --csv                    emit CSV instead of aligned text
//! ```

use sbcc_experiments::{bench_kernel, bench_net};
use sbcc_experiments::figures::{FigureId, FigureRunner, Scale};
use sbcc_experiments::summary::compute_summary;
use sbcc_experiments::tables::render_table;
use std::process::ExitCode;

#[derive(Debug, Default)]
struct Args {
    tables: Vec<usize>,
    figures: Vec<usize>,
    all_figures: bool,
    summary: bool,
    all: bool,
    quick: bool,
    full: bool,
    runs: Option<usize>,
    completions: Option<u64>,
    mpl: Option<Vec<usize>>,
    csv: bool,
    bench_kernel: bool,
    bench_out: Option<String>,
    serve: bool,
    bench_net: bool,
    addr: Option<String>,
    serve_for_ms: Option<u64>,
    conns: Option<usize>,
    duration_ms: Option<u64>,
    dst: bool,
    dst_seeds: u64,
    dst_seed_start: u64,
    dst_replay: Option<u64>,
    dst_snapshots: bool,
    dst_declared: bool,
    wal: Option<String>,
    crash_workload: bool,
    crash_recover: bool,
    wal_dir: Option<String>,
    linger_ms: Option<u64>,
    help: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {arg}"))
        };
        match arg {
            "--table" | "-t" => {
                let v = take_value(&mut i)?;
                args.tables
                    .push(v.parse().map_err(|_| format!("invalid table number {v:?}"))?);
            }
            "--figure" | "-f" => {
                let v = take_value(&mut i)?;
                args.figures
                    .push(v.parse().map_err(|_| format!("invalid figure number {v:?}"))?);
            }
            "--figures" => args.all_figures = true,
            "--summary" => args.summary = true,
            "--all" => args.all = true,
            "--bench-kernel" => args.bench_kernel = true,
            "--bench-out" => {
                args.bench_out = Some(take_value(&mut i)?);
            }
            "--serve" => args.serve = true,
            "--bench-net" => args.bench_net = true,
            "--addr" => {
                args.addr = Some(take_value(&mut i)?);
            }
            "--serve-for-ms" => {
                let v = take_value(&mut i)?;
                args.serve_for_ms =
                    Some(v.parse().map_err(|_| format!("invalid serve budget {v:?}"))?);
            }
            "--conns" => {
                let v = take_value(&mut i)?;
                args.conns =
                    Some(v.parse().map_err(|_| format!("invalid connection count {v:?}"))?);
            }
            "--duration-ms" => {
                let v = take_value(&mut i)?;
                args.duration_ms =
                    Some(v.parse().map_err(|_| format!("invalid duration {v:?}"))?);
            }
            "--dst" => args.dst = true,
            "--dst-snapshots" => args.dst_snapshots = true,
            "--dst-declared" => args.dst_declared = true,
            "--seeds" => {
                let v = take_value(&mut i)?;
                args.dst_seeds = v.parse().map_err(|_| format!("invalid seed count {v:?}"))?;
            }
            "--seed-start" => {
                let v = take_value(&mut i)?;
                args.dst_seed_start =
                    v.parse().map_err(|_| format!("invalid start seed {v:?}"))?;
            }
            "--dst-replay" => {
                let v = take_value(&mut i)?;
                args.dst_replay =
                    Some(v.parse().map_err(|_| format!("invalid replay seed {v:?}"))?);
            }
            "--wal" => {
                args.wal = Some(take_value(&mut i)?);
            }
            "--crash-workload" => args.crash_workload = true,
            "--crash-recover" => args.crash_recover = true,
            "--wal-dir" => {
                args.wal_dir = Some(take_value(&mut i)?);
            }
            "--linger-ms" => {
                let v = take_value(&mut i)?;
                args.linger_ms =
                    Some(v.parse().map_err(|_| format!("invalid linger budget {v:?}"))?);
            }
            "--quick" => args.quick = true,
            "--full" => args.full = true,
            "--csv" => args.csv = true,
            "--runs" => {
                let v = take_value(&mut i)?;
                args.runs = Some(v.parse().map_err(|_| format!("invalid run count {v:?}"))?);
            }
            "--completions" => {
                let v = take_value(&mut i)?;
                args.completions =
                    Some(v.parse().map_err(|_| format!("invalid completion count {v:?}"))?);
            }
            "--mpl" => {
                let v = take_value(&mut i)?;
                let levels: Result<Vec<usize>, _> = v.split(',').map(|s| s.trim().parse()).collect();
                args.mpl = Some(levels.map_err(|_| format!("invalid mpl list {v:?}"))?);
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    Ok(args)
}

fn usage() -> &'static str {
    "repro — reproduce the tables and figures of \"Semantics-Based Concurrency Control: Beyond Commutativity\"\n\
     \n\
     usage:\n\
       repro --table N [--table M ...]      print Table N (1-10)\n\
       repro --figure N [--figure M ...]    reproduce Figure N (4-18)\n\
       repro --figures                      reproduce every figure\n\
       repro --summary                      recompute the Section 5.6 claims\n\
       repro --all                          tables + figures + summary\n\
       repro --bench-kernel                 measure kernel throughput, write BENCH_kernel.json\n\
         [--bench-out PATH]                 override the output path\n\
       repro --serve                        run the wire-protocol TCP server over a fresh\n\
         [--addr A]                         database; bind A (default 127.0.0.1:0; the\n\
         [--serve-for-ms N]                 chosen port is printed), exit after N ms\n\
         [--wal DIR]                        write-ahead log to DIR (recover on start; or\n\
                                            set SBCC_WAL=DIR / SBCC_WAL_FSYNC=policy)\n\
       repro --crash-workload --wal-dir D   run the fixed 40-txn durable workload against\n\
         [--linger-ms N]                    D, print `workload-done`, linger N ms (default\n\
                                            forever) for a kill -9 driver\n\
       repro --crash-recover --wal-dir D    recover D and self-check the surviving state\n\
                                            against the workload prefix; prints\n\
                                            `recovered prefix=N/40`\n\
       repro --bench-net                    closed-loop network benchmark: clients commit\n\
         [--addr A]                         increment bursts over real sockets; target a\n\
         [--conns N]                        `repro --serve` at A or an in-process server,\n\
         [--duration-ms D]                  N connections (4) for D ms (2000)\n\
       repro --dst                          explore seeds in the deterministic-simulation\n\
         [--seeds N]                        harness (default 1000 seeds; prints failing\n\
         [--seed-start S]                   seeds and their repro commands)\n\
       repro --dst-replay SEED              replay one seed; on failure, shrink the\n\
                                            schedule and print the minimized trace\n\
       repro --dst-snapshots                add two snapshot/SSI sessions to the workload\n\
       repro --dst-declared                 add two declared-batch sessions (group\n\
                                            admission with seeded under-declarations)\n\
         (all need a build with --features dst)\n\
     \n\
     scale options:\n\
       --quick             2000 completions, 1 run, mpl in {10,25,50,100}\n\
       --full              50000 completions, 10 runs per point (paper scale)\n\
       --runs R            override runs per point\n\
       --completions C     override completions per run\n\
       --mpl a,b,c         override the multiprogramming levels\n\
       --csv               emit CSV instead of aligned text\n"
}

fn scale_from(args: &Args) -> Scale {
    let mut scale = if args.quick {
        Scale::quick()
    } else if args.full {
        Scale::full()
    } else {
        Scale::default_scale()
    };
    if let Some(runs) = args.runs {
        scale.runs = runs.max(1);
    }
    if let Some(completions) = args.completions {
        scale.completions = completions.max(1);
    }
    if let Some(mpl) = &args.mpl {
        if !mpl.is_empty() {
            scale.mpl_levels = mpl.clone();
        }
    }
    scale
}

/// The deterministic-simulation explorer. Exploration failures and
/// replay failures exit nonzero so CI legs fail loudly, printing each
/// failing seed plus its one-line repro command into the job log.
#[cfg(feature = "dst")]
fn run_dst(args: &Args) -> Result<(), ExitCode> {
    use sbcc_dst::{explore, run_seed, shrink_failure, DstConfig};

    let cfg = DstConfig {
        snapshot_sessions: if args.dst_snapshots { 2 } else { 0 },
        declared_sessions: if args.dst_declared { 2 } else { 0 },
        ..DstConfig::default()
    };
    if let Some(seed) = args.dst_replay {
        eprintln!("# replaying DST seed {seed}");
        let report = run_seed(seed, &cfg);
        println!(
            "seed={seed} verdict={} steps={} commits={} shards={}",
            report.verdict, report.steps, report.commits, report.shard_count
        );
        if report.failed() {
            eprintln!("# shrinking the failing schedule ({} decisions)", report.decisions.len());
            let shrunk = shrink_failure(&report, &cfg, 400);
            println!(
                "shrunk: {} of {} decisions, verdict={}",
                shrunk.decisions.len(),
                report.decisions.len(),
                shrunk.verdict
            );
            println!("--- minimized yield/fault trace ---");
            print!("{}", shrunk.trace);
            println!("--- repro: {} ---", report.repro_command());
            return Err(ExitCode::FAILURE);
        }
        print!("{}", report.trace);
    }
    if args.dst {
        let count = if args.dst_seeds == 0 { 1000 } else { args.dst_seeds };
        let start = args.dst_seed_start;
        eprintln!("# exploring DST seeds {start}..{}", start + count);
        let mut done: u64 = 0;
        let summary = explore(start, count, &cfg, |r| {
            done += 1;
            if r.failed() {
                eprintln!("FAILING SEED {}: {} ({})", r.seed, r.verdict, r.repro_command());
            } else if done % 500 == 0 {
                eprintln!("# {done}/{count} seeds, all passing so far");
            }
        });
        println!(
            "explored {} seeds: {} failing, {} total virtual steps",
            summary.runs,
            summary.failures.len(),
            summary.total_steps
        );
        if !summary.failures.is_empty() {
            for f in &summary.failures {
                println!("  seed {}: {}  # {}", f.seed, f.verdict, f.repro_command());
            }
            return Err(ExitCode::FAILURE);
        }
    }
    Ok(())
}

/// `repro --serve`: run the wire-protocol server over a fresh database,
/// forever or for `--serve-for-ms`. The bound address goes to stdout
/// first (and is flushed) so a driving process can scrape the port. A
/// bounded run exits nonzero if shutdown finds leaked connections or
/// sessions — the CI smoke leg's zero-leak assertion.
fn run_serve(args: &Args) -> ExitCode {
    use sbcc_core::aio::AsyncDatabase;
    use sbcc_net::{Server, ServerConfig};
    use std::io::Write;

    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned());
    // `--wal DIR` layers durability under the served database (recovery
    // runs before the listener binds); without the flag the SBCC_WAL /
    // SBCC_WAL_FSYNC environment variables apply via DatabaseConfig::new.
    let mut config = sbcc_core::DatabaseConfig::new(sbcc_core::SchedulerConfig::default());
    if let Some(dir) = &args.wal {
        config = config.with_wal(sbcc_core::WalConfig::new(dir));
    }
    let server = match Server::start(
        AsyncDatabase::with_config(config),
        ServerConfig::default().with_addr(addr),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind server: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match args.serve_for_ms {
        Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    let stats = server.shutdown();
    eprintln!("# {}", stats.summary());
    if stats.connections_open != 0 || stats.transactions_in_flight != 0 {
        eprintln!("error: shutdown leaked sessions or connections");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `repro --crash-workload`: the kill-9 half of the crash-recovery
/// smoke. Runs the fixed durable workload, prints `workload-done`, then
/// lingers (default: forever) so the driving process chooses the crash
/// point — mid-run or after completion.
fn run_crash_workload(args: &Args) -> ExitCode {
    let Some(dir) = &args.wal_dir else {
        eprintln!("error: --crash-workload needs --wal-dir DIR");
        return ExitCode::FAILURE;
    };
    sbcc_experiments::crash::run_workload(std::path::Path::new(dir));
    match args.linger_ms {
        Some(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    ExitCode::SUCCESS
}

/// `repro --crash-recover`: reopen the workload's log directory and
/// self-check that exactly a prefix of the sequence survived.
fn run_crash_recover(args: &Args) -> ExitCode {
    let Some(dir) = &args.wal_dir else {
        eprintln!("error: --crash-recover needs --wal-dir DIR");
        return ExitCode::FAILURE;
    };
    match sbcc_experiments::crash::run_recover(std::path::Path::new(dir)) {
        Ok(prefix) => {
            println!(
                "recovered prefix={prefix}/{}",
                sbcc_experiments::crash::CRASH_WORKLOAD_TXNS
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro --bench-net`: the closed-loop client side. With `--addr` it
/// drives a separately launched `repro --serve` (multi-process); without
/// it, an in-process server.
fn run_bench_net(args: &Args) -> ExitCode {
    use sbcc_core::aio::AsyncDatabase;
    use sbcc_net::{Server, ServerConfig};
    use std::net::ToSocketAddrs;

    let conns = args.conns.unwrap_or(4).max(1);
    let budget = std::time::Duration::from_millis(args.duration_ms.unwrap_or(2000));
    let ops_per_txn = 6;
    let report = match &args.addr {
        Some(addr) => {
            let target = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
                Some(t) => t,
                None => {
                    eprintln!("error: cannot resolve {addr:?}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("# driving {conns} closed-loop conns against {target} for {budget:?}");
            bench_net::closed_loop_timed(target, conns, ops_per_txn, budget)
        }
        None => {
            eprintln!("# driving {conns} closed-loop conns against an in-process server for {budget:?}");
            let server = match Server::start(
                AsyncDatabase::new(sbcc_core::SchedulerConfig::default()),
                ServerConfig::default(),
            ) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot bind in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report =
                bench_net::closed_loop_timed(server.local_addr(), conns, ops_per_txn, budget);
            let stats = server.shutdown();
            eprintln!("# {}", stats.summary());
            if stats.connections_open != 0 || stats.transactions_in_flight != 0 {
                eprintln!("error: bench leaked sessions or connections");
                return ExitCode::FAILURE;
            }
            report
        }
    };
    println!("{}", report.render_text());
    if report.txns_committed == 0 {
        eprintln!("error: the closed loop committed nothing");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(not(feature = "dst"))]
fn run_dst(_args: &Args) -> Result<(), ExitCode> {
    eprintln!(
        "error: this repro binary was built without the deterministic-simulation harness;\n\
         rebuild with `cargo run --release -p sbcc-experiments --features dst -- ...`"
    );
    Err(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    if args.help
        || (args.tables.is_empty()
            && args.figures.is_empty()
            && !args.all_figures
            && !args.summary
            && !args.bench_kernel
            && !args.serve
            && !args.bench_net
            && !args.dst
            && args.dst_replay.is_none()
            && !args.crash_workload
            && !args.crash_recover
            && !args.all)
    {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }

    if args.crash_workload {
        return run_crash_workload(&args);
    }
    if args.crash_recover {
        return run_crash_recover(&args);
    }
    if args.serve {
        return run_serve(&args);
    }
    if args.bench_net {
        return run_bench_net(&args);
    }

    if args.dst || args.dst_replay.is_some() {
        match run_dst(&args) {
            Ok(()) => {}
            Err(code) => return code,
        }
    }

    if args.bench_kernel {
        let out_path = args.bench_out.clone().unwrap_or_else(|| "BENCH_kernel.json".to_owned());
        eprintln!(
            "# measuring kernel throughput ({} mode)",
            if args.quick { "quick" } else { "standard" }
        );
        let results = bench_kernel::run_all(args.quick);
        for r in &results {
            println!("{:<44} {:>14.1} ops/s  ({} ops in {:.2}s)", r.name, r.ops_per_sec, r.ops, r.elapsed_secs);
        }
        let json = bench_kernel::to_json(&results);
        if let Err(e) = std::fs::write(&out_path, json) {
            eprintln!("error: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("# wrote {out_path}");
    }

    // Tables.
    let mut tables = args.tables.clone();
    if args.all {
        tables = (1..=10).collect();
    }
    for n in tables {
        match render_table(n) {
            Some(text) => println!("{text}"),
            None => {
                eprintln!("error: no such table {n} (valid: 1-10)");
                return ExitCode::FAILURE;
            }
        }
    }

    // Figures and summary share a memoising runner.
    let wants_figures = args.all || args.all_figures || !args.figures.is_empty();
    let wants_summary = args.all || args.summary;
    if !wants_figures && !wants_summary {
        return ExitCode::SUCCESS;
    }
    let scale = scale_from(&args);
    eprintln!(
        "# scale: {} completions x {} run(s) per point, mpl levels {:?}",
        scale.completions, scale.runs, scale.mpl_levels
    );
    let mut runner = FigureRunner::new(scale);

    let figure_ids: Vec<FigureId> = if args.all || args.all_figures {
        FigureId::all()
    } else {
        let mut ids = Vec::new();
        for n in &args.figures {
            match FigureId::from_number(*n) {
                Some(id) => ids.push(id),
                None => {
                    eprintln!("error: no such figure {n} (valid: 4-18)");
                    return ExitCode::FAILURE;
                }
            }
        }
        ids
    };

    for id in figure_ids {
        eprintln!("# running {}", id.title());
        let figure = id.build(&mut runner);
        if args.csv {
            println!("{}", figure.render_csv());
        } else {
            println!("{}\n", figure.render_text());
        }
    }

    if wants_summary {
        eprintln!("# computing the Section 5.6 summary claims");
        let summary = compute_summary(&mut runner);
        println!("{}", summary.render_text());
    }

    ExitCode::SUCCESS
}
