//! # sbcc-experiments — reproducing the paper's tables and figures
//!
//! The `repro` binary regenerates every table (I–X) and figure (4–18) of
//! *Semantics-Based Concurrency Control: Beyond Commutativity*. This library
//! part holds the machinery so it can be unit-tested and reused by the
//! benchmark crate:
//!
//! * [`tables`] — renders the compatibility tables (Tables I–VIII) straight
//!   from the data-type definitions and the parameter tables (IX and X) from
//!   [`sbcc_sim::SimParams`];
//! * [`figures`] — runs the simulation sweeps behind Figures 4–18 and
//!   formats them as the series the paper plots;
//! * [`summary`] — recomputes the Section 5.6 headline claims (peak
//!   throughput improvements, thrashing onset, ratio orderings);
//! * [`bench_kernel`] — deterministic kernel-throughput workloads dumped to
//!   `BENCH_kernel.json` so successive PRs have a perf trajectory;
//! * [`bench_net`] — the closed-loop network benchmark behind
//!   `repro --serve` / `repro --bench-net` and the `net_closedloop_*`
//!   kernel-bench entries;
//! * [`crash`] — the crash-recovery smoke workload behind
//!   `repro --crash-workload` / `repro --crash-recover`: a fixed
//!   transaction sequence against a write-ahead-logged database, plus
//!   the recover-side prefix self-check a `kill -9` driver asserts on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_kernel;
pub mod bench_net;
pub mod crash;
pub mod figures;
pub mod output;
pub mod summary;
pub mod tables;

pub use bench_kernel::{run_all as run_kernel_bench, BenchResult};
pub use figures::{Figure, FigureId, Scale, SeriesSpec};
pub use output::{format_table, SeriesTable};
