//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! A frame is `u32` little-endian body length followed by the body; a
//! body is `u64` little-endian **request id**, one opcode byte, then the
//! opcode's payload. Request ids are chosen by the client and echoed on
//! the matching response, so a client may pipeline any number of requests
//! and match responses out of order (operations that block in the kernel
//! respond late; a [`Request::Ping`] fence responds immediately).
//!
//! | Opcode | Request | Payload |
//! |---|---|---|
//! | `0x01` | [`Request::Hello`] | protocol version `u32`, tenant string |
//! | `0x02` | [`Request::Register`] | object name string, [`AdtType`] byte |
//! | `0x03` | [`Request::Begin`] | — |
//! | `0x04` | [`Request::Exec`] | txn `u64`, object name string, [`OpCall`] |
//! | `0x05` | [`Request::ExecBatch`] | txn `u64`, `u32` count × (name, call) |
//! | `0x06` | [`Request::Commit`] | txn `u64` |
//! | `0x07` | [`Request::Abort`] | txn `u64` |
//! | `0x08` | [`Request::Ping`] | — |
//! | `0x09` | [`Request::BeginSnapshot`] | — |
//! | `0x0A` | [`Request::ExecBatchDeclared`] | txn `u64`, `u32` count × (name, call), `u32` count × read name, `u32` count × write name |
//!
//! | Opcode | Response | Payload |
//! |---|---|---|
//! | `0x81` | [`Response::HelloAck`] | protocol version `u32` |
//! | `0x82` | [`Response::Registered`] | — |
//! | `0x83` | [`Response::Begun`] | txn `u64` |
//! | `0x84` | [`Response::Result`] | [`OpResult`] |
//! | `0x85` | [`Response::Results`] | `u32` count × [`OpResult`] |
//! | `0x86` | [`Response::Committed`] | pseudo-commit flag byte |
//! | `0x87` | [`Response::Aborted`] | — |
//! | `0x88` | [`Response::Pong`] | — |
//! | `0xEE` | [`Response::Error`] | [`ErrorCode`] byte, detail string |
//!
//! Strings are `u32` length + UTF-8 bytes. [`Value`]s are a tag byte
//! (null / bool / int / str) + payload; [`OpCall`] is `u32` op kind +
//! `u32` param count + params; [`OpResult`] mirrors its five variants.
//!
//! Everything here is pure encoding — no sockets. [`FrameBuffer`] is the
//! incremental reassembler both the server's reader threads and the
//! client use: feed it arbitrary byte chunks, take out whole frame
//! bodies.

use sbcc_adt::{
    AdtObject, Counter, FifoQueue, OpCall, OpResult, Page, SemanticObject, Set, Stack,
    TableObject, Value,
};
use std::fmt;

/// Protocol version spoken by this crate; [`Request::Hello`] carries the
/// client's version and the server refuses a mismatch.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on a frame *body* length. A peer announcing a longer
/// frame is refused with [`ProtoError::Oversized`] before any payload is
/// buffered, so a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Decoding failure. The server answers with an
/// [`ErrorCode::Protocol`] error frame and closes the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Body ended before the payload its opcode requires.
    Truncated,
    /// Announced frame length exceeds the configured cap.
    Oversized {
        /// Announced body length.
        len: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// Unknown tag byte inside a payload (value, result, ADT type, or
    /// error code); the `&str` names which table was being consulted.
    UnknownTag(&'static str, u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Payload bytes left over after a complete decode.
    TrailingBytes,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame body"),
            ProtoError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes (cap {max})")
            }
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::UnknownTag(what, tag) => write!(f, "unknown {what} tag 0x{tag:02x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// The ADT a [`Request::Register`] instantiates server-side. Tags are
/// part of the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdtType {
    /// [`sbcc_adt::Counter`].
    Counter,
    /// [`sbcc_adt::Page`].
    Page,
    /// [`sbcc_adt::FifoQueue`].
    FifoQueue,
    /// [`sbcc_adt::Set`].
    Set,
    /// [`sbcc_adt::Stack`].
    Stack,
    /// [`sbcc_adt::TableObject`].
    Table,
}

impl AdtType {
    fn to_u8(self) -> u8 {
        match self {
            AdtType::Counter => 1,
            AdtType::Page => 2,
            AdtType::FifoQueue => 3,
            AdtType::Set => 4,
            AdtType::Stack => 5,
            AdtType::Table => 6,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, ProtoError> {
        Ok(match tag {
            1 => AdtType::Counter,
            2 => AdtType::Page,
            3 => AdtType::FifoQueue,
            4 => AdtType::Set,
            5 => AdtType::Stack,
            6 => AdtType::Table,
            other => return Err(ProtoError::UnknownTag("adt type", other)),
        })
    }

    /// A fresh erased instance of the ADT, ready for
    /// `Database::register_object`.
    pub fn instantiate(self) -> Box<dyn SemanticObject> {
        match self {
            AdtType::Counter => Box::new(AdtObject::new(Counter::new())),
            AdtType::Page => Box::new(AdtObject::new(Page::new())),
            AdtType::FifoQueue => Box::new(AdtObject::new(FifoQueue::new())),
            AdtType::Set => Box::new(AdtObject::new(Set::new())),
            AdtType::Stack => Box::new(AdtObject::new(Stack::new())),
            AdtType::Table => Box::new(AdtObject::new(TableObject::new())),
        }
    }
}

/// Error category carried by a [`Response::Error`] frame. Codes `1..=7`
/// mirror [`sbcc_core::CoreError`] variants one-to-one (the detail
/// string is the kernel error's `Display`); codes `32+` are the
/// server's own refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Wire transaction id not live on this connection.
    UnknownTransaction,
    /// Object name not registered under the connection's tenant.
    UnknownObject,
    /// Operation invalid in the transaction's current state.
    InvalidState,
    /// The transaction aborted (scheduler refusal or cascade).
    Aborted,
    /// Registration race against a name the server does not manage.
    DuplicateObject,
    /// `settle` with no pending operation (not reachable over the wire).
    NoPendingOperation,
    /// The server-side retry budget was exhausted.
    RetriesExhausted,
    /// A durability (write-ahead log) refusal — e.g. registering an
    /// object the recovery factory cannot reconstruct on a WAL-backed
    /// server.
    Durability,
    /// Admission control shed the request (per-connection in-flight
    /// transaction cap reached). Back off and retry.
    Busy,
    /// Malformed frame, version mismatch, or a request out of protocol
    /// order; the server closes the connection after sending this.
    Protocol,
    /// A request other than [`Request::Hello`] arrived before the
    /// connection announced its tenant.
    TenantRequired,
    /// The server is shutting down.
    Shutdown,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::UnknownTransaction => 1,
            ErrorCode::UnknownObject => 2,
            ErrorCode::InvalidState => 3,
            ErrorCode::Aborted => 4,
            ErrorCode::DuplicateObject => 5,
            ErrorCode::NoPendingOperation => 6,
            ErrorCode::RetriesExhausted => 7,
            ErrorCode::Durability => 8,
            ErrorCode::Busy => 32,
            ErrorCode::Protocol => 33,
            ErrorCode::TenantRequired => 34,
            ErrorCode::Shutdown => 35,
        }
    }

    fn from_u8(tag: u8) -> Result<Self, ProtoError> {
        Ok(match tag {
            1 => ErrorCode::UnknownTransaction,
            2 => ErrorCode::UnknownObject,
            3 => ErrorCode::InvalidState,
            4 => ErrorCode::Aborted,
            5 => ErrorCode::DuplicateObject,
            6 => ErrorCode::NoPendingOperation,
            7 => ErrorCode::RetriesExhausted,
            8 => ErrorCode::Durability,
            32 => ErrorCode::Busy,
            33 => ErrorCode::Protocol,
            34 => ErrorCode::TenantRequired,
            35 => ErrorCode::Shutdown,
            other => return Err(ProtoError::UnknownTag("error code", other)),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnknownTransaction => "unknown-transaction",
            ErrorCode::UnknownObject => "unknown-object",
            ErrorCode::InvalidState => "invalid-state",
            ErrorCode::Aborted => "aborted",
            ErrorCode::DuplicateObject => "duplicate-object",
            ErrorCode::NoPendingOperation => "no-pending-operation",
            ErrorCode::RetriesExhausted => "retries-exhausted",
            ErrorCode::Durability => "durability",
            ErrorCode::Busy => "busy",
            ErrorCode::Protocol => "protocol",
            ErrorCode::TenantRequired => "tenant-required",
            ErrorCode::Shutdown => "shutdown",
        };
        f.write_str(name)
    }
}

/// A client-to-server message (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Mandatory first request: protocol version + tenant namespace.
    /// Every object name on this connection is qualified as
    /// `tenant/name`.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        version: u32,
        /// Tenant namespace for all object names on this connection.
        tenant: String,
    },
    /// Ensure `name` exists under the tenant as an `adt` instance
    /// (idempotent: re-registering an existing name succeeds).
    Register {
        /// Unqualified object name.
        name: String,
        /// ADT to instantiate on first registration.
        adt: AdtType,
    },
    /// Begin a transaction; answered with its wire id.
    Begin,
    /// Execute one operation inside transaction `txn`.
    Exec {
        /// Wire transaction id from [`Response::Begun`].
        txn: u64,
        /// Unqualified object name.
        object: String,
        /// The operation.
        call: OpCall,
    },
    /// Execute a sequence of operations inside `txn`; answered with all
    /// results at once, or the first failure.
    ExecBatch {
        /// Wire transaction id.
        txn: u64,
        /// `(object, call)` pairs, executed in order.
        ops: Vec<(String, OpCall)>,
    },
    /// Commit `txn`.
    Commit {
        /// Wire transaction id.
        txn: u64,
    },
    /// Abort `txn`.
    Abort {
        /// Wire transaction id.
        txn: u64,
    },
    /// Fence: answered immediately and in order by the connection's
    /// router, regardless of operations still blocked in the kernel.
    Ping,
    /// Begin a snapshot transaction: reads observe the committed state
    /// as of the begin stamp without blocking, guarded by SSI
    /// rw-antidependency tracking. Answered with [`Response::Begun`].
    BeginSnapshot,
    /// Execute a batch like [`Request::ExecBatch`], but with the batch's
    /// read/write object footprint declared up front. When every
    /// declared object is quiescent the server admits the whole batch in
    /// one pass with zero per-op classification; a declaration that
    /// fails to cover an op falls back to the classified path (or aborts
    /// the transaction, per the server's undeclared-access policy).
    /// Answered with [`Response::Results`].
    ExecBatchDeclared {
        /// Wire transaction id.
        txn: u64,
        /// `(object, call)` pairs, executed in order.
        ops: Vec<(String, OpCall)>,
        /// Unqualified names the batch promises to only read.
        reads: Vec<String>,
        /// Unqualified names the batch may write.
        writes: Vec<String>,
    },
}

/// A server-to-client message (see the module docs for the wire layout).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Hello accepted; carries the server's protocol version.
    HelloAck {
        /// Server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// The object exists (created now or previously).
    Registered,
    /// Transaction began.
    Begun {
        /// Wire id to use in subsequent [`Request::Exec`] / fate calls.
        txn: u64,
    },
    /// One operation's result.
    Result(OpResult),
    /// All of a batch's results.
    Results(Vec<OpResult>),
    /// Commit succeeded.
    Committed {
        /// `true` if the transaction pseudo-committed (complete and
        /// guaranteed to commit, waiting on its commit dependencies).
        pseudo: bool,
    },
    /// Abort succeeded.
    Aborted,
    /// [`Request::Ping`] echo.
    Pong,
    /// The request failed; mirrors scheduler errors by code + detail.
    Error {
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail (kernel errors: their `Display`).
        detail: String,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn put_call(out: &mut Vec<u8>, call: &OpCall) {
    put_u32(out, call.kind as u32);
    put_u32(out, call.params.len() as u32);
    for p in &call.params {
        put_value(out, p);
    }
}

fn put_result(out: &mut Vec<u8>, r: &OpResult) {
    match r {
        OpResult::Ok => out.push(0),
        OpResult::Success => out.push(1),
        OpResult::Failure => out.push(2),
        OpResult::Value(v) => {
            out.push(3);
            put_value(out, v);
        }
        OpResult::Null => out.push(4),
    }
}

/// Wrap an encoded body (request id + opcode + payload already in
/// `body`) into a full frame with its length prefix.
fn finish_frame(body: Vec<u8>) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + body.len());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

impl Request {
    /// Encode as one full frame (length prefix included) carrying
    /// request id `id`.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, id);
        match self {
            Request::Hello { version, tenant } => {
                b.push(0x01);
                put_u32(&mut b, *version);
                put_str(&mut b, tenant);
            }
            Request::Register { name, adt } => {
                b.push(0x02);
                put_str(&mut b, name);
                b.push(adt.to_u8());
            }
            Request::Begin => b.push(0x03),
            Request::Exec { txn, object, call } => {
                b.push(0x04);
                put_u64(&mut b, *txn);
                put_str(&mut b, object);
                put_call(&mut b, call);
            }
            Request::ExecBatch { txn, ops } => {
                b.push(0x05);
                put_u64(&mut b, *txn);
                put_u32(&mut b, ops.len() as u32);
                for (object, call) in ops {
                    put_str(&mut b, object);
                    put_call(&mut b, call);
                }
            }
            Request::Commit { txn } => {
                b.push(0x06);
                put_u64(&mut b, *txn);
            }
            Request::Abort { txn } => {
                b.push(0x07);
                put_u64(&mut b, *txn);
            }
            Request::Ping => b.push(0x08),
            Request::BeginSnapshot => b.push(0x09),
            Request::ExecBatchDeclared {
                txn,
                ops,
                reads,
                writes,
            } => {
                b.push(0x0A);
                put_u64(&mut b, *txn);
                put_u32(&mut b, ops.len() as u32);
                for (object, call) in ops {
                    put_str(&mut b, object);
                    put_call(&mut b, call);
                }
                for names in [reads, writes] {
                    put_u32(&mut b, names.len() as u32);
                    for name in names {
                        put_str(&mut b, name);
                    }
                }
            }
        }
        finish_frame(b)
    }
}

impl Response {
    /// Encode as one full frame (length prefix included) echoing request
    /// id `id`.
    pub fn encode(&self, id: u64) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, id);
        match self {
            Response::HelloAck { version } => {
                b.push(0x81);
                put_u32(&mut b, *version);
            }
            Response::Registered => b.push(0x82),
            Response::Begun { txn } => {
                b.push(0x83);
                put_u64(&mut b, *txn);
            }
            Response::Result(r) => {
                b.push(0x84);
                put_result(&mut b, r);
            }
            Response::Results(rs) => {
                b.push(0x85);
                put_u32(&mut b, rs.len() as u32);
                for r in rs {
                    put_result(&mut b, r);
                }
            }
            Response::Committed { pseudo } => {
                b.push(0x86);
                b.push(u8::from(*pseudo));
            }
            Response::Aborted => b.push(0x87),
            Response::Pong => b.push(0x88),
            Response::Error { code, detail } => {
                b.push(0xEE);
                b.push(code.to_u8());
                put_str(&mut b, detail);
            }
        }
        finish_frame(b)
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, ProtoError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Str(self.string()?),
            other => return Err(ProtoError::UnknownTag("value", other)),
        })
    }

    fn call(&mut self) -> Result<OpCall, ProtoError> {
        let kind = self.u32()? as usize;
        let count = self.u32()? as usize;
        // Cap the pre-allocation by what the buffer could possibly hold
        // (1 byte per value minimum) so a lying count cannot balloon.
        let mut params = Vec::with_capacity(count.min(self.buf.len() - self.pos));
        for _ in 0..count {
            params.push(self.value()?);
        }
        Ok(OpCall { kind, params })
    }

    fn result(&mut self) -> Result<OpResult, ProtoError> {
        Ok(match self.u8()? {
            0 => OpResult::Ok,
            1 => OpResult::Success,
            2 => OpResult::Failure,
            3 => OpResult::Value(self.value()?),
            4 => OpResult::Null,
            other => return Err(ProtoError::UnknownTag("op result", other)),
        })
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

impl Request {
    /// Decode a frame body (length prefix already stripped) into the
    /// request id and request.
    pub fn decode(body: &[u8]) -> Result<(u64, Request), ProtoError> {
        let mut r = Reader::new(body);
        let id = r.u64()?;
        let req = match r.u8()? {
            0x01 => Request::Hello {
                version: r.u32()?,
                tenant: r.string()?,
            },
            0x02 => Request::Register {
                name: r.string()?,
                adt: AdtType::from_u8(r.u8()?)?,
            },
            0x03 => Request::Begin,
            0x04 => Request::Exec {
                txn: r.u64()?,
                object: r.string()?,
                call: r.call()?,
            },
            0x05 => {
                let txn = r.u64()?;
                let count = r.u32()? as usize;
                let mut ops = Vec::with_capacity(count.min(body.len()));
                for _ in 0..count {
                    let object = r.string()?;
                    let call = r.call()?;
                    ops.push((object, call));
                }
                Request::ExecBatch { txn, ops }
            }
            0x06 => Request::Commit { txn: r.u64()? },
            0x07 => Request::Abort { txn: r.u64()? },
            0x08 => Request::Ping,
            0x09 => Request::BeginSnapshot,
            0x0A => {
                let txn = r.u64()?;
                let count = r.u32()? as usize;
                let mut ops = Vec::with_capacity(count.min(body.len()));
                for _ in 0..count {
                    let object = r.string()?;
                    let call = r.call()?;
                    ops.push((object, call));
                }
                let mut sets = [Vec::new(), Vec::new()];
                for set in &mut sets {
                    let count = r.u32()? as usize;
                    set.reserve(count.min(body.len()));
                    for _ in 0..count {
                        set.push(r.string()?);
                    }
                }
                let [reads, writes] = sets;
                Request::ExecBatchDeclared {
                    txn,
                    ops,
                    reads,
                    writes,
                }
            }
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok((id, req))
    }
}

impl Response {
    /// Decode a frame body (length prefix already stripped) into the
    /// echoed request id and response.
    pub fn decode(body: &[u8]) -> Result<(u64, Response), ProtoError> {
        let mut r = Reader::new(body);
        let id = r.u64()?;
        let resp = match r.u8()? {
            0x81 => Response::HelloAck { version: r.u32()? },
            0x82 => Response::Registered,
            0x83 => Response::Begun { txn: r.u64()? },
            0x84 => Response::Result(r.result()?),
            0x85 => {
                let count = r.u32()? as usize;
                let mut rs = Vec::with_capacity(count.min(body.len()));
                for _ in 0..count {
                    rs.push(r.result()?);
                }
                Response::Results(rs)
            }
            0x86 => Response::Committed {
                pseudo: r.u8()? != 0,
            },
            0x87 => Response::Aborted,
            0x88 => Response::Pong,
            0xEE => Response::Error {
                code: ErrorCode::from_u8(r.u8()?)?,
                detail: r.string()?,
            },
            other => return Err(ProtoError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok((id, resp))
    }
}

// ---------------------------------------------------------------------
// Frame reassembly
// ---------------------------------------------------------------------

/// Incremental frame reassembler: feed it byte chunks as they arrive
/// ([`FrameBuffer::extend`]), take out complete frame *bodies*
/// ([`FrameBuffer::next_frame`]). Handles frames split across reads and
/// multiple frames per read; refuses oversized length prefixes before
/// buffering their payload.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes already consumed from the front of `buf`; compacted lazily
    /// so a burst of small frames does not memmove per frame.
    consumed: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Take the next complete frame body, if one has fully arrived.
    ///
    /// `Ok(None)` means "need more bytes". [`ProtoError::Oversized`] is
    /// fatal for the stream: framing cannot resynchronise past a refused
    /// length prefix.
    pub fn next_frame(&mut self, max_len: usize) -> Result<Option<Vec<u8>>, ProtoError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().unwrap()) as usize;
        if len > max_len {
            return Err(ProtoError::Oversized { len, max: max_len });
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let body = pending[4..4 + len].to_vec();
        self.consumed += 4 + len;
        // Compact once the dead prefix dominates the buffer.
        if self.consumed > 4096 && self.consumed * 2 > self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_adt::{AdtOp, CounterOp, StackOp};

    fn roundtrip_request(req: Request) {
        let frame = req.encode(77);
        let (len, body) = frame.split_at(4);
        assert_eq!(
            u32::from_le_bytes(len.try_into().unwrap()) as usize,
            body.len()
        );
        let (id, decoded) = Request::decode(body).unwrap();
        assert_eq!(id, 77);
        assert_eq!(decoded, req);
    }

    fn roundtrip_response(resp: Response) {
        let frame = resp.encode(u64::MAX);
        let (id, decoded) = Response::decode(&frame[4..]).unwrap();
        assert_eq!(id, u64::MAX);
        assert_eq!(decoded, resp);
    }

    #[test]
    fn every_request_roundtrips() {
        roundtrip_request(Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: "acme".into(),
        });
        roundtrip_request(Request::Register {
            name: "jobs".into(),
            adt: AdtType::Stack,
        });
        roundtrip_request(Request::Begin);
        roundtrip_request(Request::Exec {
            txn: 42,
            object: "jobs".into(),
            call: StackOp::Push(Value::Int(-7)).to_call(),
        });
        roundtrip_request(Request::ExecBatch {
            txn: 42,
            ops: vec![
                ("jobs".into(), StackOp::Pop.to_call()),
                ("hits".into(), CounterOp::Increment(3).to_call()),
            ],
        });
        roundtrip_request(Request::Commit { txn: 42 });
        roundtrip_request(Request::Abort { txn: 42 });
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::BeginSnapshot);
        roundtrip_request(Request::ExecBatchDeclared {
            txn: 42,
            ops: vec![
                ("jobs".into(), StackOp::Pop.to_call()),
                ("hits".into(), CounterOp::Increment(3).to_call()),
            ],
            reads: vec!["quota".into()],
            writes: vec!["hits".into(), "jobs".into()],
        });
        // Empty declaration sets roundtrip too.
        roundtrip_request(Request::ExecBatchDeclared {
            txn: 1,
            ops: vec![],
            reads: vec![],
            writes: vec![],
        });
    }

    #[test]
    fn every_response_roundtrips() {
        roundtrip_response(Response::HelloAck {
            version: PROTOCOL_VERSION,
        });
        roundtrip_response(Response::Registered);
        roundtrip_response(Response::Begun { txn: 9 });
        for r in [
            OpResult::Ok,
            OpResult::Success,
            OpResult::Failure,
            OpResult::Value(Value::Str("x".into())),
            OpResult::Value(Value::Bool(true)),
            OpResult::Value(Value::Null),
            OpResult::Null,
        ] {
            roundtrip_response(Response::Result(r));
        }
        roundtrip_response(Response::Results(vec![
            OpResult::Ok,
            OpResult::Value(Value::Int(5)),
        ]));
        roundtrip_response(Response::Committed { pseudo: true });
        roundtrip_response(Response::Committed { pseudo: false });
        roundtrip_response(Response::Aborted);
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Error {
            code: ErrorCode::Busy,
            detail: "32 transactions in flight".into(),
        });
    }

    #[test]
    fn truncated_bodies_are_refused_at_every_cut() {
        let frame = Request::Exec {
            txn: 3,
            object: "jobs".into(),
            call: StackOp::Push(Value::Str("payload".into())).to_call(),
        }
        .encode(1);
        let body = &frame[4..];
        for cut in 0..body.len() {
            assert_eq!(
                Request::decode(&body[..cut]),
                Err(ProtoError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_opcode_and_tags_are_refused() {
        // Unknown opcode.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(0x7f);
        assert_eq!(Request::decode(&body), Err(ProtoError::UnknownOpcode(0x7f)));
        // Unknown ADT type tag.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(0x02);
        put_str(&mut body, "jobs");
        body.push(99);
        assert_eq!(
            Request::decode(&body),
            Err(ProtoError::UnknownTag("adt type", 99))
        );
        // Trailing garbage after a valid request.
        let mut frame = Request::Ping.encode(1);
        frame.push(0xAB);
        let body_len = frame.len() - 4;
        frame[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
        assert_eq!(Request::decode(&frame[4..]), Err(ProtoError::TrailingBytes));
        // Non-UTF-8 string.
        let mut body = Vec::new();
        put_u64(&mut body, 1);
        body.push(0x01);
        put_u32(&mut body, PROTOCOL_VERSION);
        put_u32(&mut body, 2);
        body.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Request::decode(&body), Err(ProtoError::BadUtf8));
    }

    #[test]
    fn frame_buffer_reassembles_split_and_coalesced_frames() {
        let f1 = Request::Begin.encode(1);
        let f2 = Request::Ping.encode(2);
        let mut fb = FrameBuffer::new();
        // Drip-feed the first frame byte by byte.
        for b in &f1 {
            assert_eq!(fb.next_frame(MAX_FRAME_LEN).unwrap(), None);
            fb.extend(&[*b]);
        }
        let body = fb.next_frame(MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(Request::decode(&body).unwrap(), (1, Request::Begin));
        // Two frames in one chunk.
        let mut chunk = f1.clone();
        chunk.extend_from_slice(&f2);
        fb.extend(&chunk);
        let a = fb.next_frame(MAX_FRAME_LEN).unwrap().unwrap();
        let b = fb.next_frame(MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(Request::decode(&a).unwrap().0, 1);
        assert_eq!(Request::decode(&b).unwrap().0, 2);
        assert_eq!(fb.next_frame(MAX_FRAME_LEN).unwrap(), None);
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_buffering() {
        let mut fb = FrameBuffer::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        assert_eq!(
            fb.next_frame(MAX_FRAME_LEN),
            Err(ProtoError::Oversized {
                len: u32::MAX as usize,
                max: MAX_FRAME_LEN
            })
        );
        // Errors render usefully.
        let e = ProtoError::Oversized { len: 10, max: 5 };
        assert!(e.to_string().contains("oversized"));
        assert!(ProtoError::UnknownOpcode(0x99).to_string().contains("0x99"));
    }
}
