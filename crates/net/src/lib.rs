//! # sbcc-net — wire-protocol TCP front-end for the SBCC kernel
//!
//! This crate turns the in-process [`sbcc_core`] scheduler into a
//! network service:
//!
//! * [`protocol`] — the length-prefixed binary wire format shared by
//!   both sides: request/response frames, error codes, and the
//!   incremental [`FrameBuffer`] reassembler.
//! * [`server`] — a TCP server that multiplexes many client
//!   connections onto `AsyncDatabase` sessions driven by `!Send`
//!   `LocalExecutor` worker threads, with admission control
//!   (bounded in-flight transactions per connection, `Busy` sheds),
//!   read timeouts, and auto-abort of sessions orphaned by
//!   disconnects.
//! * [`client`] — a blocking + pipelined [`NetClient`] used by the
//!   closed-loop benches and the loopback differential tests.
//!
//! Every transaction keeps the full semantics-based concurrency
//! control behaviour of the kernel — commutativity/recoverability
//! classification, blocking on conflicts, commit dependencies and
//! pseudo-commits — across the wire. Object names are namespaced per
//! tenant (`"tenant/name"`), so independent tenants can never collide.
//!
//! ```no_run
//! use sbcc_net::{AdtType, NetClient, Server, ServerConfig};
//! use sbcc_adt::{AdtOp, CounterOp};
//! use sbcc_core::{AsyncDatabase, SchedulerConfig};
//!
//! let server = Server::start(
//!     AsyncDatabase::new(SchedulerConfig::default()),
//!     ServerConfig::default(),
//! )?;
//! let addr = server.local_addr();
//!
//! let mut client = NetClient::connect(addr, "tenant-a")?;
//! client.register("hits", AdtType::Counter)?;
//! let txn = client.begin()?;
//! client.exec(txn, "hits", CounterOp::Increment(1).to_call())?;
//! client.commit(txn)?;
//!
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{NetClient, NetError};
pub use protocol::{
    AdtType, ErrorCode, FrameBuffer, ProtoError, Request, Response, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
