//! The client: a thin blocking + pipelined wrapper over one TCP
//! connection.
//!
//! [`NetClient::connect`] performs the hello handshake; the `exec`/
//! `commit`/… conveniences are blocking request-response calls, while
//! [`NetClient::send`] / [`NetClient::recv`] / [`NetClient::recv_for`]
//! expose the raw pipelined layer: fire any number of requests, then
//! collect responses in whatever order the server settles them
//! (out-of-order arrivals are buffered per request id).

use crate::protocol::*;
use sbcc_adt::{OpCall, OpResult};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (includes the server closing mid-call).
    Io(io::Error),
    /// The server sent bytes this protocol version cannot decode.
    Proto(ProtoError),
    /// The server answered with an error frame.
    Server {
        /// Error category.
        code: ErrorCode,
        /// Server-rendered detail (kernel errors: their `Display`).
        detail: String,
    },
    /// The server answered with a well-formed response of the wrong
    /// kind for the request (names the expected kind).
    Unexpected(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Server { code, detail } => write!(f, "server error ({code}): {detail}"),
            NetError::Unexpected(expected) => {
                write!(f, "unexpected response (expected {expected})")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

impl NetError {
    /// `true` for [`ErrorCode::Busy`] sheds — the one server error that
    /// asks for backoff-and-retry rather than a different request.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            NetError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

/// One connection to a [`crate::Server`], bound to a tenant namespace.
pub struct NetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    next_id: u64,
    /// Responses that arrived while waiting for a different request id.
    pending: HashMap<u64, Response>,
    max_frame_len: usize,
    /// The address dialed at connect time, kept for [`NetClient::reconnect`].
    peer: std::net::SocketAddr,
    /// The tenant named in the hello handshake, replayed on reconnect.
    tenant: String,
}

impl NetClient {
    /// Connect and run the hello handshake under `tenant`'s namespace.
    pub fn connect(addr: impl ToSocketAddrs, tenant: &str) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr()?;
        let mut client = NetClient {
            stream,
            frames: FrameBuffer::new(),
            next_id: 1,
            pending: HashMap::new(),
            max_frame_len: MAX_FRAME_LEN,
            peer,
            tenant: tenant.to_owned(),
        };
        client.hello()?;
        Ok(client)
    }

    fn hello(&mut self) -> Result<(), NetError> {
        let id = self.send(&Request::Hello {
            version: PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
        })?;
        match self.recv_for(id)? {
            Response::HelloAck { .. } => Ok(()),
            Response::Error { code, detail } => Err(NetError::Server { code, detail }),
            _ => Err(NetError::Unexpected("hello-ack")),
        }
    }

    /// Tear down this connection and dial the same server again,
    /// re-running the hello handshake under the same tenant.
    ///
    /// Everything connection-scoped is gone afterwards: transactions the
    /// server had open for the old connection are aborted by its
    /// disconnect sweep, and any responses still in flight are dropped
    /// (request ids restart at 1). The registered namespace survives —
    /// it belongs to the tenant, not the connection — so the usual
    /// pattern after a server restart on a durable database is
    /// `reconnect()` followed by re-`begin`.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        let stream = TcpStream::connect(self.peer)?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        self.frames = FrameBuffer::new();
        self.pending.clear();
        self.next_id = 1;
        self.hello()
    }

    /// Send one request without waiting; returns its request id. The
    /// pipelined half of the API — pair with [`NetClient::recv`] or
    /// [`NetClient::recv_for`].
    pub fn send(&mut self, request: &Request) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&request.encode(id))?;
        Ok(id)
    }

    /// Receive the next response in arrival order (buffered responses
    /// first).
    pub fn recv(&mut self) -> Result<(u64, Response), NetError> {
        if let Some(id) = self.pending.keys().next().copied() {
            let resp = self.pending.remove(&id).unwrap();
            return Ok((id, resp));
        }
        self.recv_from_socket()
    }

    /// Receive the response for a specific request id, buffering any
    /// other responses that arrive first.
    pub fn recv_for(&mut self, id: u64) -> Result<Response, NetError> {
        if let Some(resp) = self.pending.remove(&id) {
            return Ok(resp);
        }
        loop {
            let (got, resp) = self.recv_from_socket()?;
            if got == id {
                return Ok(resp);
            }
            self.pending.insert(got, resp);
        }
    }

    fn recv_from_socket(&mut self) -> Result<(u64, Response), NetError> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(body) = self.frames.next_frame(self.max_frame_len)? {
                return Ok(Response::decode(&body)?);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )));
            }
            self.frames.extend(&chunk[..n]);
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let id = self.send(request)?;
        match self.recv_for(id)? {
            Response::Error { code, detail } => Err(NetError::Server { code, detail }),
            other => Ok(other),
        }
    }

    /// Ensure `name` exists under this connection's tenant (idempotent).
    pub fn register(&mut self, name: &str, adt: AdtType) -> Result<(), NetError> {
        match self.call(&Request::Register {
            name: name.to_owned(),
            adt,
        })? {
            Response::Registered => Ok(()),
            _ => Err(NetError::Unexpected("registered")),
        }
    }

    /// Begin a transaction; returns its wire id.
    pub fn begin(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Begin)? {
            Response::Begun { txn } => Ok(txn),
            _ => Err(NetError::Unexpected("begun")),
        }
    }

    /// Begin a snapshot transaction; returns its wire id. Reads observe
    /// the committed state as of the begin stamp without blocking,
    /// guarded server-side by SSI rw-antidependency tracking.
    pub fn begin_snapshot(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::BeginSnapshot)? {
            Response::Begun { txn } => Ok(txn),
            _ => Err(NetError::Unexpected("begun")),
        }
    }

    /// Execute one operation and wait for its result. Blocks for as
    /// long as the kernel blocks the operation behind a conflict.
    pub fn exec(&mut self, txn: u64, object: &str, call: OpCall) -> Result<OpResult, NetError> {
        match self.call(&Request::Exec {
            txn,
            object: object.to_owned(),
            call,
        })? {
            Response::Result(r) => Ok(r),
            _ => Err(NetError::Unexpected("result")),
        }
    }

    /// Execute a sequence of operations and wait for all results.
    pub fn exec_batch(
        &mut self,
        txn: u64,
        ops: Vec<(String, OpCall)>,
    ) -> Result<Vec<OpResult>, NetError> {
        match self.call(&Request::ExecBatch { txn, ops })? {
            Response::Results(rs) => Ok(rs),
            _ => Err(NetError::Unexpected("results")),
        }
    }

    /// Execute a batch with its read/write object footprint declared up
    /// front. When every declared object is quiescent the server admits
    /// the whole batch in one pass with zero per-op classification; a
    /// declaration that fails to cover an op falls back to the
    /// classified path (or aborts, per the server's undeclared-access
    /// policy). `writes` covers reads on the same object, so a name
    /// needs to appear in only one set.
    pub fn exec_batch_declared(
        &mut self,
        txn: u64,
        ops: Vec<(String, OpCall)>,
        reads: Vec<String>,
        writes: Vec<String>,
    ) -> Result<Vec<OpResult>, NetError> {
        match self.call(&Request::ExecBatchDeclared {
            txn,
            ops,
            reads,
            writes,
        })? {
            Response::Results(rs) => Ok(rs),
            _ => Err(NetError::Unexpected("results")),
        }
    }

    /// Commit; returns `true` if the transaction pseudo-committed
    /// (complete and guaranteed to commit, waiting on dependencies).
    pub fn commit(&mut self, txn: u64) -> Result<bool, NetError> {
        match self.call(&Request::Commit { txn })? {
            Response::Committed { pseudo } => Ok(pseudo),
            _ => Err(NetError::Unexpected("committed")),
        }
    }

    /// Abort.
    pub fn abort(&mut self, txn: u64) -> Result<(), NetError> {
        match self.call(&Request::Abort { txn })? {
            Response::Aborted => Ok(()),
            _ => Err(NetError::Unexpected("aborted")),
        }
    }

    /// Round-trip fence: the response proves the server's router has
    /// consumed every frame sent before it on this connection.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(NetError::Unexpected("pong")),
        }
    }

    /// The underlying stream (tests use it to cut the connection or
    /// inject raw bytes).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Send raw bytes on the connection (tests: malformed frames).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }
}
