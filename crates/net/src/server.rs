//! The TCP server: accepts connections, multiplexes every transaction on
//! the wire onto [`AsyncDatabase`] sessions driven by per-worker
//! [`LocalExecutor`]s.
//!
//! # Threading model (and the `!Send` handle decision)
//!
//! [`sbcc_core::aio::AsyncTransaction`] handles are deliberately `!Send`
//! (`Rc`-shared session state), so a session must live its whole life on
//! one thread. The server therefore runs a small pool of **worker
//! threads, each owning a [`LocalExecutor`]**; the acceptor thread deals
//! accepted sockets round-robin onto the workers, and a connection — its
//! router task plus one task per live transaction — never migrates off
//! its worker. Socket *reads* cannot run on the executor (a blocking
//! read would starve every other connection on the worker), so each
//! connection also gets a dedicated reader thread that decodes frames
//! and hands them to the router through a thread-safe event queue +
//! waker. Writes are short and buffered and happen directly from the
//! executor under a per-connection stream lock, bounded by a write
//! timeout.
//!
//! # Backpressure and admission control
//!
//! * **Per-connection in-flight cap**: a [`Request::Begin`] beyond
//!   [`ServerConfig::max_in_flight_per_conn`] live transactions is shed
//!   with an [`ErrorCode::Busy`] error frame instead of being queued —
//!   overload produces explicit, retryable refusals, not an unbounded
//!   queue.
//! * **Read timeout + auto-abort**: while a connection holds at least
//!   one live transaction, its reader enforces
//!   [`ServerConfig::read_timeout`] of inactivity (idle connections with
//!   no open transaction may sit forever). On timeout — or EOF, or any
//!   read error — the connection closes and every live session on it is
//!   **auto-aborted**: in-flight operation futures lose a [`race`]
//!   against the close notification and are dropped, which triggers the
//!   async layer's cancellation contract (abort + waiter-slot
//!   unregistration), so a dead client can neither strand kernel state
//!   nor block other tenants' transactions behind its uncommitted
//!   operations. The timeout check consults
//!   [`sbcc_core::chaos::timeout_fires`] first, so a deterministic
//!   harness can drive this path from a virtual clock.
//!
//! # Tenant namespacing
//!
//! The mandatory [`Request::Hello`] names a tenant; every object name on
//! the connection is qualified as `tenant/name` before it touches the
//! database, so tenants get disjoint object namespaces from one shared
//! kernel (and the qualified name is what the shard hash sees).

use crate::protocol::*;
use sbcc_core::aio::{race, AsyncDatabase, AsyncTransaction, LocalExecutor, RaceWinner};
use sbcc_core::{chaos, CoreError, NetStats, ObjectHandle, TimeoutPoint, TxnState};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex as StdMutex};
use std::task::{Context, Poll, Waker};
use std::thread;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Worker threads, each owning a [`LocalExecutor`]; connections are
    /// dealt round-robin.
    pub workers: usize,
    /// Live-transaction cap per connection; `Begin` beyond it is shed
    /// with [`ErrorCode::Busy`].
    pub max_in_flight_per_conn: usize,
    /// Inactivity budget for a connection with live transactions; on
    /// expiry the connection closes and its sessions auto-abort.
    pub read_timeout: Duration,
    /// Reader-thread poll tick (the granularity of timeout checks and
    /// shutdown observation).
    pub poll_interval: Duration,
    /// Frame-body length cap (see [`MAX_FRAME_LEN`]).
    pub max_frame_len: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            max_in_flight_per_conn: 32,
            read_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(5),
            max_frame_len: MAX_FRAME_LEN,
        }
    }
}

impl ServerConfig {
    /// Replace the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Replace the worker-thread count (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replace the per-connection live-transaction cap (minimum 1).
    pub fn with_max_in_flight(mut self, cap: usize) -> Self {
        self.max_in_flight_per_conn = cap.max(1);
        self
    }

    /// Replace the read-inactivity budget.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Replace the reader poll tick.
    pub fn with_poll_interval(mut self, tick: Duration) -> Self {
        self.poll_interval = tick;
        self
    }
}

/// Everything the acceptor, workers, readers and sessions share.
struct ServerShared {
    db: AsyncDatabase,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Tenant-qualified name → handle. Held across the registration
    /// call so concurrent `Register`s for one name cannot race.
    registry: StdMutex<HashMap<String, ObjectHandle>>,
    /// Open connections' streams (clones), for shutdown teardown.
    conns: StdMutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    transactions_in_flight: AtomicU64,
    shed_busy: AtomicU64,
    read_timeouts: AtomicU64,
    sessions_auto_aborted: AtomicU64,
}

impl ServerShared {
    fn net_stats(&self) -> NetStats {
        NetStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            transactions_in_flight: self.transactions_in_flight.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            sessions_auto_aborted: self.sessions_auto_aborted.load(Ordering::Relaxed),
        }
    }
}

/// Hand-off queue from the acceptor thread to one worker's listen task.
struct Inbox {
    queue: StdMutex<VecDeque<TcpStream>>,
    waker: StdMutex<Option<Waker>>,
}

impl Inbox {
    fn new() -> Self {
        Inbox {
            queue: StdMutex::new(VecDeque::new()),
            waker: StdMutex::new(None),
        }
    }

    fn push(&self, stream: TcpStream) {
        self.queue.lock().unwrap().push_back(stream);
        self.wake();
    }

    fn wake(&self) {
        if let Some(w) = self.waker.lock().unwrap().take() {
            w.wake();
        }
    }
}

/// Per-connection state shared between the reader thread (producer) and
/// the router / transaction tasks on the worker executor (consumers).
struct ConnShared {
    events: StdMutex<VecDeque<ConnEvent>>,
    router_waker: StdMutex<Option<Waker>>,
    closed: AtomicBool,
    close_wakers: StdMutex<Vec<Waker>>,
    /// Live transactions on this connection: admission control reads it,
    /// the reader only runs its inactivity countdown while it is > 0.
    live_txns: AtomicUsize,
}

enum ConnEvent {
    Frame(u64, Request),
    Malformed(ProtoError),
}

impl ConnShared {
    fn new() -> Self {
        ConnShared {
            events: StdMutex::new(VecDeque::new()),
            router_waker: StdMutex::new(None),
            closed: AtomicBool::new(false),
            close_wakers: StdMutex::new(Vec::new()),
            live_txns: AtomicUsize::new(0),
        }
    }

    fn push_event(&self, ev: ConnEvent) {
        self.events.lock().unwrap().push_back(ev);
        self.wake_router();
    }

    fn wake_router(&self) {
        if let Some(w) = self.router_waker.lock().unwrap().take() {
            w.wake();
        }
    }

    /// Mark the connection closed and wake everything waiting on it.
    /// Sets the flag *before* draining the waker list — [`Closed`]
    /// re-checks the flag under that same lock, so no waiter can
    /// register after the drain without seeing the flag.
    fn mark_closed(&self) {
        self.closed.store(true, Ordering::Release);
        self.wake_router();
        let wakers: Vec<Waker> = std::mem::take(&mut *self.close_wakers.lock().unwrap());
        for w in wakers {
            w.wake();
        }
    }
}

/// Resolves when the connection closes (EOF, error, timeout, protocol
/// violation, or server shutdown). Racing an operation future against
/// this is the session-teardown mechanism: the dropped loser triggers
/// the async layer's cancellation abort.
struct Closed {
    conn: Arc<ConnShared>,
}

impl Future for Closed {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.conn.closed.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        let mut wakers = self.conn.close_wakers.lock().unwrap();
        if self.conn.closed.load(Ordering::Acquire) {
            return Poll::Ready(());
        }
        if !wakers.iter().any(|w| w.will_wake(cx.waker())) {
            wakers.push(cx.waker().clone());
        }
        Poll::Pending
    }
}

/// The router's event source: next decoded frame, or `None` once the
/// connection is closed *and* drained.
struct NextEvent {
    conn: Arc<ConnShared>,
}

impl Future for NextEvent {
    type Output = Option<ConnEvent>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(ev) = self.conn.events.lock().unwrap().pop_front() {
            return Poll::Ready(Some(ev));
        }
        if self.conn.closed.load(Ordering::Acquire) {
            return Poll::Ready(None);
        }
        *self.conn.router_waker.lock().unwrap() = Some(cx.waker().clone());
        // Re-check: a push (or close) between the pop and the waker store
        // would have missed the waker.
        if let Some(ev) = self.conn.events.lock().unwrap().pop_front() {
            return Poll::Ready(Some(ev));
        }
        if self.conn.closed.load(Ordering::Acquire) {
            return Poll::Ready(None);
        }
        Poll::Pending
    }
}

/// One transaction task's work queue, fed by the router. `Rc`: both
/// sides live on the same worker executor.
#[derive(Default)]
struct TxnQueue {
    work: RefCell<VecDeque<TxnWork>>,
    waker: Cell<Option<Waker>>,
}

impl TxnQueue {
    fn push(&self, work: TxnWork) {
        self.work.borrow_mut().push_back(work);
        if let Some(w) = self.waker.take() {
            w.wake();
        }
    }
}

enum TxnWork {
    Exec {
        id: u64,
        handle: ObjectHandle,
        call: sbcc_adt::OpCall,
    },
    Batch {
        id: u64,
        ops: Vec<(ObjectHandle, sbcc_adt::OpCall)>,
    },
    BatchDeclared {
        id: u64,
        ops: Vec<(ObjectHandle, sbcc_adt::OpCall)>,
        reads: Vec<ObjectHandle>,
        writes: Vec<ObjectHandle>,
    },
    Commit {
        id: u64,
    },
    Abort {
        id: u64,
    },
}

struct NextWork {
    queue: Rc<TxnQueue>,
}

impl Future for NextWork {
    type Output = TxnWork;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<TxnWork> {
        if let Some(work) = self.queue.work.borrow_mut().pop_front() {
            return Poll::Ready(work);
        }
        self.queue.waker.set(Some(cx.waker().clone()));
        Poll::Pending
    }
}

type SharedWriter = Arc<StdMutex<TcpStream>>;

/// Serialize one frame onto the connection; a failed or timed-out write
/// closes the connection (tearing down its sessions) rather than
/// wedging the worker behind a dead peer.
fn write_frame(writer: &SharedWriter, conn: &ConnShared, frame: &[u8]) {
    let failed = writer.lock().unwrap().write_all(frame).is_err();
    if failed {
        conn.mark_closed();
    }
}

/// Map a kernel error onto its wire error frame (codes mirror
/// [`CoreError`] variants; the detail is the error's `Display`).
fn error_response(e: &CoreError) -> Response {
    let code = match e {
        CoreError::UnknownTransaction(_) => ErrorCode::UnknownTransaction,
        CoreError::UnknownObject(_) => ErrorCode::UnknownObject,
        CoreError::InvalidState { .. } => ErrorCode::InvalidState,
        CoreError::Aborted { .. } => ErrorCode::Aborted,
        CoreError::DuplicateObject(_) => ErrorCode::DuplicateObject,
        CoreError::NoPendingOperation(_) => ErrorCode::NoPendingOperation,
        CoreError::RetriesExhausted { .. } => ErrorCode::RetriesExhausted,
        CoreError::Durability(_) => ErrorCode::Durability,
    };
    Response::Error {
        code,
        detail: e.to_string(),
    }
}

/// A running wire-protocol server over one [`AsyncDatabase`].
///
/// Accepts connections until [`Server::shutdown`]; see the module docs
/// for the threading model, backpressure and tenancy rules.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    inboxes: Vec<Arc<Inbox>>,
}

impl Server {
    /// Bind `config.addr` and start serving `db`.
    pub fn start(db: AsyncDatabase, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            db,
            config: config.clone(),
            shutdown: AtomicBool::new(false),
            registry: StdMutex::new(HashMap::new()),
            conns: StdMutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            connections_accepted: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            transactions_in_flight: AtomicU64::new(0),
            shed_busy: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            sessions_auto_aborted: AtomicU64::new(0),
        });
        let inboxes: Vec<Arc<Inbox>> = (0..config.workers.max(1))
            .map(|_| Arc::new(Inbox::new()))
            .collect();
        let workers = inboxes
            .iter()
            .enumerate()
            .map(|(i, inbox)| {
                let shared = shared.clone();
                let inbox = inbox.clone();
                thread::Builder::new()
                    .name(format!("sbcc-net-worker-{i}"))
                    .spawn(move || worker_main(shared, inbox))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = shared.clone();
            let inboxes = inboxes.clone();
            thread::Builder::new()
                .name("sbcc-net-acceptor".to_owned())
                .spawn(move || acceptor_main(listener, shared, inboxes))
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            inboxes,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The served database (e.g. for in-process verification against
    /// wire-driven state).
    pub fn db(&self) -> &AsyncDatabase {
        &self.shared.db
    }

    /// Look up the handle a tenant's object was registered under, for
    /// in-process verification of wire-driven state (e.g. reading the
    /// committed state of an object a remote client mutated).
    pub fn object_handle(&self, tenant: &str, name: &str) -> Option<ObjectHandle> {
        let qualified = format!("{tenant}/{name}");
        self.shared.registry.lock().unwrap().get(&qualified).cloned()
    }

    /// Current server counters. After [`Server::shutdown`] returns, a
    /// leak-free run reports `connections_open == 0` and
    /// `transactions_in_flight == 0`.
    pub fn net_stats(&self) -> NetStats {
        self.shared.net_stats()
    }

    /// Stop accepting, tear down every connection (auto-aborting live
    /// sessions), join all threads, and return the final counters.
    pub fn shutdown(mut self) -> NetStats {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor's `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Force every open connection's reader to EOF.
        for (_, stream) in self.shared.conns.lock().unwrap().drain() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake listen tasks so they observe the flag and exit; workers'
        // executors then drain their remaining connection tasks and stop.
        for inbox in &self.inboxes {
            inbox.wake();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.net_stats()
    }
}

fn acceptor_main(listener: TcpListener, shared: Arc<ServerShared>, inboxes: Vec<Arc<Inbox>>) {
    let mut next = 0usize;
    for incoming in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        let _ = stream.set_nodelay(true);
        inboxes[next % inboxes.len()].push(stream);
        next += 1;
    }
}

fn worker_main(shared: Arc<ServerShared>, inbox: Arc<Inbox>) {
    let exec = Rc::new(LocalExecutor::new());
    let exec_for_listen = exec.clone();
    exec.spawn(async move {
        loop {
            let next = std::future::poll_fn(|cx| {
                if shared.shutdown.load(Ordering::Acquire) {
                    return Poll::Ready(None);
                }
                if let Some(stream) = inbox.queue.lock().unwrap().pop_front() {
                    return Poll::Ready(Some(stream));
                }
                *inbox.waker.lock().unwrap() = Some(cx.waker().clone());
                // Re-check after storing the waker (the acceptor may have
                // pushed or shutdown may have flipped in between).
                if shared.shutdown.load(Ordering::Acquire) {
                    return Poll::Ready(None);
                }
                if let Some(stream) = inbox.queue.lock().unwrap().pop_front() {
                    return Poll::Ready(Some(stream));
                }
                Poll::Pending
            })
            .await;
            match next {
                Some(stream) => spawn_connection(&exec_for_listen, &shared, stream),
                None => return,
            }
        }
    });
    exec.run();
}

fn spawn_connection(exec: &Rc<LocalExecutor>, shared: &Arc<ServerShared>, stream: TcpStream) {
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
    let (reader_stream, shutdown_stream) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(r), Ok(s)) => (r, s),
        _ => return,
    };
    shared.connections_open.fetch_add(1, Ordering::Relaxed);
    // Bound writes so a peer that stops draining cannot wedge the worker.
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout.max(Duration::from_secs(1))));
    shared.conns.lock().unwrap().insert(conn_id, shutdown_stream);

    let conn = Arc::new(ConnShared::new());
    {
        let conn = conn.clone();
        let shared = shared.clone();
        thread::Builder::new()
            .name(format!("sbcc-net-reader-{conn_id}"))
            .spawn(move || reader_main(reader_stream, conn, shared))
            .expect("spawn reader thread");
    }
    let writer: SharedWriter = Arc::new(StdMutex::new(stream));
    let exec2 = exec.clone();
    let shared2 = shared.clone();
    exec.spawn(async move {
        router_task(exec2, shared2, conn, writer, conn_id).await;
    });
}

/// The per-connection reader thread: accumulate bytes, decode frames,
/// feed the router; enforce the inactivity timeout while transactions
/// are live. Exits on EOF, error, timeout, router-initiated close, or
/// server shutdown — always marking the connection closed on the way
/// out.
fn reader_main(mut stream: TcpStream, conn: Arc<ConnShared>, shared: Arc<ServerShared>) {
    let config = &shared.config;
    let _ = stream.set_read_timeout(Some(config.poll_interval));
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    'conn: loop {
        if conn.closed.load(Ordering::Acquire) || shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                last_activity = Instant::now();
                frames.extend(&chunk[..n]);
                loop {
                    match frames.next_frame(config.max_frame_len) {
                        Ok(Some(body)) => match Request::decode(&body) {
                            Ok((id, req)) => conn.push_event(ConnEvent::Frame(id, req)),
                            Err(e) => {
                                conn.push_event(ConnEvent::Malformed(e));
                                break 'conn;
                            }
                        },
                        Ok(None) => break,
                        Err(e) => {
                            conn.push_event(ConnEvent::Malformed(e));
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if conn.live_txns.load(Ordering::Acquire) == 0 {
                    // No transaction at risk: idle connections live on,
                    // and the countdown restarts at the next Begin.
                    last_activity = Instant::now();
                    continue;
                }
                let fired = match chaos::timeout_fires(TimeoutPoint::NetRead) {
                    Some(virtual_verdict) => virtual_verdict,
                    None => last_activity.elapsed() >= config.read_timeout,
                };
                if fired {
                    shared.read_timeouts.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            Err(_) => break,
        }
    }
    conn.mark_closed();
}

/// The per-connection router task: owns the tenant handshake and the
/// wire-id → transaction-task map; answers directly for control frames
/// and dispatches operation frames to the owning transaction task.
async fn router_task(
    exec: Rc<LocalExecutor>,
    shared: Arc<ServerShared>,
    conn: Arc<ConnShared>,
    writer: SharedWriter,
    conn_id: u64,
) {
    let mut tenant: Option<String> = None;
    let mut txns: HashMap<u64, Rc<TxnQueue>> = HashMap::new();
    loop {
        let event = NextEvent { conn: conn.clone() }.await;
        let (id, req) = match event {
            None => break,
            Some(ConnEvent::Malformed(e)) => {
                // Request id 0: the frame never yielded one.
                write_frame(
                    &writer,
                    &conn,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        detail: e.to_string(),
                    }
                    .encode(0),
                );
                break;
            }
            Some(ConnEvent::Frame(id, req)) => (id, req),
        };
        let response = route(
            &exec, &shared, &conn, &writer, &mut tenant, &mut txns, id, req,
        );
        if let Some(resp) = response {
            write_frame(&writer, &conn, &resp.encode(id));
        }
        // Give tasks woken by this frame (newly queued work, settled
        // conflicts) the thread before the next frame is routed, so a
        // Ping fence truly orders behind the operations sent before it.
        sbcc_core::aio::yield_now().await;
    }
    conn.mark_closed();
    shared.conns.lock().unwrap().remove(&conn_id);
    shared.connections_open.fetch_sub(1, Ordering::Relaxed);
}

/// Handle one request frame. Returns the router's direct response, or
/// `None` when the frame was dispatched to a transaction task (which
/// responds itself, possibly much later).
#[allow(clippy::too_many_arguments)]
fn route(
    exec: &Rc<LocalExecutor>,
    shared: &Arc<ServerShared>,
    conn: &Arc<ConnShared>,
    writer: &SharedWriter,
    tenant: &mut Option<String>,
    txns: &mut HashMap<u64, Rc<TxnQueue>>,
    id: u64,
    req: Request,
) -> Option<Response> {
    let protocol_error = |detail: String| {
        Some(Response::Error {
            code: ErrorCode::Protocol,
            detail,
        })
    };
    // The handshake-free frames first.
    match &req {
        Request::Ping => return Some(Response::Pong),
        Request::Hello { version, tenant: t } => {
            if tenant.is_some() {
                return protocol_error("duplicate hello".to_owned());
            }
            if *version != PROTOCOL_VERSION {
                return protocol_error(format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ));
            }
            *tenant = Some(t.clone());
            return Some(Response::HelloAck {
                version: PROTOCOL_VERSION,
            });
        }
        _ => {}
    }
    let Some(tenant) = tenant.as_deref() else {
        return Some(Response::Error {
            code: ErrorCode::TenantRequired,
            detail: "hello with a tenant must precede every other request".to_owned(),
        });
    };
    let resolve = |object: &str| -> Result<ObjectHandle, Response> {
        let qualified = format!("{tenant}/{object}");
        shared
            .registry
            .lock()
            .unwrap()
            .get(&qualified)
            .cloned()
            .ok_or(Response::Error {
                code: ErrorCode::UnknownObject,
                detail: format!("unknown object {qualified:?}"),
            })
    };
    let want_snapshot = matches!(req, Request::BeginSnapshot);
    match req {
        Request::Hello { .. } | Request::Ping => unreachable!("handled above"),
        Request::Register { name, adt } => {
            let qualified = format!("{tenant}/{name}");
            let mut registry = shared.registry.lock().unwrap();
            if registry.contains_key(&qualified) {
                return Some(Response::Registered);
            }
            match shared.db.register_object(qualified.clone(), adt.instantiate()) {
                Ok(handle) => {
                    registry.insert(qualified, handle);
                    Some(Response::Registered)
                }
                Err(e) => Some(error_response(&e)),
            }
        }
        Request::Begin | Request::BeginSnapshot => {
            if shared.shutdown.load(Ordering::Acquire) {
                return Some(Response::Error {
                    code: ErrorCode::Shutdown,
                    detail: "server is shutting down".to_owned(),
                });
            }
            let live = conn.live_txns.load(Ordering::Acquire);
            if live >= shared.config.max_in_flight_per_conn {
                shared.shed_busy.fetch_add(1, Ordering::Relaxed);
                return Some(Response::Error {
                    code: ErrorCode::Busy,
                    detail: format!(
                        "{live} transactions in flight on this connection (cap {})",
                        shared.config.max_in_flight_per_conn
                    ),
                });
            }
            let txn = if want_snapshot {
                shared.db.begin_snapshot()
            } else {
                shared.db.begin()
            };
            let wire = txn.id().0;
            let queue = Rc::new(TxnQueue::default());
            txns.insert(wire, queue.clone());
            conn.live_txns.fetch_add(1, Ordering::AcqRel);
            shared.transactions_in_flight.fetch_add(1, Ordering::Relaxed);
            let shared = shared.clone();
            let conn = conn.clone();
            let writer = writer.clone();
            exec.spawn(async move {
                txn_task(shared, conn, writer, txn, queue).await;
            });
            Some(Response::Begun { txn: wire })
        }
        Request::Exec { txn, object, call } => {
            let Some(queue) = txns.get(&txn) else {
                return Some(unknown_txn(txn));
            };
            match resolve(&object) {
                Ok(handle) => {
                    queue.push(TxnWork::Exec { id, handle, call });
                    None
                }
                Err(resp) => Some(resp),
            }
        }
        Request::ExecBatch { txn, ops } => {
            let Some(queue) = txns.get(&txn) else {
                return Some(unknown_txn(txn));
            };
            let mut resolved = Vec::with_capacity(ops.len());
            for (object, call) in ops {
                match resolve(&object) {
                    Ok(handle) => resolved.push((handle, call)),
                    Err(resp) => return Some(resp),
                }
            }
            queue.push(TxnWork::Batch { id, ops: resolved });
            None
        }
        Request::ExecBatchDeclared {
            txn,
            ops,
            reads,
            writes,
        } => {
            let Some(queue) = txns.get(&txn) else {
                return Some(unknown_txn(txn));
            };
            let mut resolved = Vec::with_capacity(ops.len());
            for (object, call) in ops {
                match resolve(&object) {
                    Ok(handle) => resolved.push((handle, call)),
                    Err(resp) => return Some(resp),
                }
            }
            let mut sets = [Vec::new(), Vec::new()];
            for (set, names) in sets.iter_mut().zip([reads, writes]) {
                set.reserve(names.len());
                for name in names {
                    match resolve(&name) {
                        Ok(handle) => set.push(handle),
                        Err(resp) => return Some(resp),
                    }
                }
            }
            let [decl_reads, decl_writes] = sets;
            queue.push(TxnWork::BatchDeclared {
                id,
                ops: resolved,
                reads: decl_reads,
                writes: decl_writes,
            });
            None
        }
        Request::Commit { txn } => match txns.remove(&txn) {
            Some(queue) => {
                queue.push(TxnWork::Commit { id });
                None
            }
            None => Some(unknown_txn(txn)),
        },
        Request::Abort { txn } => match txns.remove(&txn) {
            Some(queue) => {
                queue.push(TxnWork::Abort { id });
                None
            }
            None => Some(unknown_txn(txn)),
        },
    }
}

/// Mirrors [`CoreError::UnknownTransaction`]'s code and rendering for a
/// wire id the router does not know.
fn unknown_txn(txn: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownTransaction,
        detail: format!("unknown transaction T{txn}"),
    }
}

/// One live transaction: drains its work queue, executing operations
/// against the session; every await races the connection-closed
/// notification, so a disconnect cancels in-flight operations (dropping
/// them aborts the session) and tears the task down.
async fn txn_task(
    shared: Arc<ServerShared>,
    conn: Arc<ConnShared>,
    writer: SharedWriter,
    txn: AsyncTransaction,
    queue: Rc<TxnQueue>,
) {
    'task: loop {
        let next = race(
            NextWork {
                queue: queue.clone(),
            },
            Closed { conn: conn.clone() },
        )
        .await;
        let work = match next {
            RaceWinner::Left(work) => work,
            RaceWinner::Right(()) => {
                auto_abort(&shared, &txn).await;
                break 'task;
            }
        };
        match work {
            TxnWork::Exec { id, handle, call } => {
                let raced = race(txn.exec_call(&handle, call), Closed { conn: conn.clone() }).await;
                match raced {
                    RaceWinner::Left(Ok(result)) => {
                        write_frame(&writer, &conn, &Response::Result(result).encode(id));
                    }
                    RaceWinner::Left(Err(e)) => {
                        // Forward kernel errors without terminating the
                        // task: the client owns the session's fate, and
                        // follow-up requests get the kernel's own answer.
                        write_frame(&writer, &conn, &error_response(&e).encode(id));
                    }
                    RaceWinner::Right(()) => {
                        // The dropped exec future already cancelled (and
                        // aborted) the session; `auto_abort` settles the
                        // remaining cases and counts the teardown.
                        auto_abort(&shared, &txn).await;
                        break 'task;
                    }
                }
            }
            TxnWork::Batch { id, ops } => {
                let mut results = Vec::with_capacity(ops.len());
                let mut outcome = None;
                for (handle, call) in ops {
                    let raced =
                        race(txn.exec_call(&handle, call), Closed { conn: conn.clone() }).await;
                    match raced {
                        RaceWinner::Left(Ok(result)) => results.push(result),
                        RaceWinner::Left(Err(e)) => {
                            outcome = Some(error_response(&e));
                            break;
                        }
                        RaceWinner::Right(()) => {
                            auto_abort(&shared, &txn).await;
                            break 'task;
                        }
                    }
                }
                let resp = outcome.unwrap_or(Response::Results(results));
                write_frame(&writer, &conn, &resp.encode(id));
            }
            TxnWork::BatchDeclared {
                id,
                ops,
                reads,
                writes,
            } => {
                // Unlike the classified batch (one raced exec per op), a
                // declared batch goes through the session's batch
                // submission path so the whole group can be admitted in
                // one kernel pass.
                let mut batch = txn.batch();
                for handle in &reads {
                    batch.add_declare_read(handle);
                }
                for handle in &writes {
                    batch.add_declare_write(handle);
                }
                for (handle, call) in &ops {
                    batch.add_call(handle, call.clone());
                }
                let raced = race(batch.submit(), Closed { conn: conn.clone() }).await;
                let resp = match raced {
                    RaceWinner::Left(Ok(results)) => Response::Results(results),
                    RaceWinner::Left(Err(e)) => error_response(&e),
                    RaceWinner::Right(()) => {
                        auto_abort(&shared, &txn).await;
                        break 'task;
                    }
                };
                write_frame(&writer, &conn, &resp.encode(id));
            }
            TxnWork::Commit { id } => {
                let session = txn.clone();
                let resp = match session.commit().await {
                    Ok(outcome) => Response::Committed {
                        pseudo: outcome.is_pseudo_commit(),
                    },
                    Err(e) => error_response(&e),
                };
                write_frame(&writer, &conn, &resp.encode(id));
                break 'task;
            }
            TxnWork::Abort { id } => {
                let session = txn.clone();
                let resp = match session.abort().await {
                    Ok(()) => Response::Aborted,
                    Err(e) => error_response(&e),
                };
                write_frame(&writer, &conn, &resp.encode(id));
                break 'task;
            }
        }
    }
    conn.live_txns.fetch_sub(1, Ordering::AcqRel);
    shared.transactions_in_flight.fetch_sub(1, Ordering::Relaxed);
}

/// Tear down a session orphaned by its connection: abort it unless it
/// already reached a terminal state (a cancelled in-flight operation
/// aborts on drop; a pseudo-committed session is guaranteed to commit
/// and must not be touched).
async fn auto_abort(shared: &Arc<ServerShared>, txn: &AsyncTransaction) {
    shared.sessions_auto_aborted.fetch_add(1, Ordering::Relaxed);
    if matches!(txn.state(), Some(TxnState::Active) | Some(TxnState::Blocked)) {
        let session = txn.clone();
        let _ = session.abort().await;
    }
}
