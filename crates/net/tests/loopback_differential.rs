//! Loopback differential: the same randomized transaction scripts driven
//! **over a real TCP socket** (one [`NetClient`] against a one-worker
//! [`Server`]) and driven **in-process** against a plain
//! [`AsyncDatabase`] must be behaviourally identical — same per-step
//! results, same transaction fates, same final committed object states
//! and same kernel counters — at one shard and at four.
//!
//! Both drivers impose the same deterministic injection order: steps are
//! injected one at a time, and each injection is *fenced* before the
//! next — the wire driver pipelines the step frame followed by a `Ping`
//! and waits for the `Pong` (the router answers in order and yields the
//! executor after every frame, so the step has been admitted to the
//! kernel by the time the `Pong` leaves), while the reference driver
//! pushes the step into the owning session task's queue and runs the
//! executor until it stalls. A step's *result* may arrive many steps
//! later (blocked operations resolve when the conflicting transaction
//! terminates); both sides key results by step index, so late
//! resolutions land in the same slot.

use proptest::prelude::*;
use sbcc_adt::{AdtOp, CounterOp, OpCall, QueueOp, SetOp, StackOp, Value};
use sbcc_core::aio::{AsyncDatabase, AsyncTransaction, LocalExecutor};
use sbcc_core::{
    CoreError, DatabaseConfig, Database, ObjectHandle, SchedulerConfig, TxnState,
};
use sbcc_net::{AdtType, ErrorCode, NetClient, Request, Response, Server, ServerConfig};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

const TENANT: &str = "t0";
const OBJECTS: &[(&str, AdtType)] = &[
    ("stack", AdtType::Stack),
    ("counter", AdtType::Counter),
    ("queue", AdtType::FifoQueue),
    ("set", AdtType::Set),
];

fn scheduler_config(policy_choice: bool) -> SchedulerConfig {
    let policy = if policy_choice {
        sbcc_core::ConflictPolicy::Recoverability
    } else {
        sbcc_core::ConflictPolicy::CommutativityOnly
    };
    SchedulerConfig::default().with_policy(policy)
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (0i64..5).prop_map(|v| QueueOp::Enqueue(Value::Int(v)).to_call()),
            Just(QueueOp::Dequeue.to_call()),
            Just(QueueOp::Front.to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

/// Per-transaction operation scripts (object index, call).
fn arb_scripts() -> impl Strategy<Value = Vec<Vec<(usize, OpCall)>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0..OBJECTS.len()).prop_flat_map(|o| arb_call_for(o).prop_map(move |c| (o, c))),
            1..6,
        ),
        2..5,
    )
}

/// One injected step, in a fixed global order both drivers share.
#[derive(Clone, Debug)]
enum Step {
    Begin,
    Exec(usize, usize, OpCall),
    Commit(usize),
}

/// Flatten per-transaction scripts into a deterministic interleaving:
/// begin everything, round-robin one operation per live transaction per
/// round, commit each transaction right after its last operation.
fn interleave(scripts: &[Vec<(usize, OpCall)>]) -> Vec<Step> {
    let mut steps: Vec<Step> = (0..scripts.len()).map(|_| Step::Begin).collect();
    let mut cursor = vec![0usize; scripts.len()];
    loop {
        let mut progressed = false;
        for (i, script) in scripts.iter().enumerate() {
            if cursor[i] > script.len() {
                continue;
            }
            if cursor[i] == script.len() {
                steps.push(Step::Commit(i));
            } else {
                let (object, call) = &script[cursor[i]];
                steps.push(Step::Exec(i, *object, call.clone()));
            }
            cursor[i] += 1;
            progressed = true;
        }
        if !progressed {
            return steps;
        }
    }
}

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Trace {
    /// Step index → normalized response, for every step that responds.
    results: BTreeMap<usize, String>,
    /// Final committed state of every object.
    states: Vec<String>,
    /// The comparable subset of the kernel counters.
    stats: String,
}

fn stats_line(db: &Database) -> String {
    let s = db.stats();
    format!(
        "requests={} executed={} blocks={} unblocks={} commit_deps={} commits={} pseudo={} \
         ab_dead={} ab_ccycle={} ab_victim={} ab_explicit={}",
        s.requests,
        s.operations_executed,
        s.blocks,
        s.unblocks,
        s.commit_dependencies,
        s.commits,
        s.pseudo_commits,
        s.aborts_deadlock,
        s.aborts_commit_cycle,
        s.aborts_victim,
        s.aborts_explicit
    )
}

fn committed_states(db: &Database, handles: &[ObjectHandle]) -> Vec<String> {
    handles
        .iter()
        .map(|h| {
            db.with_sharded_kernel(|k| {
                k.with_object_committed(h.id(), |o| o.debug_state())
                    .expect("registered object")
            })
        })
        .collect()
}

/// The wire side's normalization of a response frame.
fn normalize_response(resp: &Response) -> String {
    match resp {
        Response::Begun { txn } => format!("begun T{txn}"),
        Response::Result(r) => format!("{r:?}"),
        Response::Committed { pseudo } => format!("commit pseudo={pseudo}"),
        Response::Error { code, detail } => format!("err {code}: {detail}"),
        other => panic!("unexpected response kind in differential: {other:?}"),
    }
}

/// The reference side's normalization of a kernel error — must render
/// exactly like the server's error frame for the same `CoreError`.
fn normalize_core_error(e: &CoreError) -> String {
    let code = match e {
        CoreError::UnknownTransaction(_) => ErrorCode::UnknownTransaction,
        CoreError::UnknownObject(_) => ErrorCode::UnknownObject,
        CoreError::InvalidState { .. } => ErrorCode::InvalidState,
        CoreError::Aborted { .. } => ErrorCode::Aborted,
        CoreError::DuplicateObject(_) => ErrorCode::DuplicateObject,
        CoreError::NoPendingOperation(_) => ErrorCode::NoPendingOperation,
        CoreError::RetriesExhausted { .. } => ErrorCode::RetriesExhausted,
        CoreError::Durability(_) => ErrorCode::Durability,
    };
    format!("err {code}: {e}")
}

/// Drive the steps through a real server over a real socket.
fn run_wire(steps: &[Step], policy_choice: bool, shards: usize) -> Trace {
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(scheduler_config(policy_choice)).with_shards(shards),
    );
    let server = Server::start(db, ServerConfig::default().with_workers(1)).expect("bind");
    let mut client = NetClient::connect(server.local_addr(), TENANT).expect("connect");
    for (name, adt) in OBJECTS {
        client.register(name, *adt).unwrap();
    }

    let mut request_of_step: BTreeMap<u64, usize> = BTreeMap::new();
    let mut wire_txn: Vec<u64> = Vec::new();
    let mut results: BTreeMap<usize, String> = BTreeMap::new();
    for (index, step) in steps.iter().enumerate() {
        let request = match step {
            Step::Begin => Request::Begin,
            Step::Exec(txn, object, call) => Request::Exec {
                txn: wire_txn[*txn],
                object: OBJECTS[*object].0.to_owned(),
                call: call.clone(),
            },
            Step::Commit(txn) => Request::Commit {
                txn: wire_txn[*txn],
            },
        };
        let id = client.send(&request).unwrap();
        request_of_step.insert(id, index);
        // Fence: the router has routed this step (and the session task
        // has admitted it to the kernel) once the Pong comes back.
        client.ping().unwrap();
        // A `Begin` answers immediately, and later steps need its wire
        // transaction id.
        if let Step::Begin = step {
            match client.recv_for(id).unwrap() {
                Response::Begun { txn } => {
                    wire_txn.push(txn);
                    results.insert(index, format!("begun T{txn}"));
                    request_of_step.remove(&id);
                }
                other => panic!("begin answered with {other:?}"),
            }
        }
    }
    // Collect every remaining response: all conflicts resolve once every
    // transaction has terminated, so nothing is outstanding forever.
    while !request_of_step.is_empty() {
        let (id, resp) = client.recv().expect("outstanding step response");
        if let Some(index) = request_of_step.remove(&id) {
            results.insert(index, normalize_response(&resp));
        }
    }

    server.db().verify_serializable().unwrap();
    server.db().check_invariants().unwrap();
    let handles: Vec<ObjectHandle> = OBJECTS
        .iter()
        .map(|(name, _)| server.object_handle(TENANT, name).expect("registered"))
        .collect();
    let states = committed_states(server.db().database(), &handles);
    let stats = stats_line(server.db().database());
    drop(client);
    let final_stats = server.shutdown();
    assert_eq!(final_stats.connections_open, 0, "leaked connections");
    assert_eq!(final_stats.transactions_in_flight, 0, "leaked sessions");
    Trace {
        results,
        states,
        stats,
    }
}

/// The reference side's per-session work queue (the same shape the
/// server uses internally: the injector is the producer, the session
/// task the consumer, both on one executor).
#[derive(Default)]
struct WorkQueue {
    work: RefCell<Vec<(usize, Work)>>,
    waker: Cell<Option<Waker>>,
}

enum Work {
    Exec(ObjectHandle, OpCall),
    Commit,
}

impl WorkQueue {
    fn push(&self, index: usize, work: Work) {
        self.work.borrow_mut().push((index, work));
        if let Some(w) = self.waker.take() {
            w.wake();
        }
    }
}

struct NextWork {
    queue: Rc<WorkQueue>,
}

impl Future for NextWork {
    type Output = (usize, Work);

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<(usize, Work)> {
        let mut work = self.queue.work.borrow_mut();
        if work.is_empty() {
            self.queue.waker.set(Some(cx.waker().clone()));
            Poll::Pending
        } else {
            Poll::Ready(work.remove(0))
        }
    }
}

/// Mirrors the server's per-transaction task: sequential work, errors
/// forwarded without ending the session, commit ends it.
async fn reference_session(
    txn: AsyncTransaction,
    queue: Rc<WorkQueue>,
    results: Rc<RefCell<BTreeMap<usize, String>>>,
) {
    loop {
        let (index, work) = NextWork {
            queue: queue.clone(),
        }
        .await;
        match work {
            Work::Exec(handle, call) => {
                let entry = match txn.exec_call(&handle, call).await {
                    Ok(r) => format!("{r:?}"),
                    Err(e) => normalize_core_error(&e),
                };
                results.borrow_mut().insert(index, entry);
            }
            Work::Commit => {
                let entry = match txn.clone().commit().await {
                    Ok(outcome) => format!("commit pseudo={}", outcome.is_pseudo_commit()),
                    Err(e) => normalize_core_error(&e),
                };
                results.borrow_mut().insert(index, entry);
                return;
            }
        }
    }
}

/// Drive the same steps against an in-process [`AsyncDatabase`].
fn run_reference(steps: &[Step], policy_choice: bool, shards: usize) -> Trace {
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(scheduler_config(policy_choice)).with_shards(shards),
    );
    let handles: Vec<ObjectHandle> = OBJECTS
        .iter()
        .map(|(name, adt)| {
            db.register_object(format!("{TENANT}/{name}"), adt.instantiate())
                .expect("fresh registration")
        })
        .collect();
    let exec = LocalExecutor::new();
    let results: Rc<RefCell<BTreeMap<usize, String>>> = Rc::default();
    let mut queues: Vec<Rc<WorkQueue>> = Vec::new();
    for (index, step) in steps.iter().enumerate() {
        match step {
            Step::Begin => {
                let txn = db.begin();
                results
                    .borrow_mut()
                    .insert(index, format!("begun T{}", txn.id().0));
                let queue = Rc::new(WorkQueue::default());
                queues.push(queue.clone());
                let results = results.clone();
                exec.spawn(async move {
                    reference_session(txn, queue, results).await;
                });
            }
            Step::Exec(txn, object, call) => {
                queues[*txn].push(index, Work::Exec(handles[*object].clone(), call.clone()));
            }
            Step::Commit(txn) => {
                queues[*txn].push(index, Work::Commit);
            }
        }
        exec.run_until_stalled();
    }
    exec.run_until_stalled();

    db.verify_serializable().unwrap();
    db.check_invariants().unwrap();
    let states = committed_states(db.database(), &handles);
    let stats = stats_line(db.database());
    drop(queues);
    let results = Rc::try_unwrap(results)
        .ok()
        .expect("all session futures finished")
        .into_inner();
    Trace {
        results,
        states,
        stats,
    }
}

fn assert_equivalent(scripts: &[Vec<(usize, OpCall)>], policy_choice: bool) {
    let steps = interleave(scripts);
    for shards in [1usize, 4] {
        let wire = run_wire(&steps, policy_choice, shards);
        let reference = run_reference(&steps, policy_choice, shards);
        assert_eq!(
            wire, reference,
            "wire and in-process executions diverged at {shards} shard(s) \
             (policy_choice={policy_choice}, steps={steps:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: driving the kernel through the TCP
    /// front-end is observationally equivalent to driving it in-process
    /// — per-step results (including kernel error frames), final
    /// committed states and kernel counters all match, unsharded and
    /// sharded.
    #[test]
    fn wire_equals_in_process(
        scripts in arb_scripts(),
        policy_choice in any::<bool>(),
    ) {
        assert_equivalent(&scripts, policy_choice);
    }
}

/// A deterministic pin of the classic conflict shape (uncommitted push,
/// blocked pop, resolution at commit) so a differential break is
/// debuggable without shrinking.
#[test]
fn pinned_conflict_scenario_matches() {
    let scripts: Vec<Vec<(usize, OpCall)>> = vec![
        vec![
            (0, StackOp::Push(Value::Int(7)).to_call()),
            (1, CounterOp::Increment(1).to_call()),
        ],
        // Round-robin injection puts this pop right after the push,
        // while the push is still uncommitted: it must block, and must
        // block identically on both sides.
        vec![(0, StackOp::Pop.to_call())],
        vec![
            (1, CounterOp::Increment(2).to_call()),
            (1, CounterOp::Read.to_call()),
        ],
    ];
    for policy_choice in [false, true] {
        assert_equivalent(&scripts, policy_choice);
    }
}

/// The blocked pop really blocks on the wire: inject the conflict, fence
/// it, and observe the kernel state through the served database before
/// the resolution arrives.
#[test]
fn wire_conflicts_block_in_the_kernel() {
    let db = AsyncDatabase::with_config(DatabaseConfig::new(SchedulerConfig::default()));
    let server = Server::start(db, ServerConfig::default().with_workers(1)).expect("bind");
    let mut client = NetClient::connect(server.local_addr(), TENANT).expect("connect");
    client.register("stack", AdtType::Stack).unwrap();

    let t1 = client.begin().unwrap();
    client
        .exec(t1, "stack", StackOp::Push(Value::Int(1)).to_call())
        .unwrap();
    let t2 = client.begin().unwrap();
    let pop = client
        .send(&Request::Exec {
            txn: t2,
            object: "stack".to_owned(),
            call: StackOp::Pop.to_call(),
        })
        .unwrap();
    client.ping().unwrap();
    assert_eq!(
        server.db().txn_state(sbcc_core::TxnId(t2)),
        Some(TxnState::Blocked),
        "the fenced pop must be admitted and blocked"
    );
    client.commit(t1).unwrap();
    let resp = client.recv_for(pop).unwrap();
    assert_eq!(normalize_response(&resp), "Value(Int(1))");
    client.commit(t2).unwrap();
    server.shutdown();
}
