//! End-to-end loopback tests: a real [`Server`] on `127.0.0.1`, driven
//! by [`NetClient`]s over real sockets, verified against the served
//! database in-process.

use sbcc_adt::{AdtOp, CounterOp, OpCall, OpResult, StackOp, Value};
use sbcc_core::aio::AsyncDatabase;
use sbcc_core::{SchedulerConfig, TxnId, TxnState};
use sbcc_net::{
    AdtType, ErrorCode, NetClient, NetError, Request, Response, Server, ServerConfig,
};
use std::net::Shutdown;
use std::time::{Duration, Instant};

fn start_server(config: ServerConfig) -> Server {
    Server::start(AsyncDatabase::new(SchedulerConfig::default()), config)
        .expect("bind loopback server")
}

/// Poll `cond` until it holds (the server side of a socket event is
/// asynchronous; a few milliseconds of settling is expected).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn counter_roundtrip_and_clean_shutdown() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "acme").expect("connect");
    client.register("hits", AdtType::Counter).unwrap();
    let txn = client.begin().unwrap();
    for _ in 0..3 {
        let r = client
            .exec(txn, "hits", CounterOp::Increment(2).to_call())
            .unwrap();
        assert_eq!(r, OpResult::Ok);
    }
    let r = client.exec(txn, "hits", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(6)));
    let pseudo = client.commit(txn).unwrap();
    assert!(!pseudo, "no concurrent transaction to depend on");

    server.db().verify_serializable().unwrap();
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.connections_open, 0, "no leaked connections");
    assert_eq!(stats.transactions_in_flight, 0, "no leaked sessions");
    assert_eq!(stats.sessions_auto_aborted, 0);
}

#[test]
fn exec_batch_matches_sequential_execs() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    client.register("a", AdtType::Stack).unwrap();
    client.register("b", AdtType::Counter).unwrap();

    let ops = |v: i64| -> Vec<(String, OpCall)> {
        vec![
            ("a".to_owned(), StackOp::Push(Value::Int(v)).to_call()),
            ("b".to_owned(), CounterOp::Increment(v).to_call()),
            ("a".to_owned(), StackOp::Top.to_call()),
            ("b".to_owned(), CounterOp::Read.to_call()),
        ]
    };

    // Abort after collecting results so the second run starts from the
    // same committed state.
    let t1 = client.begin().unwrap();
    let batched = client.exec_batch(t1, ops(5)).unwrap();
    client.abort(t1).unwrap();

    let t2 = client.begin().unwrap();
    let sequential: Vec<OpResult> = ops(5)
        .into_iter()
        .map(|(object, call)| client.exec(t2, &object, call).unwrap())
        .collect();
    client.abort(t2).unwrap();

    assert_eq!(batched, sequential);
    server.shutdown();
}

#[test]
fn declared_batch_group_admits_and_falls_back_over_the_wire() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    client.register("a", AdtType::Stack).unwrap();
    client.register("b", AdtType::Counter).unwrap();

    // A correctly declared batch on quiescent objects: whole group
    // admitted in one pass, zero per-op classification.
    let t1 = client.begin().unwrap();
    let results = client
        .exec_batch_declared(
            t1,
            vec![
                ("a".to_owned(), StackOp::Push(Value::Int(3)).to_call()),
                ("b".to_owned(), CounterOp::Increment(4).to_call()),
                ("b".to_owned(), CounterOp::Read.to_call()),
            ],
            vec![],
            vec!["a".to_owned(), "b".to_owned()],
        )
        .unwrap();
    assert_eq!(
        results,
        vec![
            OpResult::Ok,
            OpResult::Ok,
            OpResult::Value(Value::Int(4)),
        ]
    );
    client.commit(t1).unwrap();
    // Declared admission is per shard-run ("a" and "b" may land in
    // different shards under SBCC_SHARDS), so assert the invariant
    // rather than a run count: every run group-admitted.
    let stats = server.db().stats();
    assert!(stats.declared_admitted >= 1);
    assert_eq!(stats.declared_batches, stats.declared_admitted);
    assert_eq!(stats.declared_escalations, 0);
    assert_eq!(stats.declared_fallbacks, 0);

    // An under-declared batch (touches `b`, declares only `a`): the
    // server detects the mis-declaration and escalates to the
    // classified path — same results, no trust in the declaration.
    let t2 = client.begin().unwrap();
    let results = client
        .exec_batch_declared(
            t2,
            vec![
                ("a".to_owned(), StackOp::Top.to_call()),
                ("b".to_owned(), CounterOp::Increment(1).to_call()),
            ],
            vec![],
            vec!["a".to_owned()],
        )
        .unwrap();
    assert_eq!(
        results,
        vec![OpResult::Value(Value::Int(3)), OpResult::Ok]
    );
    client.commit(t2).unwrap();
    // Exactly one shard-run holds the undeclared call on `b` (at one
    // shard the whole batch is that run), so exactly one escalation —
    // whatever the shard count, the partition invariant holds.
    let stats = server.db().stats();
    assert_eq!(stats.declared_escalations, 1);
    assert_eq!(
        stats.declared_batches,
        stats.declared_admitted + stats.declared_fallbacks + stats.declared_escalations
    );

    server.db().verify_serializable().unwrap();
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.transactions_in_flight, 0, "no leaked sessions");
}

#[test]
fn snapshot_transactions_read_their_begin_stamp_over_the_wire() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "acme").expect("connect");
    client.register("hits", AdtType::Counter).unwrap();

    // Commit 5, then open a snapshot, then commit 100 more from a later
    // transaction: the snapshot keeps seeing 5.
    let w1 = client.begin().unwrap();
    client
        .exec(w1, "hits", CounterOp::Increment(5).to_call())
        .unwrap();
    client.commit(w1).unwrap();

    let snap = client.begin_snapshot().unwrap();
    let w2 = client.begin().unwrap();
    client
        .exec(w2, "hits", CounterOp::Increment(100).to_call())
        .unwrap();
    client.commit(w2).unwrap();

    let r = client.exec(snap, "hits", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(5)), "snapshot ignores w2");
    let r = client.exec(snap, "hits", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(5)), "snapshot reads are stable");
    client.commit(snap).unwrap();

    // A fresh classified transaction sees the full committed total.
    let t = client.begin().unwrap();
    let r = client.exec(t, "hits", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(105)));
    client.abort(t).unwrap();

    server.db().verify_serializable().unwrap();
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.transactions_in_flight, 0, "no leaked sessions");
}

#[test]
fn tenants_get_disjoint_namespaces() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut alice = NetClient::connect(addr, "alice").expect("connect");
    let mut bob = NetClient::connect(addr, "bob").expect("connect");
    alice.register("c", AdtType::Counter).unwrap();
    bob.register("c", AdtType::Counter).unwrap();

    let ta = alice.begin().unwrap();
    alice.exec(ta, "c", CounterOp::Increment(10).to_call()).unwrap();
    alice.commit(ta).unwrap();

    // Bob's `c` is a different object: his read sees zero, immediately —
    // no conflict with Alice's traffic either.
    let tb = bob.begin().unwrap();
    let r = bob.exec(tb, "c", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(0)));
    bob.commit(tb).unwrap();

    // And an unregistered name is refused per-tenant.
    let mut carol = NetClient::connect(addr, "carol").expect("connect");
    let tc = carol.begin().unwrap();
    let err = carol
        .exec(tc, "c", CounterOp::Read.to_call())
        .expect_err("carol never registered c");
    match err {
        NetError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownObject),
        other => panic!("expected unknown-object, got {other}"),
    }
    carol.abort(tc).unwrap();
    server.shutdown();
}

#[test]
fn hello_is_mandatory_and_checked() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    // No hello: everything but ping is refused.
    let mut raw = NetClient::connect(addr, "x").expect("connect");
    // (connect already sent hello for this client — use a raw frame to
    // simulate a duplicate, which is a protocol error.)
    let id = raw
        .send(&Request::Hello {
            version: sbcc_net::PROTOCOL_VERSION,
            tenant: "y".to_owned(),
        })
        .unwrap();
    match raw.recv_for(id).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn unknown_opcode_gets_protocol_error_then_close() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    // body = request id (8) + unknown opcode 0x7f
    let mut frame = Vec::new();
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.extend_from_slice(&77u64.to_le_bytes());
    frame.push(0x7f);
    client.send_raw(&frame).unwrap();

    let (id, resp) = client.recv().expect("error frame before close");
    assert_eq!(id, 0, "malformed frames are answered with request id 0");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error, got {other:?}"),
    }
    // The server hangs up after a protocol violation.
    match client.recv() {
        Err(NetError::Io(_)) => {}
        other => panic!("expected EOF after protocol violation, got {other:?}"),
    }
    wait_until("connection teardown", || {
        server.net_stats().connections_open == 0
    });
    server.shutdown();
}

#[test]
fn oversized_frame_is_refused_without_buffering() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    // Promise a body far beyond MAX_FRAME_LEN; send only the prefix.
    client
        .send_raw(&((sbcc_net::MAX_FRAME_LEN as u32 + 1).to_le_bytes()))
        .unwrap();
    let (id, resp) = client.recv().expect("error frame before close");
    assert_eq!(id, 0);
    match resp {
        Response::Error { code, detail } => {
            assert_eq!(code, ErrorCode::Protocol);
            assert!(detail.contains("oversized"), "detail: {detail}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn truncated_frame_then_close_leaks_nothing() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    // A frame promising 100 bytes, delivering 3, then a half-close.
    client.send_raw(&100u32.to_le_bytes()).unwrap();
    client.send_raw(&[1, 2, 3]).unwrap();
    client.stream().shutdown(Shutdown::Write).unwrap();

    wait_until("connection teardown", || {
        server.net_stats().connections_open == 0
    });
    let stats = server.shutdown();
    assert_eq!(stats.transactions_in_flight, 0);
}

#[test]
fn mid_transaction_disconnect_auto_aborts_and_unblocks_waiters() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut holder = NetClient::connect(addr, "t").expect("connect");
    holder.register("s", AdtType::Stack).unwrap();
    let t1 = holder.begin().unwrap();
    let r = holder
        .exec(t1, "s", StackOp::Push(Value::Int(7)).to_call())
        .unwrap();
    assert_eq!(r, OpResult::Ok);

    // A second connection pops: pop does not commute with the
    // uncommitted push, so the kernel blocks it.
    let mut waiter = NetClient::connect(addr, "t").expect("connect");
    let t2 = waiter.begin().unwrap();
    let pop_id = waiter
        .send(&Request::Exec {
            txn: t2,
            object: "s".to_owned(),
            call: StackOp::Pop.to_call(),
        })
        .unwrap();
    waiter.ping().unwrap(); // fence: the pop has been admitted
    wait_until("pop to block", || {
        server.db().txn_state(TxnId(t2)) == Some(TxnState::Blocked)
    });

    // Kill the holder's connection mid-transaction. The server must
    // auto-abort its session, which unblocks the waiter.
    holder.stream().shutdown(Shutdown::Both).unwrap();
    drop(holder);

    let resp = waiter.recv_for(pop_id).expect("pop resolves");
    // The push was rolled back with the abort: the pop sees an empty
    // committed stack.
    assert_eq!(resp, Response::Result(OpResult::Null));
    assert_eq!(server.db().txn_state(TxnId(t1)), Some(TxnState::Aborted));
    let pseudo = waiter.commit(t2).unwrap();
    assert!(!pseudo);

    wait_until("holder session teardown", || {
        server.net_stats().sessions_auto_aborted == 1
    });
    server.db().verify_serializable().unwrap();
    drop(waiter);
    let stats = server.shutdown();
    assert_eq!(stats.sessions_auto_aborted, 1);
    assert_eq!(stats.transactions_in_flight, 0, "no stranded sessions");
    assert_eq!(stats.connections_open, 0);
}

#[test]
fn begin_beyond_in_flight_cap_is_shed_with_busy() {
    let server = start_server(
        ServerConfig::default()
            .with_workers(1)
            .with_max_in_flight(2),
    );
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    let a = client.begin().unwrap();
    let b = client.begin().unwrap();
    let err = client.begin().expect_err("third concurrent begin must shed");
    assert!(err.is_busy(), "expected busy shed, got {err}");
    assert!(server.net_stats().shed_busy >= 1);

    // Retiring one admits the next — backpressure, not a hard cap.
    client.abort(a).unwrap();
    wait_until("slot to free", || {
        server.net_stats().transactions_in_flight < 2
    });
    let c = client.begin().expect("slot freed by abort");
    client.abort(b).unwrap();
    client.abort(c).unwrap();

    let stats = server.shutdown();
    assert!(stats.shed_busy >= 1);
    assert_eq!(stats.transactions_in_flight, 0);
}

#[test]
fn read_timeout_fires_only_with_live_transactions() {
    let server = start_server(
        ServerConfig::default()
            .with_workers(1)
            .with_read_timeout(Duration::from_millis(40))
            .with_poll_interval(Duration::from_millis(2)),
    );
    let addr = server.local_addr();

    // Idle connection (no live transaction): outlives many timeouts.
    let mut idle = NetClient::connect(addr, "t").expect("connect");
    std::thread::sleep(Duration::from_millis(120));
    idle.ping().expect("idle connections are not reaped");

    // A connection holding a transaction and then going silent is
    // reaped, and its session auto-aborted.
    let mut holder = NetClient::connect(addr, "t").expect("connect");
    holder.register("c", AdtType::Counter).unwrap();
    let t = holder.begin().unwrap();
    holder
        .exec(t, "c", CounterOp::Increment(1).to_call())
        .unwrap();
    wait_until("read timeout to fire", || {
        server.net_stats().read_timeouts >= 1
    });
    wait_until("session auto-abort", || {
        server.net_stats().sessions_auto_aborted >= 1
    });
    assert_eq!(server.db().txn_state(TxnId(t)), Some(TxnState::Aborted));

    idle.ping().expect("idle connection still alive");
    drop(idle);
    drop(holder);
    let stats = server.shutdown();
    assert_eq!(stats.read_timeouts, 1);
    assert_eq!(stats.transactions_in_flight, 0);
    assert_eq!(stats.connections_open, 0);
}

#[test]
fn kernel_errors_cross_the_wire_without_killing_the_session() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "t").expect("connect");
    client.register("c", AdtType::Counter).unwrap();

    // Unknown wire transaction ids are refused with the kernel's code.
    let err = client
        .exec(9999, "c", CounterOp::Read.to_call())
        .expect_err("unknown txn");
    match err {
        NetError::Server { code, detail } => {
            assert_eq!(code, ErrorCode::UnknownTransaction);
            assert!(detail.contains("T9999"), "detail: {detail}");
        }
        other => panic!("expected server error, got {other}"),
    }

    // Committing twice: the second commit is an invalid-state error from
    // the kernel — and the connection survives to run a fresh txn.
    let t = client.begin().unwrap();
    client.commit(t).unwrap();
    let id = client.send(&Request::Commit { txn: t }).unwrap();
    match client.recv_for(id).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownTransaction),
        other => panic!("expected error frame, got {other:?}"),
    }

    let t2 = client.begin().unwrap();
    let r = client.exec(t2, "c", CounterOp::Read.to_call()).unwrap();
    assert_eq!(r, OpResult::Value(Value::Int(0)));
    client.commit(t2).unwrap();
    server.shutdown();
}

#[test]
fn reconnect_rejoins_the_same_tenant_namespace() {
    let server = start_server(ServerConfig::default().with_workers(1));
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr, "acme").expect("connect");
    client.register("c", AdtType::Counter).unwrap();
    let t = client.begin().unwrap();
    client
        .exec(t, "c", CounterOp::Increment(10).to_call())
        .unwrap();
    client.commit(t).unwrap();

    // An uncommitted transaction rides into the reconnect: the server's
    // disconnect sweep must abort it, not leak it.
    let open = client.begin().unwrap();
    client
        .exec(open, "c", CounterOp::Increment(90).to_call())
        .unwrap();

    client.reconnect().expect("reconnect");

    // Same tenant, same namespace: the committed counter is visible
    // without re-registering (and re-registering stays idempotent).
    wait_until("disconnect sweep to abort the open txn", || {
        server.db().txn_state(TxnId(open)) == Some(TxnState::Aborted)
    });
    client.register("c", AdtType::Counter).unwrap();
    let t2 = client.begin().unwrap();
    let r = client.exec(t2, "c", CounterOp::Read.to_call()).unwrap();
    assert_eq!(
        r,
        OpResult::Value(Value::Int(10)),
        "committed state survives, the swept increment does not"
    );
    client.commit(t2).unwrap();

    // The old wire transaction id is dead on the new connection.
    let err = client
        .exec(open, "c", CounterOp::Read.to_call())
        .expect_err("swept txn");
    match err {
        NetError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownTransaction),
        other => panic!("expected server error, got {other}"),
    }

    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 2, "one reconnect = one new accept");
    assert_eq!(stats.transactions_in_flight, 0, "no leaked sessions");
}
