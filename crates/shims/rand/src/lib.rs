//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate implements
//! exactly the API surface the workspace uses: [`Rng`] with `gen`,
//! `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. The statistical quality is more than
//! adequate for simulation workloads; streams are deterministic per seed
//! but do **not** reproduce the bit streams of the real crates-io `rand`.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform double in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly (`rng.gen_range(lo..hi)`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against landing exactly on `end` through rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed, cloneable, and fast.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling of slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..200).any(|_| rng.gen_bool(0.0)));
        assert!((0..200).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is virtually never identity");
    }

    #[test]
    fn shuffle_works_through_unsized_refs() {
        // Mirrors ConflictTable::random's use: `R: Rng + ?Sized`.
        fn go<R: Rng + ?Sized>(rng: &mut R) -> Vec<u8> {
            let mut v = vec![1u8, 2, 3, 4];
            v.shuffle(rng);
            v
        }
        let mut rng = StdRng::seed_from_u64(6);
        let _ = go(&mut rng);
    }
}
