//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` /
//! `measurement_time` / `bench_function` / `finish`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a wall-clock warm-up, the harness picks an
//! iteration count per sample so one sample costs roughly
//! `measurement_time / sample_size`, times `sample_size` samples, and
//! reports the mean and best time per iteration. Passing `--test` (as
//! `cargo bench -- --test` does) runs every benchmark once for a smoke
//! check instead of measuring.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement markers (only wall time is supported).
pub mod measurement {
    /// Wall-clock measurement.
    #[derive(Debug, Clone, Copy)]
    pub struct WallTime;
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run the routine `iterations` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Harness entry point, normally constructed by [`criterion_main!`].
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Apply command-line arguments (`--test`, name filters; other flags are
    /// accepted and ignored for CLI compatibility).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags (with possible values) we accept and ignore.
                "--warm-up-time" | "--measurement-time" | "--sample-size" | "--save-baseline"
                | "--baseline" | "--load-baseline" | "--output-format" | "--color" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                filter => self.filters.push(filter.to_owned()),
            }
        }
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            _measurement: std::marker::PhantomData,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock warm-up budget before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Define and (unless filtered out) immediately run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches(&id) {
            return self;
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                iterations: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("test {id} ... ok");
            return self;
        }

        // Warm up and estimate the per-iteration cost.
        let mut per_iter = Duration::from_nanos(1);
        let warm_up_start = Instant::now();
        let mut warm_iters = 1u64;
        while warm_up_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iterations: warm_iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / warm_iters as u32;
            }
            warm_iters = (warm_iters * 2).min(1 << 20);
        }

        // Pick iterations per sample so a sample costs roughly
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters = (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iterations: iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are never NaN"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let best = samples[0];
        let median = samples[samples.len() / 2];
        println!(
            "{id:<60} mean {:>12}  median {:>12}  best {:>12}  ({} samples x {} iters)",
            format_ns(mean),
            format_ns(median),
            format_ns(best),
            samples.len(),
            iters
        );
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iterations: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn groups_run_benchmarks_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filters: Vec::new(),
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(2));
            g.bench_function("fast", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["only_this".to_owned()],
        };
        let mut ran_other = false;
        let mut ran_match = false;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("other", |b| b.iter(|| ran_other = true));
            g.bench_function("only_this_one", |b| b.iter(|| ran_match = true));
        }
        assert!(!ran_other);
        assert!(ran_match);
    }

    #[test]
    fn measurement_mode_produces_samples_quickly() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn ns_formatting() {
        assert!(format_ns(12.3).contains("ns"));
        assert!(format_ns(12_300.0).contains("us"));
        assert!(format_ns(12_300_000.0).contains("ms"));
        assert!(format_ns(2_000_000_000.0).contains('s'));
    }
}
