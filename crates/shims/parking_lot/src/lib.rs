//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `parking_lot` calling conventions the workspace relies on:
//! `Mutex::lock` returns a guard directly (poisoning is swallowed — a
//! panicking holder does not poison the lock, matching parking_lot), and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};

/// A mutex with parking_lot's panic-free locking interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Acquire the lock only if it is free right now (`None` when another
    /// thread holds it), without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally holds an `Option` so [`Condvar::wait`] can temporarily take
/// the underlying std guard by value; it is always `Some` outside `wait`.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable with parking_lot's `wait(&mut guard)` interface.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded lock and block until notified;
    /// re-acquires the lock before returning. Spurious wakeups are possible,
    /// exactly as with the real crate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held_and_succeeds_after() {
        let m = Mutex::new(5);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        *m.try_lock().expect("free again") += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn wait_and_notify_round_trip() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let shared2 = shared.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*shared2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*shared;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 7, "parking_lot semantics: no poisoning");
    }
}
