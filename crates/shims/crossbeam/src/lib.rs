//! Offline stand-in for `crossbeam::scope`, backed by `std::thread::scope`.
//!
//! Only the scoped-thread API the workspace's stress tests use is provided:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); })` with the closure receiving
//! the scope (so spawned threads could spawn further threads).

use std::thread::{Scope as StdScope, ScopedJoinHandle};

/// A scope handle passed to [`scope`]'s closure and to every spawned thread.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope StdScope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope, mirroring
    /// crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let this = *self;
        self.inner.spawn(move || f(&this))
    }
}

/// Run a closure with a thread scope; all spawned threads are joined before
/// this returns. Panics from spawned threads propagate after the join (the
/// `Err` arm therefore never materialises here; it exists for crossbeam API
/// compatibility).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let r = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            7
        })
        .unwrap();
        assert_eq!(r, 7);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
