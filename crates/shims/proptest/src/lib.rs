//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(..)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, `prop_oneof!`, [`Just`], [`any`],
//! integer-range and tuple strategies, `prop_map` / `prop_flat_map` /
//! `boxed`, and the `collection::{vec, btree_set, btree_map}` builders.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases with a
//! deterministic per-test seed. Failing inputs are reported (via `Debug`
//! formatting inside the assertion message) but **not shrunk** — this shim
//! trades minimal counterexamples for zero dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (only the `cases` knob is honoured).
///
/// Like real proptest, the `PROPTEST_CASES` environment variable
/// overrides the case count — both the default and explicit
/// [`ProptestConfig::with_cases`] values — so CI can re-run a suite at a
/// larger case count without touching the tests.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

/// Parse a `PROPTEST_CASES` value; `None` when absent or unparsable.
fn parse_cases(raw: Option<&str>) -> Option<u32> {
    raw?.trim().parse().ok()
}

/// The `PROPTEST_CASES` override, if set and parsable.
fn env_cases() -> Option<u32> {
    parse_cases(std::env::var("PROPTEST_CASES").ok().as_deref())
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases (unless `PROPTEST_CASES` overrides).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reject: bool,
    message: String,
}

impl TestCaseError {
    /// A genuine assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            reject: false,
            message: message.into(),
        }
    }

    /// The case's inputs did not satisfy a `prop_assume!`; it is skipped.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            reject: true,
            message: message.into(),
        }
    }

    /// `true` for rejections (skipped cases).
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. `generate` draws one value; combinators compose.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy yielding a constant (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }
}

/// Uniform choice between erased alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Inclusive-lower, exclusive-upper bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    /// Strategy for `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicates may shrink the set below the drawn size; that is an
            // acceptable deviation from real proptest for these tests.
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A set of up to `size` elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// A map of up to `size` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

/// FNV-1a hash of a test name, used to derive per-test seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one proptest-style test: run `config.cases` successful cases with
/// deterministic seeds, skipping rejected cases, panicking on failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut executed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while executed < config.cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => executed += 1,
            Err(e) if e.is_reject() => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(20) + 1024,
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(e) => panic!("proptest '{name}' failed (case #{case}, seed {seed:#x}): {e}"),
        }
        case += 1;
    }
}

/// Define property tests. Supports the standard shape used in this
/// workspace: an optional `#![proptest_config(..)]` followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $fname:ident($($argpat:pat in $argstrat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $fname() {
                $crate::run_cases($cfg, stringify!($fname), |__proptest_rng| {
                    $(let $argpat = $crate::Strategy::generate(&($argstrat), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($t:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($t)*
        }
    };
}

/// Assert inside a proptest body; failure fails only the current case's
/// test with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0u32..7).generate(&mut rng);
            assert!(v < 7);
            let (a, b) = ((0i64..3), (10usize..=12)).generate(&mut rng);
            assert!((0..3).contains(&a) && (10..=12).contains(&b));
            let xs = crate::collection::vec(0u8..4, 2..5).generate(&mut rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 4));
            let set = crate::collection::btree_set(0u8..4, 0..6).generate(&mut rng);
            assert!(set.len() < 6);
            let map = crate::collection::btree_map(0u8..4, 0i64..9, 1..4).generate(&mut rng);
            assert!(map.len() < 4 && !map.is_empty() || map.len() <= 3);
        }
    }

    #[test]
    fn map_flat_map_oneof_and_just() {
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        let s = prop_oneof![
            Just(100u32),
            (0u32..10).prop_map(|v| v + 50),
        ];
        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..2, n..n + 1));
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                100 => saw_just = true,
                v if (50..60).contains(&v) => saw_mapped = true,
                other => panic!("unexpected {other}"),
            }
            let xs = flat.generate(&mut rng);
            assert!((1..4).contains(&xs.len()));
        }
        assert!(saw_just && saw_mapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(v in 0u32..50, flag in any::<bool>()) {
            prop_assume!(v != 13);
            prop_assert!(v < 50);
            prop_assert_eq!(flag, flag, "flag equals itself ({})", v);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(pair in (0i64..4, 0i64..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn case_count_override_parsing() {
        // The override logic is tested through the pure parser — mutating
        // the process-global env var would race sibling tests on the
        // parallel harness.
        assert_eq!(crate::parse_cases(Some("7")), Some(7));
        assert_eq!(crate::parse_cases(Some(" 1024 ")), Some(1024));
        assert_eq!(crate::parse_cases(Some("not a number")), None);
        assert_eq!(crate::parse_cases(Some("")), None);
        assert_eq!(crate::parse_cases(None), None);
        // Without the env var set (the harness never sets it), explicit
        // and default case counts pass through untouched.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(ProptestConfig::default().cases, 64);
            assert_eq!(ProptestConfig::with_cases(99).cases, 99);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::run_cases(ProptestConfig::with_cases(8), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
