//! WAL fault injection under the virtual clock and seeded crash images.
//!
//! Two fault families, both deterministic:
//!
//! * the **group-commit window** is driven from a
//!   [`sbcc_core::chaos::ClockHook`] instead of the wall clock — with a
//!   one-hour real window, a commit can only be acknowledged if the
//!   virtual clock fired the flush, so the test proves the durability
//!   wait is gated on the flusher and not on a hidden inline fsync;
//! * **seeded truncation sweep** — crash images derived from a pinned
//!   seed cut one shard's log at arbitrary byte offsets (including
//!   mid-record, the torn tail a crash during a group-commit flush
//!   leaves), and every image must recover to a per-shard prefix,
//!   identically at 1 and 4 shards.

use sbcc_adt::{Counter, CounterOp, Stack, StackOp, Value};
use sbcc_core::chaos::{clear_clock_hook, install_clock_hook, ClockHook, TimeoutPoint};
use sbcc_core::{
    CommitOutcome, Database, DatabaseConfig, FsyncPolicy, SchedulerConfig, ShardCount, WalConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Pinned seed for the flush countdown and the truncation offsets
/// (SplitMix64 chain). Bump only with a comment explaining what the old
/// schedule stopped covering.
const PINNED_WAL_SEED: u64 = 0x5bcc_3a1d;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "sbcc-dst-wal-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn config(shards: usize, wal: WalConfig) -> DatabaseConfig {
    DatabaseConfig {
        scheduler: SchedulerConfig::default(),
        shards: ShardCount::Fixed(shards),
        wal: Some(wal),
    }
}

// ---------------------------------------------------------------------
// Virtual clock drives the group-commit flush.
// ---------------------------------------------------------------------

/// Answers only the group-commit point: "window not elapsed" `fire_at`
/// times, then fires on every later poll (the flusher needs repeated
/// fires to drain commits that arrive after the first flush).
struct GroupCommitClock {
    fire_at: u64,
    consulted: AtomicU64,
}

impl ClockHook for GroupCommitClock {
    fn timeout_fires(&self, point: TimeoutPoint) -> Option<bool> {
        if point != TimeoutPoint::GroupCommit {
            return None;
        }
        let n = self.consulted.fetch_add(1, Ordering::Relaxed);
        Some(n >= self.fire_at)
    }
}

/// Clears the process-global hook even if an assertion fails.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        clear_clock_hook();
    }
}

#[test]
fn virtual_clock_drives_the_group_commit_flush() {
    // An hour of real window: if a commit is ever acknowledged, the
    // virtual clock flushed it.
    let fire_at = 3 + splitmix64(PINNED_WAL_SEED) % 8;
    let clock = Arc::new(GroupCommitClock {
        fire_at,
        consulted: AtomicU64::new(0),
    });
    let _guard = HookGuard;
    install_clock_hook(clock.clone());

    let dir = ScratchDir::new("clock");
    let db = Database::with_config(config(
        1,
        WalConfig::new(dir.path())
            .with_fsync(FsyncPolicy::GroupCommit)
            .with_window(Duration::from_secs(3600)),
    ));
    let hits = db.register("hits", Counter::new());

    for k in 0..4 {
        let txn = db.begin();
        txn.exec(&hits, CounterOp::Increment(k)).unwrap();
        // This `commit` parks on the durability ticket until the flusher
        // thread — paced purely by the countdown — fsyncs the batch.
        assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);
    }

    assert!(
        clock.consulted.load(Ordering::Relaxed) > fire_at,
        "the flusher must have consulted the virtual clock past its fire step"
    );

    // Every acknowledged commit is on disk: a crash image taken while the
    // database is still alive recovers all four.
    let image = ScratchDir::new("clock-image");
    copy_dir(dir.path(), image.path());
    drop(db);
    let recovered = Database::with_config(config(
        1,
        WalConfig::new(image.path()).with_fsync(FsyncPolicy::Never),
    ));
    assert_eq!(recovered.stats().commits, 4);
    let read = recovered.begin();
    let hits = recovered.handle::<Counter>("hits").unwrap();
    assert_eq!(
        read.exec(&hits, CounterOp::Read).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(6))
    );
}

// ---------------------------------------------------------------------
// Seeded truncation sweep over crash images.
// ---------------------------------------------------------------------

/// Deterministic workload: single-shard commits only, so *any* byte
/// truncation of one shard's log is a crash image some interleaving of
/// flush and power loss could have produced.
fn build_log(dir: &Path, shards: usize) -> usize {
    let db = Database::with_config(config(
        shards,
        WalConfig::new(dir).with_fsync(FsyncPolicy::Always),
    ));
    let stack = db.register("journal", Stack::new());
    let hits = db.register("hits", Counter::new());
    let txns = 16;
    for k in 0..txns {
        let txn = db.begin();
        if k % 2 == 0 {
            txn.exec(&stack, StackOp::Push(Value::Int(k as i64))).unwrap();
        } else {
            txn.exec(&hits, CounterOp::Increment(k as i64)).unwrap();
        }
        txn.commit().unwrap();
    }
    txns
}

/// Recover an image at `shards` shards and digest every object's
/// committed state plus the commit count.
fn recover_digest(image: &Path, shards: usize) -> (u64, Vec<Option<String>>) {
    let scratch = ScratchDir::new("sweep-recover");
    copy_dir(image, scratch.path());
    let db = Database::with_config(config(
        shards,
        WalConfig::new(scratch.path()).with_fsync(FsyncPolicy::Never),
    ));
    let digests = ["journal", "hits"]
        .iter()
        .map(|name| {
            db.with_sharded_kernel(|k| {
                k.object_id(name)
                    .and_then(|id| k.with_object_committed(id, |o| o.debug_state()))
            })
        })
        .collect();
    (db.stats().commits, digests)
}

#[test]
fn seeded_truncation_sweep_recovers_identically_at_1_and_4_shards() {
    let dir = ScratchDir::new("sweep");
    let total = build_log(dir.path(), 2) as u64;

    let victim = sbcc_core::wal::shard_log_path(dir.path(), 0);
    let full_len = std::fs::metadata(&victim).unwrap().len();
    assert!(full_len > 0, "shard 0 must own part of the workload");

    let mut z = PINNED_WAL_SEED;
    let mut commit_counts = Vec::new();
    for _ in 0..24 {
        z = splitmix64(z);
        let cut = z % (full_len + 1);

        let image = ScratchDir::new("sweep-image");
        copy_dir(dir.path(), image.path());
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(image.path().join("shard-0.log"))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let (commits_1, digest_1) = recover_digest(image.path(), 1);
        let (commits_4, digest_4) = recover_digest(image.path(), 4);
        assert_eq!(
            commits_1, commits_4,
            "cut at {cut}: shard count must not change what recovers"
        );
        assert_eq!(digest_1, digest_4, "cut at {cut}: recovered state differs");
        assert!(commits_1 <= total, "cut at {cut}: more commits than were run");
        // Recovery must be stable: re-recovering the (repaired) image
        // reproduces the same state byte-for-byte.
        let (commits_again, digest_again) = recover_digest(image.path(), 1);
        assert_eq!((commits_again, digest_again), (commits_1, digest_1));
        commit_counts.push(commits_1);
    }

    // The sweep must actually exercise partial images, not just the
    // trivial endpoints.
    assert!(commit_counts.iter().any(|&c| c > 0 && c < total));
    assert!(commit_counts.iter().any(|&c| c < total));
}
