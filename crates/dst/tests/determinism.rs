//! The harness's core guarantee: a seed is a complete description of a
//! run. Same seed ⇒ byte-identical yield/fault trace, identical decision
//! script, identical verdict — across runs, and across the scripted
//! replay path the shrinker depends on.

use sbcc_dst::{run_scripted, run_seed, DstConfig, Verdict};

#[test]
fn same_seed_twice_is_byte_identical() {
    let cfg = DstConfig::default();
    for seed in [7u64, 42, 133] {
        let a = run_seed(seed, &cfg);
        let b = run_seed(seed, &cfg);
        assert_eq!(a.verdict, b.verdict, "seed {seed}: verdict diverged");
        assert_eq!(a.trace, b.trace, "seed {seed}: trace diverged");
        assert_eq!(a.decisions, b.decisions, "seed {seed}: decisions diverged");
        assert_eq!(a.steps, b.steps, "seed {seed}: step count diverged");
        assert_eq!(a.commits, b.commits, "seed {seed}: commit count diverged");
    }
}

#[test]
fn scripted_replay_of_recorded_decisions_reproduces_the_run() {
    let cfg = DstConfig::default();
    for seed in [9u64, 58] {
        let live = run_seed(seed, &cfg);
        assert_eq!(live.verdict, Verdict::Pass, "seed {seed} must be clean");
        let replay = run_scripted(seed, &cfg, live.decisions.clone());
        assert_eq!(replay.trace, live.trace, "seed {seed}: replay trace diverged");
        assert_eq!(replay.verdict, live.verdict);
        assert_eq!(replay.decisions, live.decisions);
    }
}

#[test]
fn different_seeds_explore_different_interleavings() {
    // Not a determinism property per se, but the harness is worthless if
    // the seed does not actually steer the schedule.
    let cfg = DstConfig::default();
    let a = run_seed(1, &cfg);
    let b = run_seed(2, &cfg);
    assert_ne!(a.trace, b.trace, "seeds 1 and 2 produced the same schedule");
}

#[test]
fn shard_topology_is_observable_in_the_report() {
    let cfg = DstConfig::default();
    let report = run_seed(3, &cfg);
    assert_eq!(report.verdict, Verdict::Pass);
    assert_eq!(
        report.shard_count, cfg.shards,
        "resolved shard count from stats_snapshot() must match the fixed topology"
    );
}
