//! Pinned-seed regressions: each test replays one seed whose schedule
//! provably walks a hazard window that once broke (or could break) the
//! kernel, and asserts both the walk and the clean verdict. The trace is
//! deterministic, so the assertions are exact.

use sbcc_dst::{run_seed, DstConfig, Verdict};

/// One parsed trace line: `step=N vt=V <description>`.
struct Line<'a> {
    vt: usize,
    desc: &'a str,
}

fn parse(trace: &str) -> Vec<Line<'_>> {
    trace
        .lines()
        .map(|l| {
            let rest = l.split_once("vt=").expect("trace line without vt=").1;
            let (vt, desc) = rest.split_once(' ').expect("trace line without description");
            Line {
                vt: vt.parse().expect("non-numeric vt"),
                desc: desc.trim(),
            }
        })
        .collect()
}

/// **Stranded pseudo-commit** (the vote-window TOCTOU).
///
/// `commit_multi` collects per-shard commit dependencies with only the
/// termination lock held, yielding between per-shard peeks. Seed 133
/// schedules another session to *commit the last dependency* inside that
/// window, so the coordinator pseudo-commits a transaction whose
/// out-degree is already zero. Until `pseudo_commit_coordinated` learned
/// to run `settle()` (re-queuing the immediate re-vote), no future edge
/// removal could ever report the transaction as coordination-ready: its
/// session had already returned, no thread re-entered the kernel, and the
/// one session still waiting on its claims polled forever — this exact
/// seed hung at the step budget.
#[test]
fn seed_133_pseudo_commit_whose_deps_died_in_the_vote_window_is_re_voted() {
    let report = run_seed(133, &DstConfig::default());
    let lines = parse(&report.trace);

    // The hazard walk: some transaction is vote-peeked at least twice
    // (multi-shard vote) and then re-voted (pseudo-commit resolved via
    // drain_coordination_ready) rather than vote-applied directly.
    let mut walked = false;
    for l in &lines {
        if let Some(txn) = l.desc.strip_prefix("re-vote ") {
            let peeks = lines
                .iter()
                .filter(|m| m.desc.strip_prefix("vote-peek ") == Some(txn))
                .count();
            let applies = lines
                .iter()
                .filter(|m| m.desc.strip_prefix("vote-apply ") == Some(txn))
                .count();
            // Pseudo-commit first (peeks without applies), finalized by
            // the re-vote machinery.
            if peeks >= 2 && applies == 0 {
                walked = true;
            }
        }
    }
    assert!(
        walked,
        "seed 133 no longer walks the pseudo-commit re-vote window; \
         pick a new pinned seed for this hazard class\n{}",
        report.trace
    );
    assert_eq!(
        report.verdict,
        Verdict::Pass,
        "stranded-pseudo-commit hang regressed (seed 133): {}",
        report.verdict
    );
    assert!(
        report.steps < DstConfig::default().max_steps,
        "seed 133 ran into the step budget again"
    );
}

/// **Cross-thread rendezvous fill** (the PR-4 claim/fill seam).
///
/// A waiter registers its slot (`rendezvous-claim`) on one thread while a
/// different session's `deliver_events` pass claims and fills that slot
/// (`deliver-fill`) — the window where a misordered fill-under-lock once
/// risked an ABBA deadlock against a polling executor. Seed 133's
/// schedule crosses the seam with distinct threads on each half.
#[test]
fn seed_133_fills_a_waiter_slot_from_a_different_thread_than_claimed_it() {
    let report = run_seed(133, &DstConfig::default());
    let lines = parse(&report.trace);

    let crossed = lines.iter().any(|claim| {
        claim
            .desc
            .strip_prefix("rendezvous-claim ")
            .map(|txn| {
                lines.iter().any(|fill| {
                    fill.desc.strip_prefix("deliver-fill ") == Some(txn) && fill.vt != claim.vt
                })
            })
            .unwrap_or(false)
    });
    assert!(
        crossed,
        "seed 133 no longer crosses the claim/fill seam on distinct threads; \
         pick a new pinned seed for this hazard class\n{}",
        report.trace
    );
    assert_eq!(report.verdict, Verdict::Pass);
}

/// **SSI abort storm** (the unstamped-writer retry livelock).
///
/// A snapshot reader that commits with its in-conflict flag set leaves
/// its SIREAD marks installed until quiescence. Every later classified
/// writer touching that read set closes a dangerous structure whose pivot
/// already committed, so the writer is doomed — correctly, *if* they were
/// concurrent. Before classified transactions carried a begin stamp, the
/// committed-reader skip test (`reader.committed <= writer.begin`) never
/// fired for them: each doomed writer's retry began a fresh, still
/// unstamped transaction that was doomed again by the same stale marks.
/// Seed 234 drove that loop for ~55k virtual steps — 28 logical
/// transactions ballooned past 12k begun ids — and blew the liveness
/// budget. With begins stamped at `ShardedKernel::begin` while SSI is
/// enabled, the first retry postdates the reader's commit, skips it, and
/// commits.
#[test]
fn seed_234_ssi_doomed_writers_retry_once_instead_of_storming() {
    let cfg = DstConfig {
        snapshot_sessions: 2,
        ..DstConfig::default()
    };
    let report = run_seed(234, &cfg);
    let lines = parse(&report.trace);

    // The schedule still walks every snapshot yield point…
    for point in ["snapshot-stamp", "snapshot-read", "ssi-edge"] {
        assert!(
            lines.iter().any(|l| l.desc.starts_with(point)),
            "seed 234 no longer reaches {point}; \
             pick a new pinned seed for this hazard class\n{}",
            report.trace
        );
    }
    // …and still provokes at least one SSI abort + retry: the workload
    // begins 28 logical transactions (7 sessions x 4), so any higher
    // transaction id in the trace is a retry of an aborted one.
    let max_txn = lines
        .iter()
        .filter_map(|l| l.desc.rsplit_once(" T")?.1.parse::<u64>().ok())
        .max()
        .unwrap_or(0);
    assert!(
        max_txn > 28,
        "seed 234 no longer retries any transaction (max id {max_txn}); \
         pick a new pinned seed for this hazard class\n{}",
        report.trace
    );
    // The storm is the regression: bounded retries, not budget exhaustion.
    assert_eq!(
        report.verdict,
        Verdict::Pass,
        "SSI abort storm regressed (seed 234): {}",
        report.verdict
    );
    assert!(
        report.steps < 5_000,
        "seed 234 took {} steps — the doomed-writer retry loop is back",
        report.steps
    );
}
