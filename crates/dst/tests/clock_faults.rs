//! Virtual-clock fault injection against the network front-end: a
//! [`sbcc_core::chaos::ClockHook`] stands in for the wall clock at the
//! server's read-timeout point, so the reaper path — inactivity timeout
//! on a connection holding a live transaction, auto-abort of the
//! orphaned session, unblocking of its waiters — runs deterministically
//! in microseconds instead of after a real timeout.
//!
//! The hook's fire step is derived from a pinned seed, regression-style:
//! the countdown forces a known number of "keep waiting" verdicts before
//! the virtual timeout fires, and the test asserts the hook was actually
//! consulted that many times. With a wall-clock budget of an hour, only
//! the virtual clock can have fired within the test's lifetime.

use sbcc_adt::{AdtOp, OpResult, StackOp, Value};
use sbcc_core::aio::AsyncDatabase;
use sbcc_core::chaos::{clear_clock_hook, install_clock_hook, ClockHook, TimeoutPoint};
use sbcc_core::{SchedulerConfig, TxnId, TxnState};
use sbcc_net::{AdtType, NetClient, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pinned seed for the countdown schedule (SplitMix64, the harness's
/// mixing function). Bump only with a comment explaining what the old
/// schedule stopped covering.
const PINNED_CLOCK_SEED: u64 = 0x5bcc_c10c;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Virtual clock: answers "keep waiting" `fire_at` times at the net-read
/// timeout point, then fires exactly once.
struct CountdownClock {
    fire_at: u64,
    consulted: AtomicU64,
}

impl ClockHook for CountdownClock {
    fn timeout_fires(&self, point: TimeoutPoint) -> Option<bool> {
        if point != TimeoutPoint::NetRead {
            return None;
        }
        let n = self.consulted.fetch_add(1, Ordering::Relaxed);
        Some(n == self.fire_at)
    }
}

/// Clears the process-global hook even if an assertion fails.
struct HookGuard;

impl Drop for HookGuard {
    fn drop(&mut self) {
        clear_clock_hook();
    }
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn virtual_clock_drives_read_timeout_and_auto_abort() {
    // An hour of real inactivity budget: if the reaper runs, the virtual
    // clock drove it.
    let server = Server::start(
        AsyncDatabase::new(SchedulerConfig::default()),
        ServerConfig::default()
            .with_workers(1)
            .with_read_timeout(Duration::from_secs(3600))
            .with_poll_interval(Duration::from_millis(1)),
    )
    .expect("bind loopback server");
    let addr = server.local_addr();

    // The doomed connection holds an uncommitted push and goes silent.
    let mut holder = NetClient::connect(addr, "t").expect("connect");
    holder.register("s", AdtType::Stack).unwrap();
    let t1 = holder.begin().unwrap();
    holder
        .exec(t1, "s", StackOp::Push(Value::Int(9)).to_call())
        .unwrap();

    // A sync session on the served database blocks behind the push —
    // the waiter the auto-abort must release.
    let sync_db = server.db().database().clone();
    let stack = server
        .object_handle("t", "s")
        .expect("registered over the wire");
    let waiter = std::thread::spawn(move || {
        let txn = sync_db.begin();
        let popped = txn.exec_call(&stack, StackOp::Pop.to_call());
        let outcome = txn.commit().expect("waiter commits");
        (popped, outcome.is_pseudo_commit())
    });
    wait_until("the pop to block behind the push", || {
        server.db().database().stats().blocks >= 1
    });

    // Only now arm the virtual clock: every reader poll tick before this
    // saw the real clock (an hour from firing). The countdown length
    // comes from the pinned seed.
    let fire_at = 3 + splitmix64(PINNED_CLOCK_SEED) % 8;
    let clock = Arc::new(CountdownClock {
        fire_at,
        consulted: AtomicU64::new(0),
    });
    let _guard = HookGuard;
    install_clock_hook(clock.clone());

    wait_until("the virtual timeout to fire", || {
        server.net_stats().read_timeouts == 1
    });
    wait_until("the orphaned session to auto-abort", || {
        server.net_stats().sessions_auto_aborted == 1
    });
    assert_eq!(server.db().txn_state(TxnId(t1)), Some(TxnState::Aborted));

    // The waiter is released by the abort and sees the rolled-back
    // stack: an empty pop, committing cleanly with no dependency left.
    let (popped, pseudo) = waiter.join().expect("waiter thread");
    assert_eq!(popped, Ok(OpResult::Null));
    assert!(!pseudo, "nothing left to depend on after the abort");

    // The countdown proves the virtual clock was consulted the pinned
    // number of times before firing.
    assert!(
        clock.consulted.load(Ordering::Relaxed) > fire_at,
        "clock hook must be consulted past its fire step"
    );
    wait_until("the timed-out connection to tear down", || {
        server.net_stats().connections_open == 0
    });

    server.db().verify_serializable().unwrap();
    drop(holder);
    let stats = server.shutdown();
    assert_eq!(stats.read_timeouts, 1);
    assert_eq!(stats.sessions_auto_aborted, 1);
    assert_eq!(stats.transactions_in_flight, 0, "no stranded sessions");
    assert_eq!(stats.connections_open, 0);
}
