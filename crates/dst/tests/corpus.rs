//! Replay the pinned seed corpus (`tests/dst_corpus.txt` at the repo
//! root). Every corpus seed must pass: these are schedules chosen to
//! cover the fault space (cancellations, injected aborts, re-votes,
//! cross-thread rendezvous, snapshot/SSI interleavings, declared group
//! admission) plus pinned regressions. A failure here means a kernel
//! change broke an interleaving the corpus deliberately covers — replay
//! it with `repro --dst-replay <seed>` (built with `--features dst`).
//!
//! Three line formats: a bare seed runs the default mixed sync/async
//! workload; `snapshot:SEED` runs the same workload with two snapshot
//! sessions added (multi-version reads + SSI guard under the baton
//! scheduler); `declared:SEED` adds two declared-batch sessions instead
//! (group admission of declared footprints, with a seeded fraction of
//! deliberate under-declarations hitting the coverage-scan fallback).

use sbcc_dst::{run_seed, DstConfig, Verdict};

/// Which session mix a corpus line opts into.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Default,
    Snapshot,
    Declared,
}

/// `(seed, session mix)` per corpus line.
fn corpus_seeds() -> Vec<(u64, Mix)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/dst_corpus.txt");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read corpus at {path}: {e}"));
    let seeds: Vec<(u64, Mix)> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (rest, mix) = if let Some(rest) = l.strip_prefix("snapshot:") {
                (rest, Mix::Snapshot)
            } else if let Some(rest) = l.strip_prefix("declared:") {
                (rest, Mix::Declared)
            } else {
                (l, Mix::Default)
            };
            (
                rest.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad corpus line {l:?}")),
                mix,
            )
        })
        .collect();
    assert!(!seeds.is_empty(), "empty corpus");
    seeds
}

/// The corpus config for `snapshot:`-tagged lines (must match the sweep
/// that picked them — see `repro --dst --dst-snapshots`).
pub fn snapshot_cfg() -> DstConfig {
    DstConfig {
        snapshot_sessions: 2,
        ..DstConfig::default()
    }
}

/// The corpus config for `declared:`-tagged lines (must match the sweep
/// that picked them).
pub fn declared_cfg() -> DstConfig {
    DstConfig {
        declared_sessions: 2,
        ..DstConfig::default()
    }
}

#[test]
fn every_corpus_seed_passes() {
    let default_cfg = DstConfig::default();
    let snap_cfg = snapshot_cfg();
    let decl_cfg = declared_cfg();
    let mut failures = Vec::new();
    for (seed, mix) in corpus_seeds() {
        let cfg = match mix {
            Mix::Default => &default_cfg,
            Mix::Snapshot => &snap_cfg,
            Mix::Declared => &decl_cfg,
        };
        let report = run_seed(seed, cfg);
        if report.verdict != Verdict::Pass {
            failures.push(format!(
                "seed {seed}: {} ({})",
                report.verdict,
                report.repro_command()
            ));
        }
    }
    assert!(failures.is_empty(), "corpus failures:\n{}", failures.join("\n"));
}
