//! Replay the pinned seed corpus (`tests/dst_corpus.txt` at the repo
//! root). Every corpus seed must pass: these are schedules chosen to
//! cover the fault space (cancellations, injected aborts, re-votes,
//! cross-thread rendezvous) plus pinned regressions. A failure here means
//! a kernel change broke an interleaving the corpus deliberately covers —
//! replay it with `repro --dst-replay <seed>` (built with
//! `--features dst`).

use sbcc_dst::{run_seed, DstConfig, Verdict};

fn corpus_seeds() -> Vec<u64> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/dst_corpus.txt");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read corpus at {path}: {e}"));
    let seeds: Vec<u64> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().unwrap_or_else(|_| panic!("bad corpus line {l:?}")))
        .collect();
    assert!(!seeds.is_empty(), "empty corpus");
    seeds
}

#[test]
fn every_corpus_seed_passes() {
    let cfg = DstConfig::default();
    let mut failures = Vec::new();
    for seed in corpus_seeds() {
        let report = run_seed(seed, &cfg);
        if report.verdict != Verdict::Pass {
            failures.push(format!(
                "seed {seed}: {} ({})",
                report.verdict,
                report.repro_command()
            ));
        }
    }
    assert!(failures.is_empty(), "corpus failures:\n{}", failures.join("\n"));
}
