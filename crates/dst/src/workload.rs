//! The simulated workload: N sync + M async counter sessions driven
//! through the baton scheduler, then judged by the house oracles.
//!
//! The workload is chosen to light up every seam the chaos points cover:
//! counters spread across shards make most transactions cross-shard
//! (multi-shard votes, escalated dependency edges), `Read` conflicts with
//! `Increment`/`Decrement` recoverably (commit dependencies →
//! pseudo-commits → `drain_coordination_ready` re-votes), explicit aborts
//! land inside vote windows, and async sessions cancel operation futures
//! mid-rendezvous. Everything a session does — shape, operands, fault
//! draws — comes from a per-session SplitMix64, so the run is a pure
//! function of the seed and the scheduler's pick sequence.

use sbcc_adt::{AdtOp, Counter, CounterOp};
use sbcc_core::chaos;
use sbcc_core::{
    AsyncDatabase, CoreError, Database, DatabaseConfig, Handle, SchedulerConfig, ShardCount,
    TxnId, VictimPolicy,
};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::hook::{DstHook, FaultPlan};
use crate::rng::SplitMix64;
use crate::sched::{Scheduler, TraceKind};
use crate::{DstConfig, RunReport, Verdict};

/// Errors a fault-injecting run legitimately produces: scheduler aborts
/// (surfaced raw by the manual session style), the victim/cancellation
/// `InvalidState` races, and an exhausted retry budget. Anything else —
/// unknown transactions, unknown objects, duplicate registrations — is a
/// harness or kernel bug and fails the run.
fn tolerated(err: &CoreError) -> bool {
    matches!(
        err,
        CoreError::Aborted { .. }
            | CoreError::InvalidState { .. }
            | CoreError::RetriesExhausted { .. }
    )
}

struct NoopWake;

impl Wake for NoopWake {
    fn wake(self: Arc<Self>) {}
}

/// The op mix: reads conflict recoverably with increments, which is what
/// creates commit dependencies and pseudo-commits.
fn draw_op(rng: &mut SplitMix64) -> CounterOp {
    match rng.below(4) {
        0 => CounterOp::Read,
        1 => CounterOp::Decrement(1 + rng.below(3) as i64),
        _ => CounterOp::Increment(1 + rng.below(5) as i64),
    }
}

/// One planned transaction: which objects, which ops, and the faults to
/// fire. Drawn up-front so `Database::run` retries replay identical ops.
struct TxnPlan {
    ops: Vec<(usize, CounterOp)>,
    /// Sync style: `true` → the `db.run` closure runner, `false` → manual
    /// begin/exec/commit with explicit abort faults.
    via_runner: bool,
    /// Manual style only: explicitly abort instead of committing.
    abort: bool,
    /// Async only: cancel (drop) the op future at this 1-based poll count.
    cancel_at_poll: Option<(usize, u32)>,
}

fn plan_txn(rng: &mut SplitMix64, cfg: &DstConfig, is_async: bool) -> TxnPlan {
    let n_ops = 1 + rng.below(cfg.ops_per_txn.max(1));
    let ops: Vec<(usize, CounterOp)> = (0..n_ops)
        .map(|_| (rng.below(cfg.objects.max(1)), draw_op(rng)))
        .collect();
    let via_runner = !is_async && rng.below(2) == 0;
    let abort = !via_runner && rng.permille(cfg.abort_permille);
    let cancel_at_poll = if is_async && rng.permille(cfg.cancel_permille) {
        Some((rng.below(n_ops), 1 + rng.below(3) as u32))
    } else {
        None
    };
    TxnPlan {
        ops,
        via_runner,
        abort,
        cancel_at_poll,
    }
}

/// A sync session: `txns_per_session` transactions, alternating between
/// the retrying closure runner and manual begin/exec/commit (the latter
/// fires explicit aborts into other transactions' vote windows).
fn sync_session(
    vt: usize,
    seed: u64,
    cfg: &DstConfig,
    db: &Database,
    objects: &[Handle<Counter>],
    sched: &Scheduler,
    errors: &Mutex<Vec<String>>,
) {
    let mut rng = SplitMix64::new(seed ^ (vt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for _ in 0..cfg.txns_per_session {
        if sched.free_running() {
            return;
        }
        let plan = plan_txn(&mut rng, cfg, false);
        if plan.via_runner {
            let result = db.run(|txn| {
                for (obj, op) in &plan.ops {
                    txn.exec(&objects[*obj], op.clone())?;
                }
                Ok(())
            });
            if let Err(e) = result {
                if !tolerated(&e) {
                    errors.lock().unwrap().push(format!("vt{vt} runner: {e}"));
                }
            }
        } else {
            let txn = db.begin();
            let id = txn.id();
            let mut alive = true;
            for (obj, op) in &plan.ops {
                if let Err(e) = txn.exec(&objects[*obj], op.clone()) {
                    if !tolerated(&e) {
                        errors.lock().unwrap().push(format!("vt{vt} exec: {e}"));
                    }
                    alive = false;
                    break;
                }
            }
            if alive && plan.abort {
                // An injected fault: abort a healthy transaction, right
                // here — which, thanks to the vote-window yield points,
                // can land between another session's per-shard votes.
                sched.yield_turn(vt, TraceKind::FaultAbort { txn: id });
                let _ = txn.abort();
            } else if alive {
                if let Err(e) = txn.commit() {
                    if !tolerated(&e) {
                        errors.lock().unwrap().push(format!("vt{vt} commit: {e}"));
                    }
                }
            } else {
                drop(txn); // guard aborts whatever the scheduler left alive
            }
        }
    }
}

/// Drive `fut` to completion by manual polling, yielding a scheduler turn
/// between polls; optionally cancel (drop) it at poll `cancel_at`.
/// Returns `None` when cancelled or when the run went into free-run.
fn drive<F: std::future::Future>(
    fut: F,
    vt: usize,
    txn: TxnId,
    cancel_at: Option<u32>,
    sched: &Scheduler,
) -> Option<F::Output> {
    let waker = Waker::from(Arc::new(NoopWake));
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    let mut polls: u32 = 0;
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return Some(out),
            Poll::Pending => {
                polls += 1;
                if cancel_at == Some(polls) {
                    // Cancellation mid-rendezvous: dropping the future
                    // unregisters the waiter (or discards a raced
                    // outcome) and aborts the unfinished transaction.
                    sched.yield_turn(vt, TraceKind::Cancel { txn });
                    return None;
                }
                if sched.free_running() {
                    return None; // abandon; the run already failed
                }
                sched.yield_turn(vt, TraceKind::Poll { txn, polls });
            }
        }
    }
}

/// An async session: same transaction shapes, driven as manually polled
/// futures with seeded cancellation faults.
fn async_session(
    vt: usize,
    seed: u64,
    cfg: &DstConfig,
    db: &Database,
    objects: &[Handle<Counter>],
    sched: &Scheduler,
    errors: &Mutex<Vec<String>>,
) {
    let adb = AsyncDatabase::from_database(db.clone());
    let mut rng = SplitMix64::new(seed ^ (vt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for _ in 0..cfg.txns_per_session {
        if sched.free_running() {
            return;
        }
        let plan = plan_txn(&mut rng, cfg, true);
        let txn = adb.begin();
        let id = txn.id();
        let mut alive = true;
        for (i, (obj, op)) in plan.ops.iter().enumerate() {
            let cancel_at = match plan.cancel_at_poll {
                Some((op_idx, polls)) if op_idx == i => Some(polls),
                _ => None,
            };
            match drive(txn.exec(&objects[*obj], op.clone()), vt, id, cancel_at, sched) {
                Some(Ok(_)) => {}
                Some(Err(e)) => {
                    if !tolerated(&e) {
                        errors.lock().unwrap().push(format!("vt{vt} async exec: {e}"));
                    }
                    alive = false;
                    break;
                }
                None => {
                    // Cancelled (the drop glue aborted the transaction)
                    // or free-running; either way this transaction is
                    // done.
                    alive = false;
                    break;
                }
            }
        }
        if alive {
            match drive(txn.commit(), vt, id, None, sched) {
                Some(Err(e)) if !tolerated(&e) => {
                    errors.lock().unwrap().push(format!("vt{vt} async commit: {e}"));
                }
                _ => {}
            }
        } else {
            drop(txn);
        }
    }
}

/// A snapshot session: mostly-read transactions opened with
/// [`Database::begin_snapshot`]. Reads are served by the multi-version
/// path (yielding at stamp acquisition and every version-chain read);
/// the occasional classified write installs SSI rw-antidependency edges
/// (yielding at `ssi-edge`), so dangerous structures form and
/// `SsiConflict` aborts fire under arbitrary interleavings. The hazard
/// classes this hunts: a snapshot aborted by the guard while another
/// session waits on its claims (stranded waiter), and version-floor
/// races between stamp acquisition and concurrent commit folds.
fn snapshot_session(
    vt: usize,
    seed: u64,
    cfg: &DstConfig,
    db: &Database,
    objects: &[Handle<Counter>],
    sched: &Scheduler,
    errors: &Mutex<Vec<String>>,
) {
    let mut rng = SplitMix64::new(seed ^ (vt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for _ in 0..cfg.txns_per_session {
        if sched.free_running() {
            return;
        }
        let n_ops = 1 + rng.below(cfg.ops_per_txn.max(1));
        let txn = db.begin_snapshot();
        let mut alive = true;
        for _ in 0..n_ops {
            let obj = rng.below(cfg.objects.max(1));
            // Three quarters snapshot reads, one quarter classified
            // writes — the writes are what completes in+out structures.
            let op = if rng.below(4) == 0 {
                CounterOp::Increment(1 + rng.below(3) as i64)
            } else {
                CounterOp::Read
            };
            if let Err(e) = txn.exec(&objects[obj], op) {
                if !tolerated(&e) {
                    errors.lock().unwrap().push(format!("vt{vt} snapshot exec: {e}"));
                }
                alive = false;
                break;
            }
        }
        if alive {
            if let Err(e) = txn.commit() {
                if !tolerated(&e) {
                    errors.lock().unwrap().push(format!("vt{vt} snapshot commit: {e}"));
                }
            }
        } else {
            drop(txn);
        }
    }
}

/// A declared-batch session: every transaction submits its operations as
/// one [`sbcc_core::Batch`] with the write footprint declared up front,
/// so the whole group rides the single-pass admission seam — yielding at
/// the group-admission chaos point between the declaration scans and the
/// batch run, which is exactly where faults from other sessions (aborts
/// into vote windows, cancellations, reordered deliveries) land while
/// declared footprints are held. A seeded fraction deliberately drops
/// one object from the declaration, exercising the mis-declaration
/// coverage scan and the escalate fallback under the same interleavings.
fn declared_session(
    vt: usize,
    seed: u64,
    cfg: &DstConfig,
    db: &Database,
    objects: &[Handle<Counter>],
    sched: &Scheduler,
    errors: &Mutex<Vec<String>>,
) {
    let mut rng = SplitMix64::new(seed ^ (vt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for _ in 0..cfg.txns_per_session {
        if sched.free_running() {
            return;
        }
        let plan = plan_txn(&mut rng, cfg, false);
        let mut footprint: Vec<usize> = plan.ops.iter().map(|(obj, _)| *obj).collect();
        footprint.sort_unstable();
        footprint.dedup();
        // The lie: drop one object from a multi-object footprint (a
        // single-object drop would leave no declaration at all, which is
        // just the classified path). The coverage scan must catch it.
        if footprint.len() >= 2 && rng.permille(250) {
            let drop_at = rng.below(footprint.len());
            footprint.remove(drop_at);
        }
        let txn = db.begin();
        let mut batch = txn.batch();
        for obj in &footprint {
            batch.add_declare_write(&objects[*obj]);
        }
        for (obj, op) in &plan.ops {
            batch.add_call(&objects[*obj], op.to_call());
        }
        let alive = match batch.submit() {
            Ok(_) => true,
            Err(e) => {
                if !tolerated(&e) {
                    errors.lock().unwrap().push(format!("vt{vt} declared: {e}"));
                }
                false
            }
        };
        if alive {
            if let Err(e) = txn.commit() {
                if !tolerated(&e) {
                    errors
                        .lock()
                        .unwrap()
                        .push(format!("vt{vt} declared commit: {e}"));
                }
            }
        } else {
            drop(txn);
        }
    }
}

/// Execute one full simulation: build the database, run every session to
/// completion (or to the liveness deadline) under the baton scheduler,
/// then run the differential oracle. `script` forces the scheduler's
/// choice sequence for replay/shrinking.
pub fn execute(seed: u64, cfg: &DstConfig, script: Option<Vec<u32>>) -> RunReport {
    let total =
        cfg.sync_sessions + cfg.async_sessions + cfg.snapshot_sessions + cfg.declared_sessions;
    assert!(total > 0, "a simulation needs at least one session");
    let sched = Arc::new(Scheduler::new(total, cfg.max_steps, seed, script));
    let faults = Arc::new(FaultPlan::new(seed, cfg.reorder_permille));

    // Half the seed space stresses victim selection of *other*
    // transactions (the only source of the victim-abort-races-delivery
    // class); the other half keeps the paper's Figure-2 requester choice.
    let victim = if seed & 1 == 1 {
        VictimPolicy::Youngest
    } else {
        VictimPolicy::Requester
    };
    let scheduler_cfg = SchedulerConfig::default()
        .with_victim(victim)
        .with_max_retries(cfg.max_retries);
    let db = Database::with_config(
        DatabaseConfig::new(scheduler_cfg).with_shards(ShardCount::Fixed(cfg.shards)),
    );
    let objects: Arc<Vec<Handle<Counter>>> = Arc::new(
        (0..cfg.objects)
            .map(|i| db.register(format!("c{i}"), Counter::new()))
            .collect(),
    );
    let errors = Arc::new(Mutex::new(Vec::new()));

    let mut joins = Vec::new();
    for vt in 0..total {
        let sched = sched.clone();
        let faults = faults.clone();
        let db = db.clone();
        let objects = objects.clone();
        let errors = errors.clone();
        let cfg = cfg.clone();
        joins.push(std::thread::spawn(move || {
            chaos::install_thread_hook(Arc::new(DstHook::new(vt, sched.clone(), faults)));
            sched.register(vt);
            if vt < cfg.sync_sessions {
                sync_session(vt, seed, &cfg, &db, &objects, &sched, &errors);
            } else if vt < cfg.sync_sessions + cfg.async_sessions {
                async_session(vt, seed, &cfg, &db, &objects, &sched, &errors);
            } else if vt < cfg.sync_sessions + cfg.async_sessions + cfg.snapshot_sessions {
                snapshot_session(vt, seed, &cfg, &db, &objects, &sched, &errors);
            } else {
                declared_session(vt, seed, &cfg, &db, &objects, &sched, &errors);
            }
            sched.finish(vt);
            chaos::clear_thread_hook();
        }));
    }

    let finished = sched.wait_all_finished(Duration::from_secs(cfg.real_time_guard_secs));
    let verdict = if finished {
        for j in joins {
            let _ = j.join();
        }
        let errors = errors.lock().unwrap();
        if !errors.is_empty() {
            Verdict::UnexpectedError(errors.join("; "))
        } else if let Err(e) = db.check_invariants() {
            Verdict::OracleDivergence(format!("invariants: {e}"))
        } else if let Err(e) = db.verify_serializable() {
            // The differential oracle: replay the committed transactions'
            // operations serially in commit order and compare both every
            // recorded return value and the surviving state.
            Verdict::OracleDivergence(format!("serial replay: {e}"))
        } else if let Err(e) = db.verify_commit_dependencies() {
            Verdict::OracleDivergence(format!("commit deps: {e}"))
        } else {
            Verdict::Pass
        }
    } else {
        // Hung: session threads may still hold kernel locks (that is what
        // a liveness bug looks like), so skip the oracle — it could block
        // — and leak the detached threads; free-run lets whatever can
        // still finish do so at zero cost.
        drop(joins);
        Verdict::Hang
    };

    let (trace, decisions, steps) = sched.into_outcome();
    let (commits, shard_count) = if finished {
        let snapshot = db.stats_snapshot();
        (snapshot.aggregate.commits, snapshot.shard_count)
    } else {
        (0, cfg.shards)
    };
    RunReport {
        seed,
        verdict,
        steps,
        trace,
        decisions,
        commits,
        shard_count,
    }
}
