//! SplitMix64: the harness's only entropy source.
//!
//! Every random decision in a simulation run — scheduling picks, fault
//! draws, workload shapes — bottoms out in one of these generators, each
//! seeded as a pure function of the run's `u64` seed. That is the whole
//! determinism story: no clocks, no OS randomness, no address-dependent
//! hashing feed any decision.

/// The classic SplitMix64 generator (Steele, Lea & Flood): tiny state,
/// full 64-bit period, excellent mixing for seed-derivation use.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` exactly.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An unbiased-enough draw in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `permille`/1000.
    pub fn permille(&mut self, permille: u32) -> bool {
        (self.next_u64() % 1000) < u64::from(permille)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
