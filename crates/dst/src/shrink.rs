//! Schedule shrinking: reduce a failing run's decision script to a short,
//! mostly-canonical one that still fails.
//!
//! A run's interleaving is fully described by its decision list (the
//! choice index of every scheduler pick). Shrinking works directly on
//! that list: first **prefix bisection** finds a short failing prefix
//! (choices past the script's end fall back to the canonical index 0),
//! then **chunk canonicalization** rewrites surviving spans to 0 — a
//! ddmin-style pass that leaves only the picks that matter. Every
//! candidate is re-executed, so the result is always a *verified* failing
//! script, never a guess.

/// Minimize `decisions` under the failure predicate `still_fails`
/// (which must re-run the schedule described by a candidate script and
/// report whether it still fails). `budget` caps the number of predicate
/// evaluations. Returns the shortest failing script found — possibly the
/// input itself when nothing smaller fails.
pub fn minimize(
    decisions: &[u32],
    mut budget: usize,
    mut still_fails: impl FnMut(&[u32]) -> bool,
) -> Vec<u32> {
    let spend = |script: &[u32], budget: &mut usize, f: &mut dyn FnMut(&[u32]) -> bool| {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        f(script)
    };

    // Phase 1: prefix bisection. Failure-vs-prefix-length need not be
    // monotone, so the bisection result is verified and discarded if the
    // non-monotonicity fooled it.
    let mut lo = 0usize;
    let mut hi = decisions.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if spend(&decisions[..mid], &mut budget, &mut still_fails) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut best: Vec<u32> =
        if hi < decisions.len() && spend(&decisions[..hi], &mut budget, &mut still_fails) {
            decisions[..hi].to_vec()
        } else {
            decisions.to_vec()
        };

    // Phase 2: canonicalize chunks to 0, halving the chunk size.
    let mut chunk = best.len();
    while chunk >= 1 && budget > 0 {
        let mut i = 0;
        while i < best.len() {
            let end = (i + chunk).min(best.len());
            if best[i..end].iter().any(|&d| d != 0) {
                let mut cand = best.clone();
                for d in &mut cand[i..end] {
                    *d = 0;
                }
                if spend(&cand, &mut budget, &mut still_fails) {
                    best = cand;
                }
            }
            i = end;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Trailing canonical choices are implied by the replay rule (past the
    // script's end the scheduler picks index 0), so drop them.
    while best.last() == Some(&0) {
        best.pop();
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failure depends only on one "poison" decision at index 10 having
    /// value 3: the minimizer must find a script of exactly 11 entries
    /// with everything else canonicalized to 0.
    #[test]
    fn isolates_the_single_relevant_decision() {
        let mut decisions = vec![2u32; 40];
        decisions[10] = 3;
        let replays = |script: &[u32]| -> bool {
            // Replay semantics: beyond the script, choices are 0.
            let at = |i: usize| script.get(i).copied().unwrap_or(0);
            at(10) == 3
        };
        let shrunk = minimize(&decisions, 10_000, replays);
        assert_eq!(shrunk.len(), 11, "prefix cut right after the poison pick");
        assert_eq!(shrunk[10], 3);
        assert!(shrunk[..10].iter().all(|&d| d == 0), "rest canonicalized");
    }

    #[test]
    fn returns_input_when_nothing_smaller_fails() {
        let decisions = vec![1u32, 2, 3];
        // Only the exact full script fails.
        let shrunk = minimize(&decisions, 1000, |s: &[u32]| s == [1, 2, 3]);
        assert_eq!(shrunk, vec![1, 2, 3]);
    }

    #[test]
    fn respects_the_budget() {
        let decisions = vec![5u32; 100];
        let mut calls = 0usize;
        let _ = minimize(&decisions, 7, |_s: &[u32]| {
            calls += 1;
            true
        });
        assert!(calls <= 7, "budget overrun: {calls}");
    }
}
