//! # sbcc-dst — deterministic-simulation testing for the sharded kernel
//!
//! Wall-clock stress tests can *hit* an interleaving bug but cannot
//! reproduce it. This crate makes the kernel's interleavings a pure
//! function of a `u64` seed: every sync and async session runs on its own
//! OS thread, but a baton scheduler ([`sched::Scheduler`]) lets exactly
//! one run at a time and hands the baton over only at the named yield
//! points `sbcc_core::chaos` plants in the concurrency seams —
//! `deliver_events`' lock window, the claim/fill halves of the waiter
//! rendezvous, the per-shard vote loops of a multi-shard commit, and the
//! `drain_coordination_ready` re-votes. On top of pure interleaving the
//! harness injects faults drawn from the same seed: explicit aborts fired
//! into vote windows, async operation futures cancelled at a chosen poll,
//! and permuted event-delivery order.
//!
//! Whatever the seed produces, the **differential oracle** must hold: the
//! surviving committed state equals a serial replay of the committed
//! transactions' operations in commit order (the house
//! `verify_serializable` checker), the recorded commit dependencies are
//! respected, per-object invariants hold — and no session may hang (a
//! virtual-time step budget is the liveness deadline).
//!
//! ```
//! use sbcc_dst::{run_seed, DstConfig, Verdict};
//!
//! let report = run_seed(42, &DstConfig::default());
//! assert_eq!(report.verdict, Verdict::Pass);
//! // Same seed ⇒ byte-identical yield/fault trace.
//! assert_eq!(report.trace, run_seed(42, &DstConfig::default()).trace);
//! ```
//!
//! The `repro` binary (in `sbcc-experiments`, behind its `dst` feature)
//! fronts this crate: `repro --dst --seeds 10000` explores, and
//! `repro --dst-replay <seed>` replays one schedule, shrinking it first
//! when it fails.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hook;
pub mod rng;
pub mod sched;
pub mod shrink;
pub mod workload;

pub use sched::{TraceEvent, TraceKind};

/// Shape and fault rates of a simulated run. The default is the mixed
/// sync/async cross-shard workload the CI legs explore.
#[derive(Debug, Clone)]
pub struct DstConfig {
    /// Thread-blocking sessions (driving [`sbcc_core::Database`]).
    pub sync_sessions: usize,
    /// Manually-polled async sessions (driving
    /// [`sbcc_core::AsyncDatabase`] over the same database).
    pub async_sessions: usize,
    /// Snapshot sessions (driving [`sbcc_core::Database::begin_snapshot`]):
    /// mostly-read transactions served by the multi-version path, with
    /// occasional classified writes so SSI rw-antidependency edges — and
    /// dangerous-structure aborts — actually form. Yields at the
    /// snapshot-stamp, snapshot-read and ssi-edge chaos points. Default 0:
    /// the pinned corpus seeds predate snapshot sessions and stay
    /// byte-identical; `snapshot:`-tagged corpus lines opt in.
    pub snapshot_sessions: usize,
    /// Declared-batch sessions (driving [`sbcc_core::Batch`] with
    /// up-front [`sbcc_adt::AccessSet`] declarations): each transaction
    /// submits its operations as one declared batch, so the whole group
    /// rides the single-pass admission seam — and yields at the
    /// group-admission chaos point while holding declared footprints.
    /// A seeded fraction deliberately under-declares to exercise the
    /// mis-declaration fallback under faults. Default 0: the pinned
    /// corpus seeds predate declared sessions and stay byte-identical;
    /// `declared:`-tagged corpus lines opt in.
    pub declared_sessions: usize,
    /// Transactions per session.
    pub txns_per_session: usize,
    /// Maximum operations per transaction (each draws 1..=this many).
    pub ops_per_txn: usize,
    /// Number of registered counters (hashed across shards).
    pub objects: usize,
    /// Shard count (fixed — the resolved topology is also asserted from
    /// the stats snapshot).
    pub shards: usize,
    /// Permille of manual sync transactions that explicitly abort instead
    /// of committing (the mid-vote abort fault).
    pub abort_permille: u32,
    /// Permille of async transactions that drop an operation future at a
    /// seeded poll count (the cancellation-mid-rendezvous fault).
    pub cancel_permille: u32,
    /// Permille of drained event batches delivered in permuted order.
    pub reorder_permille: u32,
    /// Virtual-time liveness deadline: yields before the run is declared
    /// hung.
    pub max_steps: usize,
    /// Retry budget handed to [`sbcc_core::SchedulerConfig::max_retries`].
    pub max_retries: usize,
    /// Wall-clock backstop for non-yielding livelocks (seconds).
    pub real_time_guard_secs: u64,
}

impl Default for DstConfig {
    fn default() -> Self {
        DstConfig {
            sync_sessions: 3,
            async_sessions: 2,
            snapshot_sessions: 0,
            declared_sessions: 0,
            txns_per_session: 4,
            ops_per_txn: 3,
            objects: 6,
            shards: 4,
            abort_permille: 150,
            cancel_permille: 200,
            reorder_permille: 250,
            max_steps: 50_000,
            max_retries: 10_000,
            real_time_guard_secs: 30,
        }
    }
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// All sessions finished and every oracle held.
    Pass,
    /// The step budget (or the wall-clock backstop) expired with sessions
    /// still in flight: a liveness failure.
    Hang,
    /// An oracle rejected the surviving state (serial-replay divergence,
    /// violated invariant, or unrespected commit dependency).
    OracleDivergence(String),
    /// A session hit an error class the workload never produces on a
    /// correct kernel (unknown transaction, unknown object, …).
    UnexpectedError(String),
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Pass => f.write_str("pass"),
            Verdict::Hang => f.write_str("hang (liveness deadline)"),
            Verdict::OracleDivergence(why) => write!(f, "oracle divergence: {why}"),
            Verdict::UnexpectedError(why) => write!(f, "unexpected error: {why}"),
        }
    }
}

/// Everything one run produced: the verdict plus the full yield/fault
/// trace and the decision script that reproduces it.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// Pass/fail classification.
    pub verdict: Verdict,
    /// Virtual time consumed (total yields).
    pub steps: usize,
    /// The rendered yield/fault trace, one line per event. Byte-identical
    /// across runs of the same seed and script.
    pub trace: String,
    /// Every scheduler pick, as a choice index into the sorted ready set;
    /// replaying this script reproduces the interleaving exactly.
    pub decisions: Vec<u32>,
    /// Transactions that actually committed.
    pub commits: u64,
    /// The resolved shard topology (from the stats snapshot).
    pub shard_count: usize,
}

impl RunReport {
    /// `true` for any verdict other than [`Verdict::Pass`].
    pub fn failed(&self) -> bool {
        self.verdict != Verdict::Pass
    }

    /// The one-line command that reproduces this run.
    pub fn repro_command(&self) -> String {
        format!(
            "cargo run --release -p sbcc-experiments --features dst -- --dst-replay {}",
            self.seed
        )
    }
}

/// Run the seed's schedule from scratch (no script).
pub fn run_seed(seed: u64, cfg: &DstConfig) -> RunReport {
    workload::execute(seed, cfg, None)
}

/// Run the seed with the scheduler's picks forced to `script` (indices
/// clamped to the ready set; past the script's end the canonical choice 0
/// is taken). Used by replay and shrinking.
pub fn run_scripted(seed: u64, cfg: &DstConfig, script: Vec<u32>) -> RunReport {
    workload::execute(seed, cfg, Some(script))
}

/// Shrink a failing run: minimize its decision script (re-running each
/// candidate) and return the final, verified-failing run under the
/// shortest script found. `budget` caps the number of re-executions.
pub fn shrink_failure(failing: &RunReport, cfg: &DstConfig, budget: usize) -> RunReport {
    debug_assert!(failing.failed());
    let seed = failing.seed;
    let script = shrink::minimize(&failing.decisions, budget, |candidate| {
        run_scripted(seed, cfg, candidate.to_vec()).failed()
    });
    run_scripted(seed, cfg, script)
}

/// Summary of a seed sweep.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Seeds executed.
    pub runs: u64,
    /// Total virtual time across all runs.
    pub total_steps: u64,
    /// Every failing run, in seed order.
    pub failures: Vec<RunReport>,
}

/// Explore `count` consecutive seeds starting at `start`, invoking
/// `progress` after each run (for live logging).
pub fn explore(
    start: u64,
    count: u64,
    cfg: &DstConfig,
    mut progress: impl FnMut(&RunReport),
) -> ExploreReport {
    let mut report = ExploreReport::default();
    for seed in start..start.saturating_add(count) {
        let run = run_seed(seed, cfg);
        report.runs += 1;
        report.total_steps += run.steps as u64;
        progress(&run);
        if run.failed() {
            report.failures.push(run);
        }
    }
    report
}
