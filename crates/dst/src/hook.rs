//! The per-thread [`ChaosHook`] gluing `sbcc_core`'s yield points to the
//! baton scheduler, plus the seeded event-reorder fault.

use sbcc_core::{ChaosHook, ChaosPoint, TxnId};
use std::sync::{Arc, Mutex};

use crate::rng::SplitMix64;
use crate::sched::{Scheduler, TraceKind};

/// Fault-injection state shared by all of a run's hooks. Only one thread
/// runs at a time, so the lock is uncontended and the draw order is
/// deterministic.
pub struct FaultPlan {
    /// Probability (permille) that a drained event batch of ≥ 2 events is
    /// delivered in a permuted order.
    pub reorder_permille: u32,
    rng: Mutex<SplitMix64>,
}

impl FaultPlan {
    /// A plan drawing from `seed` (a dedicated stream, independent of the
    /// scheduler's picks).
    pub fn new(seed: u64, reorder_permille: u32) -> Self {
        FaultPlan {
            reorder_permille,
            rng: Mutex::new(SplitMix64::new(seed ^ 0xFA17_BAD_5EED)),
        }
    }

    /// A permutation of `0..txns.len()` that shuffles delivery order while
    /// **preserving the relative order of same-transaction events** (the
    /// kernel orders a single transaction's events causally; only the
    /// cross-transaction order is unordered by contract). `None` when the
    /// dice say "deliver in kernel order".
    fn reorder(&self, txns: &[TxnId]) -> Option<Vec<usize>> {
        if txns.len() < 2 {
            return None;
        }
        let mut rng = self.rng.lock().expect("fault rng");
        if !rng.permille(self.reorder_permille) {
            return None;
        }
        // Fisher–Yates over the indices…
        let mut perm: Vec<usize> = (0..txns.len()).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.below(i + 1);
            perm.swap(i, j);
        }
        // …then restore per-transaction original order: for every
        // transaction, sort the positions it landed on by original index
        // (a stable per-key repair; cross-transaction placement keeps the
        // shuffle).
        let mut by_txn: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for &orig in &perm {
            by_txn.entry(txns[orig].0).or_default().push(orig);
        }
        for positions in by_txn.values_mut() {
            positions.sort_unstable();
        }
        let mut cursor: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let repaired: Vec<usize> = perm
            .iter()
            .map(|&orig| {
                let key = txns[orig].0;
                let c = cursor.entry(key).or_insert(0);
                let fixed = by_txn[&key][*c];
                *c += 1;
                fixed
            })
            .collect();
        Some(repaired)
    }
}

/// One session thread's hook: forwards every yield point to the shared
/// [`Scheduler`] under this thread's virtual-thread id.
pub struct DstHook {
    vt: usize,
    sched: Arc<Scheduler>,
    faults: Arc<FaultPlan>,
}

impl DstHook {
    /// The hook for virtual thread `vt`.
    pub fn new(vt: usize, sched: Arc<Scheduler>, faults: Arc<FaultPlan>) -> Self {
        DstHook { vt, sched, faults }
    }
}

impl ChaosHook for DstHook {
    fn reach(&self, point: ChaosPoint, txn: Option<TxnId>) {
        self.sched
            .yield_turn(self.vt, TraceKind::Chaos { point, txn });
    }

    fn cooperative(&self) -> bool {
        !self.sched.free_running()
    }

    fn reorder_events(&self, txns: &[TxnId]) -> Option<Vec<usize>> {
        if self.sched.free_running() {
            return None;
        }
        self.faults.reorder(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_preserves_per_txn_order() {
        // 100% reorder rate: every call with ≥2 events permutes.
        let plan = FaultPlan::new(3, 1000);
        let txns: Vec<TxnId> = [1u64, 2, 1, 3, 2, 1].iter().map(|&i| TxnId(i)).collect();
        let mut saw_shuffle = false;
        for _ in 0..50 {
            let perm = plan.reorder(&txns).expect("rate is 1000/1000");
            // A permutation…
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..txns.len()).collect::<Vec<_>>());
            // …that keeps each transaction's own events in order.
            for t in [1u64, 2, 3] {
                let positions: Vec<usize> = perm
                    .iter()
                    .copied()
                    .filter(|&orig| txns[orig].0 == t)
                    .collect();
                assert!(
                    positions.windows(2).all(|w| w[0] < w[1]),
                    "txn {t} delivered out of order: {positions:?} (perm {perm:?})"
                );
            }
            if perm != (0..txns.len()).collect::<Vec<_>>() {
                saw_shuffle = true;
            }
        }
        assert!(saw_shuffle, "50 draws never moved anything");
    }

    #[test]
    fn reorder_respects_rate_and_short_batches() {
        let plan = FaultPlan::new(3, 0);
        assert!(plan.reorder(&[TxnId(1), TxnId(2)]).is_none(), "rate 0");
        let plan = FaultPlan::new(3, 1000);
        assert!(plan.reorder(&[TxnId(1)]).is_none(), "singleton batch");
    }
}
