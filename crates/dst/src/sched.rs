//! The virtual-thread scheduler: real OS threads, one baton.
//!
//! Each simulated session runs on its own OS thread, but **exactly one
//! session thread executes at a time**: every other thread is parked
//! inside [`Scheduler::yield_turn`] waiting for the baton. At each yield
//! point the running thread appends a trace event, rejoins the ready set,
//! and the seeded RNG (or a replay script) picks who runs next. Because
//! the sole source of cross-thread interleaving is this pick, the whole
//! run — trace, kernel decisions, verdict — is a pure function of the
//! seed.
//!
//! The scheduler itself uses `std::sync` primitives, *not* the
//! chaos-aware wrappers of `sbcc_core::chaos::sync` — the harness's own
//! locks must never re-enter the hook layer they implement.
//!
//! # Liveness and free-run
//!
//! Virtual time is the step counter: one yield = one tick. A run that
//! exceeds its step budget is declared **hung** (the liveness verdict)
//! and the scheduler switches to *free-run*: every wait returns
//! immediately, the per-thread hooks report `cooperative() == false` so
//! the chaos primitives fall back to real blocking, and whatever sessions
//! can still finish do so on ordinary OS scheduling while the main thread
//! stops waiting for the rest. Determinism is already forfeit at that
//! point — the run failed.

use sbcc_core::{ChaosPoint, TxnId};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::rng::SplitMix64;

/// What a virtual thread was doing when it yielded; one trace line each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A `sbcc_core::chaos` yield point was reached.
    Chaos {
        /// The yield point.
        point: ChaosPoint,
        /// The transaction the point concerns, when the seam knows it.
        txn: Option<TxnId>,
    },
    /// An async session is about to poll an operation future again.
    Poll {
        /// The future's transaction.
        txn: TxnId,
        /// How many polls this future has seen so far.
        polls: u32,
    },
    /// An async session cancels (drops) an in-flight operation future.
    Cancel {
        /// The cancelled future's transaction.
        txn: TxnId,
    },
    /// An injected workload fault (explicit abort of a live transaction).
    FaultAbort {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// The session's script completed and its thread is about to exit.
    End,
}

/// One entry of the yield/fault trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time (yields so far) when the event was recorded.
    pub step: usize,
    /// The virtual thread that recorded it.
    pub vt: usize,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    fn render(&self, out: &mut String) {
        let _ = write!(out, "step={:<6} vt={} ", self.step, self.vt);
        match &self.kind {
            TraceKind::Chaos { point, txn: Some(t) } => {
                let _ = writeln!(out, "{point} {t}");
            }
            TraceKind::Chaos { point, txn: None } => {
                let _ = writeln!(out, "{point}");
            }
            TraceKind::Poll { txn, polls } => {
                let _ = writeln!(out, "poll {txn} #{polls}");
            }
            TraceKind::Cancel { txn } => {
                let _ = writeln!(out, "cancel {txn}");
            }
            TraceKind::FaultAbort { txn } => {
                let _ = writeln!(out, "fault-abort {txn}");
            }
            TraceKind::End => {
                let _ = writeln!(out, "end");
            }
        }
    }
}

struct SchedState {
    /// Threads that have called [`Scheduler::register`] so far.
    registered: usize,
    /// The thread currently holding the baton (`None` before start and in
    /// the instants between a hand-off).
    current: Option<usize>,
    /// Ready set: registered, not current, not finished. A `BTreeSet` so
    /// the choice index enumerates it in a canonical (sorted) order.
    runnable: BTreeSet<usize>,
    finished: usize,
    rng: SplitMix64,
    /// Replay script: forced choice indices, consumed in decision order.
    script: Option<Vec<u32>>,
    /// Every choice actually made (script or RNG), for shrinking.
    decisions: Vec<u32>,
    trace: Vec<TraceEvent>,
    steps: usize,
}

/// The baton scheduler shared by a run's session threads (see the
/// [module docs](self)).
pub struct Scheduler {
    expected: usize,
    max_steps: usize,
    state: Mutex<SchedState>,
    turn: Condvar,
    /// Set when the step budget is exhausted (or the real-time guard
    /// fired): the run's liveness verdict.
    hung: AtomicBool,
    /// Set together with `hung`: waits stop blocking, hooks stop being
    /// cooperative. Read on every chaos seam, hence atomic.
    free_run: AtomicBool,
}

impl Scheduler {
    /// A scheduler for `expected` virtual threads, budgeted to
    /// `max_steps` yields, drawing picks from `seed` (or from `script`
    /// while it lasts — past its end the pick is the canonical index 0).
    pub fn new(expected: usize, max_steps: usize, seed: u64, script: Option<Vec<u32>>) -> Self {
        Scheduler {
            expected,
            max_steps,
            state: Mutex::new(SchedState {
                registered: 0,
                current: None,
                runnable: BTreeSet::new(),
                finished: 0,
                rng: SplitMix64::new(seed ^ 0x5C4E_D01E_D57A_7051),
                script,
                decisions: Vec::new(),
                trace: Vec::new(),
                steps: 0,
            }),
            turn: Condvar::new(),
            hung: AtomicBool::new(false),
            free_run: AtomicBool::new(false),
        }
    }

    /// Whether the scheduler is in free-run (liveness verdict reached).
    pub fn free_running(&self) -> bool {
        self.free_run.load(Ordering::Acquire)
    }

    /// Whether the run exhausted its step budget.
    pub fn hung(&self) -> bool {
        self.hung.load(Ordering::Acquire)
    }

    fn enter_free_run(&self) {
        self.free_run.store(true, Ordering::Release);
        self.turn.notify_all();
    }

    /// Pick the next thread to run. Caller holds the state lock and has
    /// ensured `current` is `None`.
    fn pick_next(&self, s: &mut SchedState) {
        debug_assert!(s.current.is_none());
        let len = s.runnable.len();
        if len == 0 {
            return; // everyone finished (or none registered yet)
        }
        let idx = match &s.script {
            Some(script) => match script.get(s.decisions.len()) {
                Some(&i) => (i as usize).min(len - 1),
                // Past the script's end: the canonical choice, so a
                // shrunk prefix still describes a complete run.
                None => 0,
            },
            None => s.rng.below(len),
        };
        s.decisions.push(idx as u32);
        let chosen = *s.runnable.iter().nth(idx).expect("idx < len");
        s.runnable.remove(&chosen);
        s.current = Some(chosen);
    }

    /// Announce virtual thread `vt` and block until it is granted the
    /// first turn. Scheduling starts once all `expected` threads are
    /// registered; registration *order* (which is OS-dependent) is
    /// irrelevant because no pick happens before the set is complete.
    pub fn register(&self, vt: usize) {
        let mut s = self.state.lock().expect("scheduler state");
        s.runnable.insert(vt);
        s.registered += 1;
        if s.registered == self.expected {
            self.pick_next(&mut s);
            self.turn.notify_all();
        }
        while s.current != Some(vt) && !self.free_running() {
            s = self.turn.wait(s).expect("scheduler state");
        }
    }

    /// Record `kind`, hand the baton back, and block until it returns to
    /// `vt`. The core of every yield point.
    pub fn yield_turn(&self, vt: usize, kind: TraceKind) {
        if self.free_running() {
            return;
        }
        let mut s = self.state.lock().expect("scheduler state");
        if s.current != Some(vt) {
            // Only possible when free-run flipped between the check above
            // and the lock: we no longer own the baton, just keep going.
            return;
        }
        s.steps += 1;
        let step = s.steps;
        s.trace.push(TraceEvent { step, vt, kind });
        if s.steps >= self.max_steps {
            self.hung.store(true, Ordering::Release);
            drop(s);
            self.enter_free_run();
            return;
        }
        s.runnable.insert(vt);
        s.current = None;
        self.pick_next(&mut s);
        if s.current == Some(vt) {
            return; // the pick chose us again; keep running
        }
        self.turn.notify_all();
        while s.current != Some(vt) && !self.free_running() {
            s = self.turn.wait(s).expect("scheduler state");
        }
    }

    /// Virtual thread `vt` finished its session script: record the end,
    /// release the baton for good and wake whoever is next (or the main
    /// thread, when this was the last one).
    pub fn finish(&self, vt: usize) {
        let mut s = self.state.lock().expect("scheduler state");
        s.finished += 1;
        let step = s.steps;
        s.trace.push(TraceEvent {
            step,
            vt,
            kind: TraceKind::End,
        });
        if s.current == Some(vt) {
            s.current = None;
            self.pick_next(&mut s);
        }
        self.turn.notify_all();
    }

    /// Block the main thread until every session finished, the run hung
    /// (step budget), or `real_time_guard` of wall-clock time passed
    /// without completion (a non-yielding livelock — also a hang).
    /// Returns `true` when all sessions finished cleanly.
    pub fn wait_all_finished(&self, real_time_guard: Duration) -> bool {
        let deadline = std::time::Instant::now() + real_time_guard;
        let mut s = self.state.lock().expect("scheduler state");
        loop {
            // Hung wins over finished: free-run may let the remaining
            // sessions drain, but the budget already expired — the run is
            // a liveness failure regardless.
            if self.hung() {
                return false;
            }
            if s.finished == self.expected {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                self.hung.store(true, Ordering::Release);
                drop(s);
                self.enter_free_run();
                return false;
            }
            let (guard, _timeout) = self
                .turn
                .wait_timeout(s, deadline - now)
                .expect("scheduler state");
            s = guard;
        }
    }

    /// The rendered trace and the decision list (choice indices in pick
    /// order). Call only after [`Scheduler::wait_all_finished`].
    pub fn into_outcome(&self) -> (String, Vec<u32>, usize) {
        let s = self.state.lock().expect("scheduler state");
        let mut text = String::new();
        for ev in &s.trace {
            ev.render(&mut text);
        }
        (text, s.decisions.clone(), s.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Three threads, each yielding a few times: every thread gets turns,
    /// all finish, and the same seed produces the same decisions.
    fn run_once(seed: u64) -> (String, Vec<u32>) {
        let sched = Arc::new(Scheduler::new(3, 10_000, seed, None));
        let mut handles = Vec::new();
        for vt in 0..3 {
            let sched = sched.clone();
            handles.push(std::thread::spawn(move || {
                sched.register(vt);
                for _ in 0..5 {
                    sched.yield_turn(
                        vt,
                        TraceKind::Chaos {
                            point: ChaosPoint::LockContended,
                            txn: None,
                        },
                    );
                }
                sched.finish(vt);
            }));
        }
        assert!(sched.wait_all_finished(Duration::from_secs(10)));
        for h in handles {
            h.join().unwrap();
        }
        let (trace, decisions, _steps) = sched.into_outcome();
        (trace, decisions)
    }

    #[test]
    fn same_seed_same_schedule() {
        let (t1, d1) = run_once(99);
        let (t2, d2) = run_once(99);
        assert_eq!(t1, t2, "byte-identical trace");
        assert_eq!(d1, d2);
        let (t3, _) = run_once(100);
        assert_ne!(t1, t3, "different seed, different interleaving");
    }

    #[test]
    fn step_budget_declares_a_hang() {
        let sched = Arc::new(Scheduler::new(1, 10, 1, None));
        let s2 = sched.clone();
        let h = std::thread::spawn(move || {
            s2.register(0);
            // Spin forever: only the budget stops us.
            loop {
                if s2.free_running() {
                    break;
                }
                s2.yield_turn(
                    0,
                    TraceKind::Chaos {
                        point: ChaosPoint::CondvarWait,
                        txn: None,
                    },
                );
            }
            s2.finish(0);
        });
        assert!(!sched.wait_all_finished(Duration::from_secs(10)), "hang detected");
        assert!(sched.hung());
        h.join().unwrap();
    }

    #[test]
    fn script_forces_the_schedule() {
        // With 2 threads the first pick has 2 candidates; force vt 1
        // first, then drain canonically.
        let sched = Arc::new(Scheduler::new(2, 1000, 7, Some(vec![1])));
        let mut handles = Vec::new();
        for vt in 0..2 {
            let sched = sched.clone();
            handles.push(std::thread::spawn(move || {
                sched.register(vt);
                sched.yield_turn(
                    vt,
                    TraceKind::Chaos {
                        point: ChaosPoint::DeliverDrain,
                        txn: None,
                    },
                );
                sched.finish(vt);
            }));
        }
        assert!(sched.wait_all_finished(Duration::from_secs(10)));
        for h in handles {
            h.join().unwrap();
        }
        let (trace, decisions, _) = sched.into_outcome();
        let first = trace.lines().next().unwrap();
        assert!(first.contains("vt=1"), "scripted first turn, got:\n{trace}");
        assert_eq!(decisions[0], 1, "the scripted choice was recorded");
    }
}
