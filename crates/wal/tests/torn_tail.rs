//! Engine-level torn-tail and marker recovery tests.
//!
//! These drive [`Wal::open`]'s repair path with crafted crash images:
//! copies of a real log directory with files truncated at chosen offsets.
//! Surgery respects the *valid crash-image space*: a cross-shard marker is
//! flushed only after every member fragment is flushed, so an image may
//! lose a marker while keeping its data, or lose data *and* the marker —
//! but never keep a marker whose member data is gone. The random-offset
//! proptest therefore truncates a single-shard-commit-only log (any offset
//! is a reachable crash state there), while the marker scenarios use
//! targeted surgery.

use proptest::prelude::*;
use sbcc_adt::{OpCall, OpResult};
use sbcc_wal::{
    marker_path, shard_log_path, FsyncPolicy, LoggedOp, SequencedRecord, Wal, WalConfig,
    WalRecord,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "sbcc-wal-torn-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn truncate(path: &Path, len: u64) {
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len).unwrap();
}

fn push(i: i64) -> OpCall {
    OpCall::unary(0, i)
}

fn op(name: &str, i: i64) -> LoggedOp {
    LoggedOp {
        object: name.to_owned(),
        call: push(i),
        result: OpResult::Ok,
    }
}

fn config(dir: &Path) -> WalConfig {
    WalConfig::new(dir).with_fsync(FsyncPolicy::Always)
}

fn reopen(dir: &Path, shards: usize) -> Vec<SequencedRecord> {
    let (_wal, records) = Wal::open(&config(dir), shards, None).unwrap();
    records
}

/// Build a two-shard log with registrations and `n` single-shard commits
/// alternating between the shards; return the canonical record list.
fn build_single_commit_log(dir: &Path, n: i64) -> Vec<SequencedRecord> {
    let (wal, existing) = Wal::open(&config(dir), 2, None).unwrap();
    assert!(existing.is_empty());
    wal.append_register(0, "stack-a", "stack");
    wal.append_register(1, "stack-b", "stack");
    for i in 0..n {
        let shard = (i % 2) as u32;
        let name = if shard == 0 { "stack-a" } else { "stack-b" };
        wal.append_commit(shard, None, &[op(name, i)]);
    }
    drop(wal);
    reopen(dir, 2)
}

#[test]
fn clean_reopen_returns_every_record_in_seq_order() {
    let dir = ScratchDir::new("clean");
    let records = build_single_commit_log(dir.path(), 10);
    // 2 registrations + 10 commits, globally seq-sorted.
    assert_eq!(records.len(), 12);
    for pair in records.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    assert!(matches!(records[0].record, WalRecord::Register { .. }));
    let commits = records
        .iter()
        .filter(|r| matches!(r.record, WalRecord::Commit { .. }))
        .count();
    assert_eq!(commits, 10);
    // Reopening repeatedly is idempotent.
    assert_eq!(reopen(dir.path(), 2), records);
}

#[test]
fn reopen_with_fewer_shards_still_replays_every_file() {
    let dir = ScratchDir::new("reshard");
    let records = build_single_commit_log(dir.path(), 10);
    // A later run with SBCC_SHARDS=1 must still see shard-1.log's records.
    assert_eq!(reopen(dir.path(), 1), records);
}

#[test]
fn truncated_marker_drops_every_fragment_of_the_multi_commit() {
    let dir = ScratchDir::new("marker");
    let (wal, _) = Wal::open(&config(dir.path()), 2, None).unwrap();
    wal.append_register(0, "stack-a", "stack");
    wal.append_register(1, "stack-b", "stack");
    wal.append_commit(0, None, &[op("stack-a", 1)]);
    let gid = wal.next_gid();
    wal.append_commit(0, Some(gid), &[op("stack-a", 2)]);
    wal.append_commit(1, Some(gid), &[op("stack-b", 2)]);
    wal.flush_shard(0);
    wal.flush_shard(1);
    wal.commit_marker(gid);
    drop(wal);

    let full = reopen(dir.path(), 2);
    let multi = full
        .iter()
        .filter(|r| matches!(r.record, WalRecord::Commit { multi_gid: Some(_), .. }))
        .count();
    assert_eq!(multi, 2, "marker present: both fragments replayed");

    // Crash image: the marker never hit the disk (crash after the data
    // flushes, before the marker flush). Both fragments must vanish; the
    // earlier single-shard commit must survive.
    let crashed = ScratchDir::new("marker-crash");
    copy_dir(dir.path(), crashed.path());
    truncate(&marker_path(crashed.path()), 0);
    let recovered = reopen(crashed.path(), 2);
    assert!(
        recovered
            .iter()
            .all(|r| !matches!(r.record, WalRecord::Commit { multi_gid: Some(_), .. })),
        "no fragment of an unmarked multi-shard commit may be replayed"
    );
    let singles = recovered
        .iter()
        .filter(|r| matches!(r.record, WalRecord::Commit { multi_gid: None, .. }))
        .count();
    assert_eq!(singles, 1);
}

#[test]
fn crash_between_per_shard_flushes_loses_the_whole_multi_commit() {
    let dir = ScratchDir::new("between");
    let (wal, _) = Wal::open(&config(dir.path()), 2, None).unwrap();
    wal.append_register(0, "stack-a", "stack");
    wal.append_register(1, "stack-b", "stack");
    let before_fragment = std::fs::metadata(shard_log_path(dir.path(), 1))
        .unwrap()
        .len();
    let gid = wal.next_gid();
    wal.append_commit(0, Some(gid), &[op("stack-a", 7)]);
    wal.append_commit(1, Some(gid), &[op("stack-b", 7)]);
    wal.flush_shard(0);
    wal.flush_shard(1);
    wal.commit_marker(gid);
    drop(wal);

    // Crash image: shard 0's fragment reached the disk, shard 1's did not,
    // so the marker (flushed strictly after both) is gone too.
    let crashed = ScratchDir::new("between-crash");
    copy_dir(dir.path(), crashed.path());
    truncate(&shard_log_path(crashed.path(), 1), before_fragment);
    truncate(&marker_path(crashed.path()), 0);
    let recovered = reopen(crashed.path(), 2);
    assert!(
        recovered
            .iter()
            .all(|r| matches!(r.record, WalRecord::Register { .. })),
        "surviving fragment must be dropped: only registrations remain, got {recovered:?}"
    );
}

#[test]
fn seq_counter_resumes_past_every_recovered_record() {
    let dir = ScratchDir::new("seqresume");
    let records = build_single_commit_log(dir.path(), 6);
    let max_seq = records.iter().map(|r| r.seq).max().unwrap();
    let (wal, _) = Wal::open(&config(dir.path()), 2, None).unwrap();
    wal.append_commit(0, None, &[op("stack-a", 99)]);
    drop(wal);
    let after = reopen(dir.path(), 2);
    let new_seq = after.iter().map(|r| r.seq).max().unwrap();
    assert!(new_seq > max_seq, "fresh appends must sort after recovery");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating a single-commit-only log at ANY byte offset recovers a
    /// clean prefix of that shard's records (and the torn file is repaired
    /// in place, so a second open parses it without loss).
    #[test]
    fn random_truncation_recovers_a_per_shard_prefix(cut_permille in 0u64..1000) {
        let dir = ScratchDir::new("prop");
        let full = build_single_commit_log(dir.path(), 16);
        let shard0 = shard_log_path(dir.path(), 0);
        let full_len = std::fs::metadata(&shard0).unwrap().len();
        let cut = full_len * cut_permille / 1000;

        let crashed = ScratchDir::new("prop-crash");
        copy_dir(dir.path(), crashed.path());
        truncate(&shard_log_path(crashed.path(), 0), cut);

        let recovered = reopen(crashed.path(), 2);
        // Shard 1 is untouched: all of its records survive.
        let shard1_full: Vec<_> = full
            .iter()
            .filter(|r| record_object(r) == Some("stack-b"))
            .collect();
        let shard1_rec: Vec<_> = recovered
            .iter()
            .filter(|r| record_object(r) == Some("stack-b"))
            .collect();
        prop_assert_eq!(shard1_full, shard1_rec);
        // Shard 0 recovers a prefix of its own record sequence.
        let shard0_full: Vec<_> = full
            .iter()
            .filter(|r| record_object(r) == Some("stack-a"))
            .collect();
        let shard0_rec: Vec<_> = recovered
            .iter()
            .filter(|r| record_object(r) == Some("stack-a"))
            .collect();
        prop_assert!(shard0_rec.len() <= shard0_full.len());
        prop_assert_eq!(&shard0_full[..shard0_rec.len()], &shard0_rec[..]);
        // Repair is stable: the truncated file now ends on a record
        // boundary and a fresh open sees the identical record set.
        prop_assert_eq!(reopen(crashed.path(), 2), recovered);
    }
}

/// The object a record concerns, for attributing records to a shard.
fn record_object(r: &SequencedRecord) -> Option<&str> {
    match &r.record {
        WalRecord::Register { name, .. } => Some(name),
        WalRecord::Commit { ops, .. } => ops.first().map(|o| o.object.as_str()),
        WalRecord::Marker { .. } => None,
    }
}
