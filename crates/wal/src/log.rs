//! The append engine: per-shard log files, fsync policies, group commit.
//!
//! One [`Wal`] owns one append-only file per shard (`shard-{k}.log`) plus a
//! shared marker file (`commit-markers.log`) for cross-shard commit markers.
//! Every record carries a global sequence number drawn from a shared counter
//! **inside the per-file mutex**, so each file is individually seq-sorted
//! and recovery can merge files by `seq` alone.
//!
//! ## Fsync policies
//!
//! * [`FsyncPolicy::Never`] — records are written straight to the file but
//!   never fsynced. Fast, survives process kill (the OS page cache keeps
//!   written bytes) but not power loss. `wait_durable` never blocks.
//! * [`FsyncPolicy::GroupCommit`] — records are buffered in memory; a
//!   flusher thread writes + fsyncs all shards once per window, amortising
//!   the fsync across every commit that landed in the window. Committers
//!   block in `wait_durable` until the flush covering their record runs.
//! * [`FsyncPolicy::Always`] — write + fsync inline on every append.
//!
//! Registrations and cross-shard markers are always flushed at append,
//! whatever the policy (fsynced unless the policy is `Never`): a commit
//! record must never become durable before the registration it references,
//! and a marker is the multi-shard commit's durability point.
//!
//! ## Clock seam
//!
//! The flusher's window timer sits behind an injected [`GroupClock`]
//! closure so `sbcc-core` (which sits *above* this crate) can route it
//! through `chaos::TimeoutPoint::GroupCommit`: `Some(true)` means "the
//! window elapsed, flush now", `Some(false)` means "not yet", `None` means
//! "no virtual clock installed, use the real timer".
//!
//! ## Errors
//!
//! I/O errors on the hot append/flush path **panic**: once a write to the
//! log fails the process can no longer promise durability for anything it
//! acknowledges, and the deterministic-simulation harness exercises crash
//! recovery far more honestly than an in-process error path would.
//! Recovery-time errors (in [`Wal::open`]) are returned as [`WalError`].

use crate::record::{encode_record, parse_log, LoggedOp, SequencedRecord, WalRecord};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// When (and whether) appended records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Write without fsync; survives `kill -9`, not power loss.
    Never,
    /// Buffer appends; one flush + fsync per group-commit window.
    GroupCommit,
    /// Write + fsync inline on every append.
    Always,
}

/// Durability configuration carried by `DatabaseConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    /// Directory holding `shard-{k}.log` files and `commit-markers.log`.
    pub dir: PathBuf,
    /// Fsync policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Flush window for [`FsyncPolicy::GroupCommit`]; ignored otherwise.
    pub group_commit_window: Duration,
}

impl WalConfig {
    /// Group-commit config with the default 2 ms window.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::GroupCommit,
            group_commit_window: Duration::from_millis(2),
        }
    }

    /// Builder: set the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: set the group-commit window.
    pub fn with_window(mut self, window: Duration) -> Self {
        self.group_commit_window = window;
        self
    }
}

/// Virtual-clock seam for the group-commit flusher. Consulted once per
/// flusher iteration: `Some(true)` = window elapsed (flush now),
/// `Some(false)` = window still open (poll again shortly), `None` = no
/// virtual clock (sleep the real window, then flush).
pub type GroupClock = Arc<dyn Fn() -> Option<bool> + Send + Sync>;

/// Recovery-time WAL failure (I/O on open/scan/truncate).
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation on `path` failed while opening or repairing a log.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o error on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for WalError {}

/// Path of shard `k`'s log file inside `dir`.
pub fn shard_log_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard}.log"))
}

/// Path of the cross-shard commit-marker file inside `dir`.
pub fn marker_path(dir: &Path) -> PathBuf {
    dir.join("commit-markers.log")
}

struct LogState {
    file: File,
    /// Pending bytes not yet written to the file (GroupCommit only).
    buf: Vec<u8>,
    /// Ticket counter: number of records appended to this log so far.
    appended: u64,
}

struct ShardLog {
    path: PathBuf,
    state: Mutex<LogState>,
    /// Highest ticket whose record is written (and fsynced, unless the
    /// policy is `Never`). Guarded separately so waiters never contend
    /// with appenders.
    durable: Mutex<u64>,
    cv: Condvar,
}

impl ShardLog {
    fn open_append(path: PathBuf) -> Result<ShardLog, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|source| WalError::Io {
                path: path.clone(),
                source,
            })?;
        Ok(ShardLog {
            path,
            state: Mutex::new(LogState {
                file,
                buf: Vec::new(),
                appended: 0,
            }),
            durable: Mutex::new(0),
            cv: Condvar::new(),
        })
    }
}

struct WalInner {
    policy: FsyncPolicy,
    window: Duration,
    clock: Option<GroupClock>,
    /// Global record sequence; fetched inside each log's state mutex so
    /// every file is individually seq-sorted.
    global_seq: AtomicU64,
    logs: Vec<ShardLog>,
    marker: ShardLog,
    shutdown: AtomicBool,
}

impl WalInner {
    fn log(&self, shard: u32) -> &ShardLog {
        &self.logs[shard as usize]
    }

    /// Append one record to `log`; returns `(seq, ticket)`.
    fn append(&self, log: &ShardLog, record: &WalRecord) -> (u64, u64) {
        let mut state = log.state.lock().unwrap();
        let seq = self.global_seq.fetch_add(1, Ordering::Relaxed);
        let bytes = encode_record(seq, record);
        state.appended += 1;
        let ticket = state.appended;
        match self.policy {
            FsyncPolicy::GroupCommit => state.buf.extend_from_slice(&bytes),
            FsyncPolicy::Never | FsyncPolicy::Always => {
                state
                    .file
                    .write_all(&bytes)
                    .unwrap_or_else(|e| panic!("wal append to {}: {e}", log.path.display()));
                if self.policy == FsyncPolicy::Always {
                    state
                        .file
                        .sync_data()
                        .unwrap_or_else(|e| panic!("wal fsync of {}: {e}", log.path.display()));
                }
                drop(state);
                Self::advance_durable(log, ticket);
            }
        }
        (seq, ticket)
    }

    /// Write out any buffered records and (policy permitting) fsync, then
    /// publish the covered tickets as durable.
    fn flush(&self, log: &ShardLog) {
        let mut state = log.state.lock().unwrap();
        let covered = state.appended;
        if covered <= *log.durable.lock().unwrap() {
            return; // nothing appended since the last flush
        }
        if !state.buf.is_empty() {
            let buf = std::mem::take(&mut state.buf);
            state
                .file
                .write_all(&buf)
                .unwrap_or_else(|e| panic!("wal flush to {}: {e}", log.path.display()));
        }
        if self.policy != FsyncPolicy::Never {
            state
                .file
                .sync_data()
                .unwrap_or_else(|e| panic!("wal fsync of {}: {e}", log.path.display()));
        }
        drop(state);
        Self::advance_durable(log, covered);
    }

    fn advance_durable(log: &ShardLog, ticket: u64) {
        let mut durable = log.durable.lock().unwrap();
        if *durable < ticket {
            *durable = ticket;
            log.cv.notify_all();
        }
    }

    fn flush_all(&self) {
        for log in &self.logs {
            self.flush(log);
        }
        self.flush(&self.marker);
    }

    /// Group-commit flusher body. Consults the virtual clock each
    /// iteration; with no clock installed, sleeps the real window.
    fn flusher_loop(&self) {
        let poll = Duration::from_millis(1);
        while !self.shutdown.load(Ordering::Acquire) {
            let fire = match &self.clock {
                Some(clock) => clock(),
                None => None,
            };
            match fire {
                Some(true) => {
                    self.flush_all();
                    std::thread::sleep(poll);
                }
                Some(false) => std::thread::sleep(poll),
                None => {
                    std::thread::sleep(self.window);
                    self.flush_all();
                }
            }
        }
    }
}

/// A live write-ahead log: one append-only file per shard plus the
/// cross-shard marker file. Construct with [`Wal::open`], which also
/// performs torn-tail repair and returns the surviving records for replay.
pub struct Wal {
    inner: Arc<WalInner>,
    flusher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("policy", &self.inner.policy)
            .field("shards", &self.inner.logs.len())
            .finish()
    }
}

impl Wal {
    /// Open (or create) the log directory for `shards` shards.
    ///
    /// Recovery steps, in order:
    ///
    /// 1. Parse **every** `shard-*.log` in the directory — including files
    ///    from a previous run with a different shard count — stopping each
    ///    at its first torn or corrupt frame and truncating the file there.
    /// 2. Parse (and likewise repair) the marker file, collecting the set
    ///    of durable cross-shard commit group ids.
    /// 3. Drop commit records whose `multi_gid` has no durable marker: the
    ///    crash hit between the per-shard flushes of a multi-shard commit,
    ///    so the transaction never became durable anywhere. Later records
    ///    are kept — anything appended after an unmarked multi-shard record
    ///    was classified against that transaction's then-uncommitted
    ///    operations, so its presence proves state-commutativity.
    /// 4. Merge the survivors by global sequence number (each file is
    ///    individually sorted, so a stable sort suffices) and return them
    ///    for the caller to replay.
    ///
    /// The returned `Wal` appends to `shard-{0..shards}.log`; the caller
    /// replays the returned records **before** routing new commits here.
    pub fn open(
        config: &WalConfig,
        shards: usize,
        clock: Option<GroupClock>,
    ) -> Result<(Wal, Vec<SequencedRecord>), WalError> {
        std::fs::create_dir_all(&config.dir).map_err(|source| WalError::Io {
            path: config.dir.clone(),
            source,
        })?;

        // 1. Scan + repair every shard log present, whatever its index.
        let mut shard_files: Vec<(u32, PathBuf)> = Vec::new();
        let entries = std::fs::read_dir(&config.dir).map_err(|source| WalError::Io {
            path: config.dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| WalError::Io {
                path: config.dir.clone(),
                source,
            })?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = name
                .strip_prefix("shard-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u32>().ok())
            {
                shard_files.push((idx, entry.path()));
            }
        }
        shard_files.sort_unstable();

        let mut max_seq: Option<u64> = None;
        let note_seq = |records: &[SequencedRecord], max_seq: &mut Option<u64>| {
            for r in records {
                *max_seq = Some(max_seq.map_or(r.seq, |m| m.max(r.seq)));
            }
        };

        let mut data: Vec<SequencedRecord> = Vec::new();
        for (_, path) in &shard_files {
            let parsed = read_and_repair(path)?;
            note_seq(&parsed, &mut max_seq);
            data.extend(parsed);
        }

        // 2. Marker file → durable multi-shard commit groups.
        let marker_file = marker_path(&config.dir);
        let markers = if marker_file.exists() {
            read_and_repair(&marker_file)?
        } else {
            Vec::new()
        };
        note_seq(&markers, &mut max_seq);
        let marked: std::collections::HashSet<u64> = markers
            .iter()
            .filter_map(|r| match r.record {
                WalRecord::Marker { gid } => Some(gid),
                _ => None,
            })
            .collect();

        // 3. Drop multi-shard commits that never reached their marker.
        data.retain(|r| match &r.record {
            WalRecord::Commit {
                multi_gid: Some(gid),
                ..
            } => marked.contains(gid),
            _ => true,
        });

        // 4. Merge by seq (stable: files are individually sorted).
        data.sort_by_key(|r| r.seq);

        let mut logs = Vec::with_capacity(shards);
        for k in 0..shards {
            logs.push(ShardLog::open_append(shard_log_path(&config.dir, k as u32))?);
        }
        let marker = ShardLog::open_append(marker_file)?;

        let inner = Arc::new(WalInner {
            policy: config.fsync,
            window: config.group_commit_window,
            clock,
            global_seq: AtomicU64::new(max_seq.map_or(0, |m| m + 1)),
            logs,
            marker,
            shutdown: AtomicBool::new(false),
        });
        let flusher = if config.fsync == FsyncPolicy::GroupCommit {
            let inner2 = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("sbcc-wal-flusher".into())
                    .spawn(move || inner2.flusher_loop())
                    .expect("spawn wal flusher"),
            )
        } else {
            None
        };
        Ok((Wal { inner, flusher }, data))
    }

    /// Append a registration record and flush it immediately: no commit
    /// record referencing `name` may become durable before this does.
    pub fn append_register(&self, shard: u32, name: &str, type_name: &str) {
        let log = self.inner.log(shard);
        self.inner.append(
            log,
            &WalRecord::Register {
                name: name.to_owned(),
                type_name: type_name.to_owned(),
            },
        );
        self.inner.flush(log);
    }

    /// Append a commit record; returns the durability ticket to pass to
    /// [`Wal::wait_durable`]. `multi_gid` is `Some` for the per-shard
    /// fragments of a cross-shard commit (which only become recoverable
    /// once [`Wal::commit_marker`] runs for that gid).
    pub fn append_commit(&self, shard: u32, multi_gid: Option<u64>, ops: &[LoggedOp]) -> u64 {
        let record = WalRecord::Commit {
            multi_gid,
            ops: ops.to_vec(),
        };
        self.inner.append(self.inner.log(shard), &record).1
    }

    /// Draw a fresh cross-shard commit group id (from the same counter as
    /// record sequence numbers, so ids are unique across restarts).
    pub fn next_gid(&self) -> u64 {
        self.inner.global_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Flush one shard's log now (write + fsync unless the policy is
    /// `Never`), regardless of the group-commit window.
    pub fn flush_shard(&self, shard: u32) {
        self.inner.flush(self.inner.log(shard));
    }

    /// Append + flush the durability marker for cross-shard commit `gid`.
    /// Must be called only after every member shard's fragment is flushed:
    /// the marker's presence asserts the whole transaction is durable.
    pub fn commit_marker(&self, gid: u64) {
        self.inner.append(&self.inner.marker, &WalRecord::Marker { gid });
        self.inner.flush(&self.inner.marker);
    }

    /// Block until shard `shard`'s record with this ticket is durable.
    /// No-op unless the policy is `GroupCommit` (the other policies settle
    /// durability inline at append).
    pub fn wait_durable(&self, shard: u32, ticket: u64) {
        if self.inner.policy != FsyncPolicy::GroupCommit {
            return;
        }
        let log = self.inner.log(shard);
        let mut durable = log.durable.lock().unwrap();
        while *durable < ticket {
            durable = log.cv.wait(durable).unwrap();
        }
    }

    /// Highest durable ticket for `shard` (diagnostics / tests).
    pub fn durable_ticket(&self, shard: u32) -> u64 {
        *self.inner.log(shard).durable.lock().unwrap()
    }

    /// The fsync policy this log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.inner.policy
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
        self.inner.flush_all();
    }
}

/// Read `path`, parse it, and truncate any torn tail in place. Returns the
/// valid record prefix.
fn read_and_repair(path: &Path) -> Result<Vec<SequencedRecord>, WalError> {
    let io = |source| WalError::Io {
        path: path.to_path_buf(),
        source,
    };
    let bytes = std::fs::read(path).map_err(io)?;
    let parsed = parse_log(&bytes);
    if parsed.valid_len < bytes.len() {
        let file = OpenOptions::new().write(true).open(path).map_err(io)?;
        file.set_len(parsed.valid_len as u64).map_err(io)?;
        file.sync_data().map_err(io)?;
    }
    Ok(parsed.records)
}
