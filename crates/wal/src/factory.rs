//! Reconstructing empty objects from logged type names at recovery.
//!
//! The WAL records an object **registration** as `(name, type_name)` — never
//! the object's state. Replay therefore needs a way back from the type name
//! to a fresh, empty instance of the data type; the committed operations in
//! the log rebuild the state from there. Only the built-in table-driven ADTs
//! are reconstructible: [`sbcc_adt::AbstractObject`] carries a runtime
//! conflict table that the log does not capture, so a database with a WAL
//! attached refuses to register one (the caller sees
//! `CoreError::Durability`).

use sbcc_adt::{
    AdtObject, Counter, FifoQueue, Page, SemanticObject, Set, Stack, TableObject,
};

/// Type names the factory can reconstruct, i.e. the types a WAL-backed
/// database accepts at registration.
pub const SUPPORTED_TYPE_NAMES: &[&str] = &["counter", "page", "queue", "set", "stack", "table"];

/// Whether [`instantiate`] can rebuild an empty instance of `type_name`.
pub fn supports(type_name: &str) -> bool {
    SUPPORTED_TYPE_NAMES.contains(&type_name)
}

/// Build a fresh, empty object of the named type, or `None` for types the
/// log cannot reconstruct (e.g. `"abstract"`).
pub fn instantiate(type_name: &str) -> Option<Box<dyn SemanticObject>> {
    Some(match type_name {
        "counter" => Box::new(AdtObject::new(Counter::new())),
        "page" => Box::new(AdtObject::new(Page::new())),
        "queue" => Box::new(AdtObject::new(FifoQueue::new())),
        "set" => Box::new(AdtObject::new(Set::new())),
        "stack" => Box::new(AdtObject::new(Stack::new())),
        "table" => Box::new(AdtObject::new(TableObject::new())),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_supported_name_instantiates_to_its_own_empty_type() {
        for &name in SUPPORTED_TYPE_NAMES {
            assert!(supports(name));
            let obj = instantiate(name).expect(name);
            assert_eq!(obj.type_name(), name);
            // A fresh instance must equal another fresh instance: recovery
            // relies on `instantiate` producing the canonical empty state.
            let again = instantiate(name).unwrap();
            assert!(obj.state_eq(again.as_ref()));
        }
    }

    #[test]
    fn unknown_and_abstract_types_are_refused() {
        assert!(!supports("abstract"));
        assert!(instantiate("abstract").is_none());
        assert!(instantiate("no-such-type").is_none());
    }
}
