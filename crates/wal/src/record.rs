//! The on-disk record codec: length-prefixed, checksummed frames holding
//! **semantic** log records — the operation calls a committed transaction
//! executed, never materialized object state.
//!
//! ## Frame layout
//!
//! ```text
//! [ body_len: u32 LE ][ body ][ fnv1a64(body): u64 LE ]
//! ```
//!
//! ## Body layout
//!
//! ```text
//! seq: u64 LE          — global sequence number (total order across files)
//! tag: u8              — 1 Register, 2 Commit, 3 Marker
//! Register:  name: str, type_name: str
//! Commit:    multi: u8 (0|1) [, gid: u64], n_ops: u32,
//!            n_ops × { object: str, call: OpCall, result: OpResult }
//! Marker:    gid: u64
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. A record that cannot be fully
//! decoded (short frame, bad checksum, malformed body) ends the parse:
//! [`parse_log`] returns every record before it plus the byte offset of
//! the valid prefix, which recovery truncates the file to — the torn-tail
//! contract.

use sbcc_adt::{OpCall, OpResult, Value};

/// Upper bound on one record body; anything larger is treated as
/// corruption (a torn length prefix would otherwise ask for gigabytes).
pub const MAX_RECORD_LEN: usize = 1 << 24;

const TAG_REGISTER: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_MARKER: u8 = 3;

/// One logged operation of a committed transaction: the object's
/// registration name plus the executed call and its observed result (the
/// result pins replay equivalence — recovery re-executes the call and
/// verifies it computes the same answer).
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedOp {
    /// Registration name of the object the operation ran against.
    pub object: String,
    /// The executed operation.
    pub call: OpCall,
    /// The result the original execution observed.
    pub result: OpResult,
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An object registration: recovery re-instantiates the type through
    /// the [`crate::factory`] and re-registers it under `name`.
    Register {
        /// Registration name.
        name: String,
        /// The ADT's [`sbcc_adt::SemanticObject::type_name`].
        type_name: String,
    },
    /// A committed transaction's operations against one shard.
    /// `multi_gid` is `None` for single-shard commits; multi-shard commits
    /// carry the group id that ties their per-shard records to the commit
    /// marker — a multi record whose gid has no durable [`WalRecord::Marker`]
    /// is skipped wholesale at recovery (never half-applied).
    Commit {
        /// Cross-shard group id, when part of a multi-shard commit.
        multi_gid: Option<u64>,
        /// The transaction's operations on this shard, in execution order.
        ops: Vec<LoggedOp>,
    },
    /// The cross-shard commit marker for group `gid`: durable iff every
    /// member shard's data record was flushed first.
    Marker {
        /// The group id the marker commits.
        gid: u64,
    },
}

/// The distinct object names a commit record's operations touch, sorted
/// and deduplicated — the declared *write* footprint replay hands to the
/// session layer so a recovered transaction's operations are re-admitted
/// as one declared group (zero per-op classification on an otherwise
/// idle recovery kernel).
pub fn footprint(ops: &[LoggedOp]) -> Vec<String> {
    let mut names: Vec<String> = ops.iter().map(|op| op.object.clone()).collect();
    names.sort();
    names.dedup();
    names
}

/// A record plus its global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedRecord {
    /// Global sequence number (strictly increasing within each file).
    pub seq: u64,
    /// The decoded record.
    pub record: WalRecord,
}

/// The result of parsing one log file.
#[derive(Debug)]
pub struct ParsedLog {
    /// Every record of the valid prefix, in file order.
    pub records: Vec<SequencedRecord>,
    /// Byte length of the valid prefix (recovery truncates the file here).
    pub valid_len: usize,
    /// Why the parse stopped early, when it did (torn tail / corruption).
    pub torn: Option<String>,
}

// ---------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------

/// FNV-1a over the record body — cheap, allocation-free, and plenty for
/// detecting torn tails (this is not a cryptographic integrity claim).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            put_u64(buf, *i as u64);
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

fn put_call(buf: &mut Vec<u8>, call: &OpCall) {
    put_u32(buf, call.kind as u32);
    put_u32(buf, call.params.len() as u32);
    for p in &call.params {
        put_value(buf, p);
    }
}

fn put_result(buf: &mut Vec<u8>, result: &OpResult) {
    match result {
        OpResult::Ok => buf.push(0),
        OpResult::Success => buf.push(1),
        OpResult::Failure => buf.push(2),
        OpResult::Value(v) => {
            buf.push(3);
            put_value(buf, v);
        }
        OpResult::Null => buf.push(4),
    }
}

/// Encode one record into its framed wire form.
pub fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_u64(&mut body, seq);
    match record {
        WalRecord::Register { name, type_name } => {
            body.push(TAG_REGISTER);
            put_str(&mut body, name);
            put_str(&mut body, type_name);
        }
        WalRecord::Commit { multi_gid, ops } => {
            body.push(TAG_COMMIT);
            match multi_gid {
                Some(gid) => {
                    body.push(1);
                    put_u64(&mut body, *gid);
                }
                None => body.push(0),
            }
            put_u32(&mut body, ops.len() as u32);
            for op in ops {
                put_str(&mut body, &op.object);
                put_call(&mut body, &op.call);
                put_result(&mut body, &op.result);
            }
        }
        WalRecord::Marker { gid } => {
            body.push(TAG_MARKER);
            put_u64(&mut body, *gid);
        }
    }
    let mut frame = Vec::with_capacity(body.len() + 12);
    put_u32(&mut frame, body.len() as u32);
    let checksum = fnv1a64(&body);
    frame.extend_from_slice(&body);
    put_u64(&mut frame, checksum);
    frame
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err("body shorter than its encoding".to_owned());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_owned())
    }

    fn value(&mut self) -> Result<Value, String> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.u64()? as i64),
            3 => Value::Str(self.string()?),
            tag => return Err(format!("unknown value tag {tag}")),
        })
    }

    fn call(&mut self) -> Result<OpCall, String> {
        let kind = self.u32()? as usize;
        let n = self.u32()? as usize;
        let mut params = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            params.push(self.value()?);
        }
        Ok(OpCall { kind, params })
    }

    fn result(&mut self) -> Result<OpResult, String> {
        Ok(match self.u8()? {
            0 => OpResult::Ok,
            1 => OpResult::Success,
            2 => OpResult::Failure,
            3 => OpResult::Value(self.value()?),
            4 => OpResult::Null,
            tag => return Err(format!("unknown result tag {tag}")),
        })
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err("trailing bytes after the record body".to_owned())
        }
    }
}

fn decode_body(body: &[u8]) -> Result<SequencedRecord, String> {
    let mut r = Reader::new(body);
    let seq = r.u64()?;
    let record = match r.u8()? {
        TAG_REGISTER => WalRecord::Register {
            name: r.string()?,
            type_name: r.string()?,
        },
        TAG_COMMIT => {
            let multi_gid = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                tag => return Err(format!("unknown multi flag {tag}")),
            };
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                ops.push(LoggedOp {
                    object: r.string()?,
                    call: r.call()?,
                    result: r.result()?,
                });
            }
            WalRecord::Commit { multi_gid, ops }
        }
        TAG_MARKER => WalRecord::Marker { gid: r.u64()? },
        tag => return Err(format!("unknown record tag {tag}")),
    };
    r.finish()?;
    Ok(SequencedRecord { seq, record })
}

/// Parse a whole log file, stopping at the first record that cannot be
/// decoded in full. The stop offset is the valid prefix recovery keeps.
pub fn parse_log(bytes: &[u8]) -> ParsedLog {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let torn = loop {
        if bytes.len() - pos < 4 {
            break if pos == bytes.len() {
                None
            } else {
                Some("dangling length prefix".to_owned())
            };
        }
        let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if body_len > MAX_RECORD_LEN {
            break Some(format!("record length {body_len} exceeds the cap"));
        }
        let frame_len = 4 + body_len + 8;
        if bytes.len() - pos < frame_len {
            break Some("record torn mid-frame".to_owned());
        }
        let body = &bytes[pos + 4..pos + 4 + body_len];
        let stored = u64::from_le_bytes(
            bytes[pos + 4 + body_len..pos + frame_len].try_into().unwrap(),
        );
        if fnv1a64(body) != stored {
            break Some("checksum mismatch".to_owned());
        }
        match decode_body(body) {
            Ok(rec) => records.push(rec),
            Err(e) => break Some(e),
        }
        pos += frame_len;
    };
    ParsedLog {
        records,
        valid_len: pos,
        torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<SequencedRecord> {
        vec![
            SequencedRecord {
                seq: 1,
                record: WalRecord::Register {
                    name: "journal".to_owned(),
                    type_name: "stack".to_owned(),
                },
            },
            SequencedRecord {
                seq: 2,
                record: WalRecord::Commit {
                    multi_gid: None,
                    ops: vec![LoggedOp {
                        object: "journal".to_owned(),
                        call: OpCall {
                            kind: 0,
                            params: vec![
                                Value::Int(-7),
                                Value::Str("x".to_owned()),
                                Value::Bool(true),
                                Value::Null,
                            ],
                        },
                        result: OpResult::Value(Value::Int(3)),
                    }],
                },
            },
            SequencedRecord {
                seq: 3,
                record: WalRecord::Commit {
                    multi_gid: Some(99),
                    ops: vec![
                        LoggedOp {
                            object: "a".to_owned(),
                            call: OpCall { kind: 2, params: vec![] },
                            result: OpResult::Null,
                        },
                        LoggedOp {
                            object: "b".to_owned(),
                            call: OpCall { kind: 1, params: vec![Value::Bool(false)] },
                            result: OpResult::Failure,
                        },
                    ],
                },
            },
            SequencedRecord {
                seq: 4,
                record: WalRecord::Marker { gid: 99 },
            },
        ]
    }

    fn encode_all(records: &[SequencedRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            out.extend_from_slice(&encode_record(r.seq, &r.record));
        }
        out
    }

    #[test]
    fn roundtrip_every_variant() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let parsed = parse_log(&bytes);
        assert_eq!(parsed.records, records);
        assert_eq!(parsed.valid_len, bytes.len());
        assert!(parsed.torn.is_none());
    }

    #[test]
    fn truncation_at_every_offset_yields_a_record_prefix() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // Frame boundaries, for checking valid_len lands on one.
        let mut boundaries = vec![0usize];
        for r in &records {
            let len = encode_record(r.seq, &r.record).len();
            boundaries.push(boundaries.last().unwrap() + len);
        }
        for cut in 0..bytes.len() {
            let parsed = parse_log(&bytes[..cut]);
            // The valid prefix is exactly the whole frames before the cut.
            let whole = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(parsed.records.len(), whole, "cut at {cut}");
            assert_eq!(parsed.records[..], records[..whole], "cut at {cut}");
            assert_eq!(parsed.valid_len, boundaries[whole], "cut at {cut}");
            if cut != boundaries[whole] {
                assert!(parsed.torn.is_some(), "cut at {cut} must report a tear");
            }
        }
    }

    #[test]
    fn footprint_is_sorted_and_deduplicated() {
        let ops: Vec<LoggedOp> = ["b", "a", "b", "c", "a"]
            .iter()
            .map(|name| LoggedOp {
                object: (*name).to_owned(),
                call: OpCall { kind: 0, params: vec![] },
                result: OpResult::Ok,
            })
            .collect();
        assert_eq!(footprint(&ops), vec!["a", "b", "c"]);
        assert!(footprint(&[]).is_empty());
    }

    #[test]
    fn checksum_flip_ends_the_parse() {
        let records = sample_records();
        let mut bytes = encode_all(&records);
        // Flip one byte inside the second record's body.
        let first_len = encode_record(records[0].seq, &records[0].record).len();
        bytes[first_len + 6] ^= 0xff;
        let parsed = parse_log(&bytes);
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.valid_len, first_len);
        assert!(parsed.torn.unwrap().contains("checksum"));
    }

    #[test]
    fn oversized_length_prefix_is_corruption_not_an_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let parsed = parse_log(&bytes);
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.valid_len, 0);
        assert!(parsed.torn.unwrap().contains("cap"));
    }
}
