//! # sbcc-wal — per-shard semantic write-ahead log
//!
//! Durability for the sharded SBCC kernel, built on **semantic logging**:
//! the log records the *operations* of committed transactions (`OpCall` +
//! object name + result), never materialized object state. This is the
//! natural durability story for a semantics-based scheduler — the same
//! insight that lets the kernel admit non-commuting-but-recoverable
//! operation interleavings lets recovery rebuild state by re-running the
//! committed operation sequence through ordinary ADT dispatch.
//!
//! The crate is deliberately **below** `sbcc-core` in the layering: it
//! knows about operations and object names (`sbcc-adt`) but nothing about
//! transactions, shard routing, or the dependency graph. `sbcc-core`
//! decides *what* to log and *when* (only transactions whose dependency
//! union has cleared — a pseudo-committed transaction never reaches the
//! log) and routes the group-commit flush window through its `chaos`
//! virtual-clock seam via the injected [`GroupClock`] closure.
//!
//! Pieces:
//!
//! * [`record`] — the on-disk record codec: length-prefixed, checksummed
//!   frames carrying `Register` / `Commit` / `Marker` records, with
//!   torn-tail detection ([`record::parse_log`]).
//! * [`log`] — the append engine: per-shard files, [`FsyncPolicy`], the
//!   group-commit flusher thread, and [`Wal::open`] recovery (torn-tail
//!   repair, cross-shard marker filtering, merge-by-seq).
//! * [`factory`] — rebuilding empty objects from logged type names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factory;
pub mod log;
pub mod record;

pub use log::{
    marker_path, shard_log_path, FsyncPolicy, GroupClock, Wal, WalConfig, WalError,
};
pub use record::{footprint, LoggedOp, ParsedLog, SequencedRecord, WalRecord};
