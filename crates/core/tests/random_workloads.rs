//! Property-based tests: random interleaved workloads over mixed data types
//! must always produce serializable, cascade-free executions, and both
//! recovery strategies must be observationally equivalent.

use proptest::prelude::*;
use sbcc_adt::{
    AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp, TableObject,
    TableOp, Value,
};
use sbcc_core::{
    verify_commit_order_respects_dependencies, verify_commit_order_serializable, ConflictPolicy,
    KernelEvent, RecoveryStrategy, RequestOutcome, SchedulerConfig, SchedulerKernel, TxnId,
    TxnState,
};
use std::collections::HashMap;

/// The object universe used by the random workloads.
const N_OBJECTS: usize = 5;

fn register_objects(kernel: &mut SchedulerKernel) -> Vec<sbcc_core::ObjectId> {
    vec![
        kernel.register("stack", Stack::new()).unwrap(),
        kernel.register("set", Set::new()).unwrap(),
        kernel.register("counter", Counter::new()).unwrap(),
        kernel.register("table", TableObject::new()).unwrap(),
        kernel.register("page", Page::new()).unwrap(),
    ]
}

/// One scripted operation: which object (by index) and which call.
#[derive(Debug, Clone)]
struct ScriptOp {
    object: usize,
    call: OpCall,
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
            Just(TableOp::Size.to_call()),
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Modify(Value::Int(k), Value::Int(v)).to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..10).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

fn arb_script_op() -> impl Strategy<Value = ScriptOp> {
    (0..N_OBJECTS).prop_flat_map(|object| {
        arb_call_for(object).prop_map(move |call| ScriptOp { object, call })
    })
}

fn arb_scripts() -> impl Strategy<Value = Vec<Vec<ScriptOp>>> {
    proptest::collection::vec(proptest::collection::vec(arb_script_op(), 1..7), 2..6)
}

/// Drive the kernel with the given per-transaction scripts, interleaving
/// round-robin. Returns (per-op results by (txn index, op index), final fate
/// by txn index, kernel).
fn run_scripts(
    scripts: &[Vec<ScriptOp>],
    config: SchedulerConfig,
) -> (
    HashMap<(usize, usize), String>,
    Vec<TxnState>,
    SchedulerKernel,
) {
    let mut kernel = SchedulerKernel::new(config);
    let objects = register_objects(&mut kernel);

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum DriverState {
        Running,
        Waiting, // blocked inside the kernel
        Done,    // committed, pseudo-committed or aborted
    }

    let txns: Vec<TxnId> = scripts.iter().map(|_| kernel.begin()).collect();
    let mut next_op: Vec<usize> = vec![0; scripts.len()];
    let mut state: Vec<DriverState> = vec![DriverState::Running; scripts.len()];
    let mut results: HashMap<(usize, usize), String> = HashMap::new();
    let index_of: HashMap<TxnId, usize> = txns.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    let process_events = |kernel: &mut SchedulerKernel,
                              state: &mut Vec<DriverState>,
                              next_op: &mut Vec<usize>,
                              results: &mut HashMap<(usize, usize), String>| {
        for event in kernel.drain_events() {
            match event {
                KernelEvent::Unblocked { txn, outcome } => {
                    let i = index_of[&txn];
                    match outcome {
                        RequestOutcome::Executed { result, .. } => {
                            results.insert((i, next_op[i]), format!("{result}"));
                            next_op[i] += 1;
                            state[i] = DriverState::Running;
                        }
                        RequestOutcome::Aborted { .. } => {
                            state[i] = DriverState::Done;
                        }
                        RequestOutcome::Blocked { .. } => unreachable!(),
                    }
                }
                KernelEvent::Aborted { txn, .. } => {
                    let i = index_of[&txn];
                    state[i] = DriverState::Done;
                }
                KernelEvent::Committed { .. } => {}
            }
        }
    };

    let mut safety = 0usize;
    loop {
        safety += 1;
        assert!(safety < 100_000, "driver failed to make progress");
        let mut any_running = false;
        for i in 0..scripts.len() {
            if state[i] != DriverState::Running {
                continue;
            }
            any_running = true;
            if next_op[i] >= scripts[i].len() {
                // Script finished: commit (pseudo or full).
                let _ = kernel.commit(txns[i]).unwrap();
                state[i] = DriverState::Done;
                process_events(&mut kernel, &mut state, &mut next_op, &mut results);
                continue;
            }
            let op = &scripts[i][next_op[i]];
            let outcome = kernel
                .request(txns[i], objects[op.object], op.call.clone())
                .unwrap();
            match outcome {
                RequestOutcome::Executed { result, .. } => {
                    results.insert((i, next_op[i]), format!("{result}"));
                    next_op[i] += 1;
                }
                RequestOutcome::Blocked { .. } => {
                    state[i] = DriverState::Waiting;
                }
                RequestOutcome::Aborted { .. } => {
                    state[i] = DriverState::Done;
                }
            }
            process_events(&mut kernel, &mut state, &mut next_op, &mut results);
        }
        if !any_running {
            // Everything is Waiting or Done. Waiting transactions can only be
            // waiting on live transactions; since no transaction is Running,
            // the only live ones are Waiting or PseudoCommitted, and a cycle
            // would have been detected — so no one can be Waiting here.
            break;
        }
    }

    let fates: Vec<TxnState> = txns
        .iter()
        .map(|t| kernel.txn_state(*t).expect("transaction recorded"))
        .collect();
    (results, fates, kernel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random execution is serializable in commit order, respects the
    /// dynamic commit dependencies, leaves the kernel in a consistent state
    /// and never leaves a pseudo-committed transaction behind.
    #[test]
    fn random_workloads_are_serializable(scripts in arb_scripts(), fair in any::<bool>()) {
        let config = SchedulerConfig::default()
            .with_policy(ConflictPolicy::Recoverability)
            .with_fair_scheduling(fair);
        let (_results, fates, mut kernel) = run_scripts(&scripts, config);

        for (i, fate) in fates.iter().enumerate() {
            prop_assert!(
                matches!(fate, TxnState::Committed | TxnState::Aborted),
                "transaction {i} ended in state {fate:?}"
            );
        }
        prop_assert!(kernel.live_transactions().is_empty());
        kernel.check_invariants().map_err(TestCaseError::fail)?;
        verify_commit_order_serializable(&kernel).map_err(TestCaseError::fail)?;
        verify_commit_order_respects_dependencies(&kernel).map_err(TestCaseError::fail)?;
    }

    /// The commutativity-only baseline is also correct (it is the same
    /// machinery with a stricter conflict predicate).
    #[test]
    fn baseline_workloads_are_serializable(scripts in arb_scripts()) {
        let config = SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly);
        let (_results, _fates, mut kernel) = run_scripts(&scripts, config);
        kernel.check_invariants().map_err(TestCaseError::fail)?;
        verify_commit_order_serializable(&kernel).map_err(TestCaseError::fail)?;
    }

    /// Intentions-list and undo/replay recovery produce identical observable
    /// executions for the same (deterministic) schedule.
    #[test]
    fn recovery_strategies_are_equivalent(scripts in arb_scripts()) {
        let run = |strategy: RecoveryStrategy| {
            run_scripts(
                &scripts,
                SchedulerConfig::default().with_recovery(strategy),
            )
        };
        let (ra, fa, ka) = run(RecoveryStrategy::IntentionsList);
        let (rb, fb, kb) = run(RecoveryStrategy::UndoReplay);
        prop_assert_eq!(ra, rb, "per-operation results differ between strategies");
        prop_assert_eq!(fa, fb, "transaction fates differ between strategies");
        for id in ka.object_ids() {
            let sa = ka.object_committed_state(id).unwrap();
            let sb = kb.object_committed_state(id).unwrap();
            prop_assert!(
                sa.state_eq(sb),
                "final committed state of object {} differs: {} vs {}",
                id, sa.debug_state(), sb.debug_state()
            );
        }
    }

    /// The recoverability conflict predicate is strictly weaker than the
    /// commutativity-only one: against the same execution log, every
    /// transaction the recoverability classification reports as a conflict
    /// is also reported as a conflict by the baseline (the converse does not
    /// hold — that is exactly the extra concurrency).
    ///
    /// Note that comparing *global* blocking counts of two complete runs is
    /// not a theorem: once a schedule diverges (a transaction that would
    /// have been blocked proceeds and issues further operations), later
    /// conflicts can differ in either direction. The containment below is
    /// the per-decision property the paper relies on.
    #[test]
    fn recoverability_conflicts_are_a_subset_of_commutativity_conflicts(
        log_ops in proptest::collection::vec(arb_script_op(), 0..10),
        requested in arb_script_op(),
    ) {
        use sbcc_core::{ManagedObject, ObjectId, RecoveryStrategy, TxnId};

        // Build one managed object per data type and install the random log
        // (each logged operation owned by a distinct transaction).
        let mut kernel_objects: Vec<ManagedObject> = vec![
            ManagedObject::new(ObjectId(0), "stack", Box::new(sbcc_adt::AdtObject::new(Stack::new())), RecoveryStrategy::IntentionsList),
            ManagedObject::new(ObjectId(1), "set", Box::new(sbcc_adt::AdtObject::new(Set::new())), RecoveryStrategy::IntentionsList),
            ManagedObject::new(ObjectId(2), "counter", Box::new(sbcc_adt::AdtObject::new(Counter::new())), RecoveryStrategy::IntentionsList),
            ManagedObject::new(ObjectId(3), "table", Box::new(sbcc_adt::AdtObject::new(TableObject::new())), RecoveryStrategy::IntentionsList),
            ManagedObject::new(ObjectId(4), "page", Box::new(sbcc_adt::AdtObject::new(Page::new())), RecoveryStrategy::IntentionsList),
        ];
        for (i, op) in log_ops.iter().enumerate() {
            kernel_objects[op.object].execute(TxnId(i as u64 + 10), i as u64, op.call.clone());
        }
        let requester = TxnId(1);
        let target = &kernel_objects[requested.object];
        let rec = target.classify(ConflictPolicy::Recoverability, requester, &requested.call, &[]);
        let base = target.classify(ConflictPolicy::CommutativityOnly, requester, &requested.call, &[]);
        for holder in &rec.conflicts {
            prop_assert!(
                base.conflicts.contains(holder),
                "recoverability conflicts with {holder} but the baseline does not"
            );
        }
        // And every holder the baseline lets through is also let through by
        // recoverability (either commuting or via a commit dependency).
        for holder in base
            .conflicts
            .iter()
            .chain(base.commit_deps.iter())
        {
            let admitted_by_rec = !rec.conflicts.contains(holder);
            let admitted_by_base = !base.conflicts.contains(holder);
            if admitted_by_base {
                prop_assert!(admitted_by_rec);
            }
        }
    }
}

#[test]
fn pseudo_committed_transactions_always_commit() {
    // Deterministic stress: a chain of transactions each depending on the
    // previous one through recoverable pushes; abort every third dependency
    // target and verify every pseudo-committed transaction still commits.
    let mut kernel = SchedulerKernel::new(SchedulerConfig::default());
    let s = kernel.register("stack", Stack::new()).unwrap();
    let txns: Vec<TxnId> = (0..12).map(|_| kernel.begin()).collect();
    for (i, t) in txns.iter().enumerate() {
        let r = kernel
            .request(*t, s, StackOp::Push(Value::Int(i as i64)).to_call())
            .unwrap();
        assert!(r.is_executed());
    }
    // Commit all but the first in reverse order: all pseudo-commit.
    for t in txns.iter().skip(1).rev() {
        assert!(kernel.commit(*t).unwrap().is_pseudo_commit());
    }
    // Abort the first: the whole chain must cascade to committed.
    kernel.abort(txns[0]).unwrap();
    for t in txns.iter().skip(1) {
        assert_eq!(kernel.txn_state(*t), Some(TxnState::Committed));
    }
    verify_commit_order_serializable(&kernel).unwrap();
    verify_commit_order_respects_dependencies(&kernel).unwrap();
}
