//! Differential tests for the sharded kernel: a [`ShardedKernel`] driven
//! with any shard count must be **behaviourally equivalent** to a single
//! [`SchedulerKernel`] fed the same schedule — same per-operation results,
//! same blocking/abort decisions, same transaction fates, same final
//! committed object states, matching statistics (sharding bookkeeping
//! aside), and serializable executions on every shard.
//!
//! Both systems assign dense transaction ids in `begin` order and dense
//! (global) object ids in registration order, so traces are directly
//! comparable. The driver mirrors `batch_differential.rs`: chunked
//! scripts, round-robin turns, blocked transactions parked until the
//! kernel settles them.
//!
//! The property runs under `VictimPolicy::Requester` (the paper's
//! Figure-2 choice): under `Youngest` the sharded kernel deliberately
//! narrows victim selection (multi-shard transactions are never chosen on
//! another session's behalf), which is a documented divergence, not a bug.

use proptest::prelude::*;
use sbcc_adt::{
    AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp, TableObject,
    TableOp, Value,
};
use sbcc_core::{
    shard_of_name, BatchCall, BatchStop, ConflictPolicy, DatabaseConfig, KernelEvent,
    KernelStats, ObjectId, RequestOutcome, SchedulerConfig, SchedulerKernel, ShardedKernel,
    TxnId, TxnState,
};
use std::collections::{HashMap, VecDeque};

const N_OBJECTS: usize = 5;

/// Either kernel behind one driver interface.
enum Driver {
    Single(SchedulerKernel),
    Sharded(ShardedKernel),
}

impl Driver {
    fn new(config: SchedulerConfig, shards: Option<usize>) -> Self {
        match shards {
            None => Driver::Single(SchedulerKernel::new(config)),
            Some(n) => Driver::Sharded(ShardedKernel::new(DatabaseConfig {
                scheduler: config,
                shards: n.into(),
                wal: None,
            })),
        }
    }

    fn register_objects(&mut self) -> Vec<ObjectId> {
        // Same names, same order => same dense global ids in both systems.
        match self {
            Driver::Single(k) => vec![
                k.register("stack", Stack::new()).unwrap(),
                k.register("set", Set::new()).unwrap(),
                k.register("counter", Counter::new()).unwrap(),
                k.register("table", TableObject::new()).unwrap(),
                k.register("page", Page::new()).unwrap(),
            ],
            Driver::Sharded(k) => vec![
                k.register("stack", Stack::new()).unwrap().0,
                k.register("set", Set::new()).unwrap().0,
                k.register("counter", Counter::new()).unwrap().0,
                k.register("table", TableObject::new()).unwrap().0,
                k.register("page", Page::new()).unwrap().0,
            ],
        }
    }

    fn begin(&mut self) -> TxnId {
        match self {
            Driver::Single(k) => k.begin(),
            Driver::Sharded(k) => k.begin(),
        }
    }

    fn request(&mut self, txn: TxnId, object: ObjectId, call: OpCall) -> RequestOutcome {
        match self {
            Driver::Single(k) => k.request(txn, object, call).unwrap(),
            Driver::Sharded(k) => k.request(txn, object, call).unwrap(),
        }
    }

    fn request_batch(
        &mut self,
        txn: TxnId,
        calls: Vec<BatchCall>,
    ) -> sbcc_core::BatchOutcome {
        match self {
            Driver::Single(k) => k.request_batch(txn, calls).unwrap(),
            Driver::Sharded(k) => k.request_batch(txn, calls).unwrap(),
        }
    }

    fn commit(&mut self, txn: TxnId) -> sbcc_core::CommitOutcome {
        match self {
            Driver::Single(k) => k.commit(txn).unwrap(),
            Driver::Sharded(k) => k.commit(txn).unwrap(),
        }
    }

    fn drain_events(&mut self) -> Vec<KernelEvent> {
        match self {
            Driver::Single(k) => k.drain_events(),
            Driver::Sharded(k) => k.drain_events(),
        }
    }

    fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        match self {
            Driver::Single(k) => k.txn_state(txn),
            Driver::Sharded(k) => k.txn_state(txn),
        }
    }

    fn stats(&self) -> KernelStats {
        match self {
            Driver::Single(k) => k.stats().clone(),
            Driver::Sharded(k) => k.stats(),
        }
    }

    fn committed_state_eq(&self, object: ObjectId, other: &Driver) -> bool {
        let Driver::Single(single) = other else {
            panic!("comparison baseline must be the single kernel");
        };
        let baseline = single
            .object_committed_state(object)
            .expect("object registered");
        match self {
            Driver::Single(k) => k
                .object_committed_state(object)
                .expect("object registered")
                .state_eq(baseline),
            Driver::Sharded(k) => k
                .with_object_committed(object, |state| state.state_eq(baseline))
                .expect("object registered"),
        }
    }

    fn validate(&mut self) -> Result<(), String> {
        match self {
            Driver::Single(k) => {
                k.check_invariants()?;
                sbcc_core::verify_commit_order_serializable(k)?;
                sbcc_core::verify_commit_order_respects_dependencies(k)
            }
            Driver::Sharded(k) => {
                k.check_invariants()?;
                k.verify_serializable()?;
                k.verify_commit_dependencies()
            }
        }
    }
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..10).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

fn arb_chunk() -> impl Strategy<Value = Vec<(usize, OpCall)>> {
    proptest::collection::vec(
        (0..N_OBJECTS).prop_flat_map(|o| arb_call_for(o).prop_map(move |c| (o, c))),
        1..6,
    )
}

fn arb_chunked_scripts() -> impl Strategy<Value = Vec<Vec<Vec<(usize, OpCall)>>>> {
    proptest::collection::vec(proptest::collection::vec(arb_chunk(), 1..4), 2..5)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DriverState {
    Running,
    Waiting,
    Done,
}

/// Drive a kernel with the chunked scripts; `batched` submits each chunk
/// through `request_batch` (exercising the per-shard batch split) instead
/// of call by call.
fn run_chunked(
    scripts: &[Vec<Vec<(usize, OpCall)>>],
    config: SchedulerConfig,
    shards: Option<usize>,
    batched: bool,
) -> (
    HashMap<(usize, usize), String>,
    Vec<String>,
    Vec<TxnState>,
    Driver,
) {
    let mut driver = Driver::new(config, shards);
    let objects = driver.register_objects();

    let txns: Vec<TxnId> = scripts.iter().map(|_| driver.begin()).collect();
    let index_of: HashMap<TxnId, usize> = txns.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    let mut chunks: Vec<VecDeque<Vec<(usize, OpCall)>>> = scripts
        .iter()
        .map(|s| s.iter().cloned().collect())
        .collect();
    let mut current: Vec<Vec<(usize, OpCall)>> = vec![Vec::new(); scripts.len()];
    let mut state = vec![DriverState::Running; scripts.len()];
    let mut next_op = vec![0usize; scripts.len()];
    let mut results: HashMap<(usize, usize), String> = HashMap::new();
    let mut decisions: Vec<String> = Vec::new();

    macro_rules! pump_events {
        () => {
            for event in driver.drain_events() {
                match event {
                    KernelEvent::Unblocked { txn, outcome } => {
                        let i = index_of[&txn];
                        match outcome {
                            RequestOutcome::Executed { result, .. } => {
                                results.insert((i, next_op[i]), format!("{result}"));
                                next_op[i] += 1;
                                state[i] = DriverState::Running;
                                decisions.push(format!("unblocked {i}"));
                            }
                            RequestOutcome::Aborted { reason } => {
                                state[i] = DriverState::Done;
                                decisions.push(format!("retry-aborted {i}: {reason}"));
                            }
                            RequestOutcome::Blocked { .. } => unreachable!(),
                        }
                    }
                    KernelEvent::Aborted { txn, reason } => {
                        let i = index_of[&txn];
                        state[i] = DriverState::Done;
                        decisions.push(format!("victim-aborted {i}: {reason}"));
                    }
                    KernelEvent::Committed { txn } => {
                        decisions.push(format!("cascade-committed {}", index_of[&txn]));
                    }
                }
            }
        };
    }

    let mut safety = 0usize;
    loop {
        safety += 1;
        assert!(safety < 100_000, "driver failed to make progress");
        let mut any_running = false;
        for i in 0..scripts.len() {
            if state[i] != DriverState::Running {
                continue;
            }
            any_running = true;
            if current[i].is_empty() {
                match chunks[i].pop_front() {
                    Some(chunk) => current[i] = chunk,
                    None => {
                        let outcome = driver.commit(txns[i]);
                        decisions.push(format!(
                            "commit {i}: pseudo={}",
                            outcome.is_pseudo_commit()
                        ));
                        state[i] = DriverState::Done;
                        pump_events!();
                        continue;
                    }
                }
            }
            if batched {
                let calls: Vec<BatchCall> = current[i]
                    .drain(..)
                    .map(|(object, call)| BatchCall::new(objects[object], call))
                    .collect();
                let outcome = driver.request_batch(txns[i], calls);
                pump_events!();
                for result in &outcome.executed {
                    results.insert((i, next_op[i]), format!("{result}"));
                    next_op[i] += 1;
                }
                match outcome.stopped {
                    None => {}
                    Some(BatchStop::Blocked {
                        waiting_on, rest, ..
                    }) => {
                        decisions.push(format!("blocked {i} on {waiting_on:?}"));
                        state[i] = DriverState::Waiting;
                        current[i] = rest
                            .into_iter()
                            .map(|bc| {
                                let object = objects
                                    .iter()
                                    .position(|o| *o == bc.object)
                                    .expect("known object");
                                (object, bc.call)
                            })
                            .collect();
                    }
                    Some(BatchStop::Aborted { reason, .. }) => {
                        decisions.push(format!("aborted {i}: {reason}"));
                        state[i] = DriverState::Done;
                    }
                }
            } else {
                while !current[i].is_empty() {
                    let (object, call) = current[i].remove(0);
                    let outcome = driver.request(txns[i], objects[object], call);
                    pump_events!();
                    match outcome {
                        RequestOutcome::Executed { result, .. } => {
                            results.insert((i, next_op[i]), format!("{result}"));
                            next_op[i] += 1;
                        }
                        RequestOutcome::Blocked { waiting_on } => {
                            decisions.push(format!("blocked {i} on {waiting_on:?}"));
                            state[i] = DriverState::Waiting;
                            break;
                        }
                        RequestOutcome::Aborted { reason } => {
                            decisions.push(format!("aborted {i}: {reason}"));
                            state[i] = DriverState::Done;
                            current[i].clear();
                            break;
                        }
                    }
                }
            }
        }
        if !any_running {
            break;
        }
    }

    let fates: Vec<TxnState> = txns
        .iter()
        .map(|t| driver.txn_state(*t).expect("transaction recorded"))
        .collect();
    (results, decisions, fates, driver)
}

/// Strip the counters that legitimately differ between the systems:
/// `batches` (a cross-shard batch counts one kernel pass per touched
/// shard), the edge mirrors (a commit-dep pair deduplicated globally in
/// the single kernel may exist in two shards' graphs), and escalation
/// bookkeeping (zero by construction in the single kernel).
fn comparable(stats: &KernelStats) -> KernelStats {
    KernelStats {
        batches: 0,
        batched_calls: 0,
        graph_edges: 0,
        escalated_edges: 0,
        escalated_checks: 0,
        ..stats.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for every shard count, the sharded kernel
    /// admits, blocks and aborts exactly like the single kernel on the
    /// same schedule, produces the same results and final states, and
    /// every shard's execution is commit-order serializable.
    #[test]
    fn sharded_equals_single_kernel(
        scripts in arb_chunked_scripts(),
        shards in 2usize..5,
        fair in any::<bool>(),
        policy_choice in any::<bool>(),
        batched in any::<bool>(),
    ) {
        let policy = if policy_choice {
            ConflictPolicy::Recoverability
        } else {
            ConflictPolicy::CommutativityOnly
        };
        let config = SchedulerConfig::default()
            .with_policy(policy)
            .with_fair_scheduling(fair);

        let (r_one, d_one, f_one, mut one) =
            run_chunked(&scripts, config.clone(), None, batched);
        let (r_sh, d_sh, f_sh, mut sh) =
            run_chunked(&scripts, config, Some(shards), batched);

        prop_assert_eq!(r_one, r_sh, "per-operation results diverge");
        prop_assert_eq!(d_one, d_sh, "scheduling decisions diverge");
        prop_assert_eq!(f_one, f_sh, "transaction fates diverge");
        prop_assert_eq!(
            comparable(&one.stats()),
            comparable(&sh.stats()),
            "kernel statistics diverge"
        );
        for object in (0..N_OBJECTS as u32).map(ObjectId) {
            prop_assert!(
                sh.committed_state_eq(object, &one),
                "final committed state of {} differs",
                object
            );
        }
        one.validate().map_err(TestCaseError::fail)?;
        sh.validate().map_err(TestCaseError::fail)?;
    }
}

// ---------------------------------------------------------------------
// Cross-shard regression scenarios (deterministic)
// ---------------------------------------------------------------------

/// Two object names guaranteed to land on distinct shards of a
/// `shards`-way kernel.
fn names_on_distinct_shards(shards: usize) -> (String, String) {
    let a = "a0".to_string();
    let sa = shard_of_name(&a, shards);
    let mut i = 1;
    loop {
        let b = format!("a{i}");
        if shard_of_name(&b, shards) != sa {
            return (a, b);
        }
        i += 1;
    }
}

fn sharded(shards: usize) -> ShardedKernel {
    ShardedKernel::new(DatabaseConfig::new(SchedulerConfig::default()).with_shards(shards))
}

/// The escalation regression: a wait-for cycle whose two edges live in
/// two *different* shard graphs — invisible to either local graph alone —
/// must still be refused.
#[test]
fn cross_shard_cycle_is_refused() {
    let kernel = sharded(2);
    let (name_a, name_b) = names_on_distinct_shards(2);
    let (a, loc_a) = kernel.register(&name_a, Stack::new()).unwrap();
    let (b, loc_b) = kernel.register(&name_b, Stack::new()).unwrap();
    assert_ne!(loc_a.shard, loc_b.shard);

    let t1 = kernel.begin();
    let t2 = kernel.begin();
    // T1 holds an uncommitted push on A (shard x); T2 on B (shard y).
    assert!(kernel
        .request(t1, a, StackOp::Push(Value::Int(1)).to_call())
        .unwrap()
        .is_executed());
    assert!(kernel
        .request(t2, b, StackOp::Push(Value::Int(2)).to_call())
        .unwrap()
        .is_executed());
    // T2's pop on A conflicts with T1's push: edge T2 -> T1 in shard x.
    assert!(kernel
        .request(t2, a, StackOp::Pop.to_call())
        .unwrap()
        .is_blocked());
    // T1's pop on B would add T1 -> T2 in shard y. Each local graph holds
    // one edge — no local cycle — but the union cycles; the escalated
    // check must refuse it by aborting the requester.
    let outcome = kernel.request(t1, b, StackOp::Pop.to_call()).unwrap();
    assert!(
        outcome.is_aborted(),
        "cross-shard wait-for cycle must abort the requester, got {outcome:?}"
    );
    let snapshot = kernel.stats_snapshot();
    assert!(
        snapshot.aggregate.escalated_checks >= 1,
        "the refusal must have come from the escalation graph"
    );
    assert!(snapshot.aggregate.escalated_edges >= 1);

    // T1's abort releases T2's blocked pop, which now executes.
    let events = kernel.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        KernelEvent::Unblocked { txn, outcome: RequestOutcome::Executed { .. } } if *txn == t2
    )));
    assert!(kernel.commit(t2).unwrap().is_full_commit());
    kernel.check_invariants().unwrap();
    kernel.verify_serializable().unwrap();
}

/// Cross-shard commit-dependency cycles (the recoverable analogue of the
/// wait-for case) are refused too.
#[test]
fn cross_shard_commit_dependency_cycle_is_refused() {
    let kernel = sharded(2);
    let (name_a, name_b) = names_on_distinct_shards(2);
    let (a, _) = kernel.register(&name_a, Stack::new()).unwrap();
    let (b, _) = kernel.register(&name_b, Stack::new()).unwrap();

    let t1 = kernel.begin();
    let t2 = kernel.begin();
    assert!(kernel
        .request(t1, a, StackOp::Push(Value::Int(1)).to_call())
        .unwrap()
        .is_executed());
    assert!(kernel
        .request(t2, b, StackOp::Push(Value::Int(2)).to_call())
        .unwrap()
        .is_executed());
    // T2's push on A is recoverable after T1's: commit-dep T2 -> T1 in
    // shard x.
    match kernel
        .request(t2, a, StackOp::Push(Value::Int(3)).to_call())
        .unwrap()
    {
        RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, vec![t1]),
        other => panic!("expected recoverable execution, got {other:?}"),
    }
    // T1's push on B would create commit-dep T1 -> T2 in shard y, closing
    // a dependency cycle that only the union sees.
    let outcome = kernel.request(t1, b, StackOp::Push(Value::Int(4)).to_call()).unwrap();
    assert!(
        matches!(
            &outcome,
            RequestOutcome::Aborted {
                reason: sbcc_core::AbortReason::CommitDependencyCycle
            }
        ),
        "expected a commit-dependency-cycle abort, got {outcome:?}"
    );
    assert!(kernel.commit(t2).unwrap().is_full_commit());
    kernel.check_invariants().unwrap();
    kernel.verify_serializable().unwrap();
}

/// The cross-shard commit protocol: a transaction with commit
/// dependencies in two different shards pseudo-commits, and actually
/// commits only once the *union* of its per-shard votes clears — not when
/// the first shard's local dependencies are gone.
#[test]
fn cross_shard_pseudo_commit_waits_for_every_shard() {
    let kernel = sharded(2);
    let (name_a, name_b) = names_on_distinct_shards(2);
    let (a, _) = kernel.register(&name_a, Stack::new()).unwrap();
    let (b, _) = kernel.register(&name_b, Stack::new()).unwrap();

    let h1 = kernel.begin(); // holder in shard x
    let h2 = kernel.begin(); // holder in shard y
    let t = kernel.begin(); // spans both
    assert!(kernel
        .request(h1, a, StackOp::Push(Value::Int(1)).to_call())
        .unwrap()
        .is_executed());
    assert!(kernel
        .request(h2, b, StackOp::Push(Value::Int(2)).to_call())
        .unwrap()
        .is_executed());
    // T pushes behind both holders: recoverable, one commit dep per shard.
    assert!(kernel
        .request(t, a, StackOp::Push(Value::Int(3)).to_call())
        .unwrap()
        .is_executed());
    assert!(kernel
        .request(t, b, StackOp::Push(Value::Int(4)).to_call())
        .unwrap()
        .is_executed());

    match kernel.commit(t).unwrap() {
        sbcc_core::CommitOutcome::PseudoCommitted { waiting_on } => {
            assert_eq!(waiting_on, vec![h1, h2], "the union of per-shard votes");
        }
        other => panic!("expected a pseudo-commit, got {other:?}"),
    }
    assert_eq!(kernel.txn_state(t), Some(TxnState::PseudoCommitted));

    // First holder commits: T's shard-x vote clears, but shard y still
    // holds a dependency — T must stay pseudo-committed.
    assert!(kernel.commit(h1).unwrap().is_full_commit());
    assert_eq!(kernel.txn_state(t), Some(TxnState::PseudoCommitted));

    // Second holder commits: the re-vote is unanimous and T commits.
    assert!(kernel.commit(h2).unwrap().is_full_commit());
    assert_eq!(kernel.txn_state(t), Some(TxnState::Committed));
    let events = kernel.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, KernelEvent::Committed { txn } if *txn == t)));
    kernel.check_invariants().unwrap();
    kernel.verify_serializable().unwrap();
    kernel.verify_commit_dependencies().unwrap();
}

/// An abort of a multi-shard transaction undoes its operations in every
/// shard.
#[test]
fn cross_shard_abort_undoes_everything() {
    let kernel = sharded(3);
    let (name_a, name_b) = names_on_distinct_shards(3);
    let (a, _) = kernel.register(&name_a, Counter::new()).unwrap();
    let (b, _) = kernel.register(&name_b, Counter::new()).unwrap();

    let t = kernel.begin();
    assert!(kernel
        .request(t, a, CounterOp::Increment(5).to_call())
        .unwrap()
        .is_executed());
    assert!(kernel
        .request(t, b, CounterOp::Increment(7).to_call())
        .unwrap()
        .is_executed());
    kernel.abort(t).unwrap();
    assert_eq!(kernel.txn_state(t), Some(TxnState::Aborted));

    let reader = kernel.begin();
    for obj in [a, b] {
        match kernel.request(reader, obj, CounterOp::Read.to_call()).unwrap() {
            RequestOutcome::Executed { result, .. } => {
                assert_eq!(result, sbcc_adt::OpResult::Value(Value::Int(0)));
            }
            other => panic!("read should execute, got {other:?}"),
        }
    }
    assert!(kernel.commit(reader).unwrap().is_full_commit());
    kernel.check_invariants().unwrap();
}
