//! Differential tests for declared access sets and group admission.
//!
//! House-style oracle: **declared ≡ classified**. A batch submitted with
//! its read/write footprint declared up front must be behaviourally
//! identical to the same batch submitted through the per-op classifier —
//! same per-operation results, same transaction fates, same final
//! committed object states, same lifecycle counters (declared
//! bookkeeping aside) — at shard counts 1 and 4, under both
//! [`UndeclaredPolicy`] arms. The scripts deliberately include **wrong
//! declarations** (an accessed object missing from the footprint): under
//! `Escalate` the kernel must detect the lie and fall back to the
//! classifier with no observable difference; under `Abort` the
//! transaction must die with [`AbortReason::UndeclaredAccess`] before
//! any call of the offending batch executes, which the classified
//! reference mirrors with an explicit abort at the same point.

use proptest::prelude::*;
use sbcc_adt::{
    AdtObject, AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp,
    TableObject, TableOp, Value,
};
use sbcc_core::{
    AbortReason, CommitOutcome, CoreError, Database, DatabaseConfig, KernelStats, ObjectHandle,
    SchedulerConfig, ShardCount, UndeclaredPolicy,
};

const N_OBJECTS: usize = 5;

fn config(shards: usize, undeclared: UndeclaredPolicy) -> DatabaseConfig {
    DatabaseConfig {
        scheduler: SchedulerConfig::default().with_undeclared(undeclared),
        shards: ShardCount::Fixed(shards),
        wal: None,
    }
}

fn object_names() -> Vec<String> {
    vec![
        "stack".to_owned(),
        "set".to_owned(),
        "counter".to_owned(),
        "table".to_owned(),
        "page".to_owned(),
    ]
}

fn register_all(db: &Database) -> Vec<ObjectHandle> {
    vec![
        db.register_object("stack", Box::new(AdtObject::new(Stack::new()))).unwrap(),
        db.register_object("set", Box::new(AdtObject::new(Set::new()))).unwrap(),
        db.register_object("counter", Box::new(AdtObject::new(Counter::new()))).unwrap(),
        db.register_object("table", Box::new(AdtObject::new(TableObject::new()))).unwrap(),
        db.register_object("page", Box::new(AdtObject::new(Page::new()))).unwrap(),
    ]
}

/// One committed-state digest per object.
fn digests(db: &Database) -> Vec<Option<String>> {
    object_names()
        .iter()
        .map(|name| {
            db.with_sharded_kernel(|k| {
                k.object_id(name)
                    .and_then(|id| k.with_object_committed(id, |o| o.debug_state()))
            })
        })
        .collect()
}

/// How a batch declares its footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Decl {
    /// Every touched object declared written — always a correct
    /// (over-approximate) declaration.
    WriteAll,
    /// Objects the batch only reads declared read, the rest written. A
    /// mis-predicted read-only flag harmlessly escalates — the
    /// declaration is a promise, never trusted.
    Precise,
    /// One touched object silently dropped from the footprint — a
    /// deliberate lie. Only effective when the batch touches ≥ 2
    /// distinct objects (dropping the sole object would leave no
    /// declaration at all and thus the plain classified path).
    DropOne,
}

/// One generated call: object index, the call, and whether the strategy
/// considers it a write (used to build `Precise` declarations).
type SpecOp = (usize, OpCall, bool);

#[derive(Debug, Clone)]
struct BatchSpec {
    ops: Vec<SpecOp>,
    decl: Decl,
}

impl BatchSpec {
    /// Distinct touched objects, ascending.
    fn footprint(&self) -> Vec<usize> {
        let mut objs: Vec<usize> = self.ops.iter().map(|(o, _, _)| *o).collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Whether this batch's declaration really lies (a `DropOne` with a
    /// droppable object). Shared by both drivers so the classified
    /// reference mirrors the abort at exactly the admissions that lie.
    fn lies(&self) -> bool {
        self.decl == Decl::DropOne && self.footprint().len() >= 2
    }
}

/// The outcome trace of one batch submission, comparable across runs.
fn trace_results(results: Result<Vec<sbcc_adt::OpResult>, String>) -> String {
    match results {
        Ok(rs) => rs.iter().map(|r| format!("{r};")).collect(),
        Err(e) => format!("error:{e}"),
    }
}

/// Run one scripted workload. `declared` picks the submission mode: with
/// declarations (group admission) or the plain classified batch path.
/// The schedule is sequential — one live transaction at a time — so no
/// call can block and both modes are driven identically.
fn run(
    scripts: &[Vec<BatchSpec>],
    shards: usize,
    policy: UndeclaredPolicy,
    declared: bool,
) -> (Vec<String>, Vec<String>, Vec<Option<String>>, KernelStats) {
    let db = Database::with_config(config(shards, policy));
    let handles = register_all(&db);
    let mut traces = Vec::new();
    let mut fates = Vec::new();
    for script in scripts {
        // Option-wrapped: the classified reference's explicit abort
        // consumes the transaction mid-script.
        let mut txn = Some(db.begin());
        let mut dead = false;
        for spec in script {
            if dead {
                traces.push("skipped".to_owned());
                continue;
            }
            if declared {
                let mut batch = txn.as_ref().unwrap().batch();
                let footprint = spec.footprint();
                match spec.decl {
                    Decl::WriteAll => {
                        for o in &footprint {
                            batch.add_declare_write(&handles[*o]);
                        }
                    }
                    Decl::Precise => {
                        for o in &footprint {
                            let all_reads = spec
                                .ops
                                .iter()
                                .filter(|(obj, _, _)| obj == o)
                                .all(|(_, _, is_write)| !is_write);
                            if all_reads {
                                batch.add_declare_read(&handles[*o]);
                            } else {
                                batch.add_declare_write(&handles[*o]);
                            }
                        }
                    }
                    Decl::DropOne => {
                        let keep = if spec.lies() {
                            &footprint[..footprint.len() - 1]
                        } else {
                            &footprint[..]
                        };
                        for o in keep {
                            batch.add_declare_write(&handles[*o]);
                        }
                    }
                }
                for (o, call, _) in &spec.ops {
                    batch.add_call(&handles[*o], call.clone());
                }
                match batch.submit() {
                    Ok(rs) => traces.push(trace_results(Ok(rs))),
                    Err(CoreError::Aborted {
                        reason: AbortReason::UndeclaredAccess,
                        ..
                    }) => {
                        assert_eq!(
                            policy,
                            UndeclaredPolicy::Abort,
                            "escalate policy must never abort on a lie"
                        );
                        assert!(spec.lies(), "only lying declarations may abort");
                        traces.push("aborted".to_owned());
                        dead = true;
                    }
                    Err(other) => panic!("unexpected batch error: {other}"),
                }
            } else if spec.lies() && policy == UndeclaredPolicy::Abort {
                // The classified reference for an aborting lie: the whole
                // batch is refused before any call executes, killing the
                // transaction at the same point.
                txn.take().unwrap().abort().unwrap();
                traces.push("aborted".to_owned());
                dead = true;
            } else {
                let mut batch = txn.as_ref().unwrap().batch();
                for (o, call, _) in &spec.ops {
                    batch.add_call(&handles[*o], call.clone());
                }
                traces.push(trace_results(batch.submit().map_err(|e| e.to_string())));
            }
        }
        if dead {
            fates.push("aborted".to_owned());
            drop(txn);
        } else {
            assert_eq!(
                txn.take().unwrap().commit().unwrap(),
                CommitOutcome::Committed
            );
            fates.push("committed".to_owned());
        }
    }
    db.verify_serializable().unwrap();
    (traces, fates, digests(&db), db.stats())
}

/// Strip the counters the two submission modes may legitimately differ
/// on, keeping the full transaction lifecycle comparable:
///
/// * the declared-admission bookkeeping itself;
/// * the execution-volume counters (`requests`, `batches`,
///   `batched_calls`, `operations_executed`) — a multi-shard batch is
///   admitted shard-run by shard-run, so an aborting lie may execute a
///   rolled-back prefix on the shards before the lying one, which the
///   classified reference (refusing before any call) never runs;
/// * the abort attribution a mirrored refusal splits across kinds
///   (`UndeclaredAccess` on the declared side, explicit on the
///   reference), merged rather than dropped.
fn comparable(stats: &KernelStats) -> KernelStats {
    let mut s = stats.clone();
    s.declared_batches = 0;
    s.declared_admitted = 0;
    s.declared_fallbacks = 0;
    s.declared_escalations = 0;
    s.requests = 0;
    s.batches = 0;
    s.batched_calls = 0;
    s.operations_executed = 0;
    s.aborts_explicit += s.aborts_undeclared;
    s.aborts_undeclared = 0;
    s
}

fn arb_spec_op(object: usize) -> BoxedStrategy<SpecOp> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| (0, StackOp::Push(Value::Int(v)).to_call(), true)),
            Just((0, StackOp::Pop.to_call(), true)),
            Just((0, StackOp::Top.to_call(), false)),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| (1, SetOp::Insert(Value::Int(v)).to_call(), true)),
            (0i64..4).prop_map(|v| (1, SetOp::Delete(Value::Int(v)).to_call(), true)),
            (0i64..4).prop_map(|v| (1, SetOp::Member(Value::Int(v)).to_call(), false)),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| (2, CounterOp::Increment(v).to_call(), true)),
            (1i64..5).prop_map(|v| (2, CounterOp::Decrement(v).to_call(), true)),
            Just((2, CounterOp::Read.to_call(), false)),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| (3, TableOp::Insert(Value::Int(k), Value::Int(v)).to_call(), true)),
            (0i64..4).prop_map(|k| (3, TableOp::Delete(Value::Int(k)).to_call(), true)),
            (0i64..4).prop_map(|k| (3, TableOp::Lookup(Value::Int(k)).to_call(), false)),
        ]
        .boxed(),
        _ => prop_oneof![
            Just((4, PageOp::Read.to_call(), false)),
            (0i64..10).prop_map(|v| (4, PageOp::Write(Value::Int(v)).to_call(), true)),
        ]
        .boxed(),
    }
}

fn arb_batch() -> impl Strategy<Value = BatchSpec> {
    let ops = proptest::collection::vec(
        (0..N_OBJECTS).prop_flat_map(arb_spec_op),
        1..6,
    );
    let decl = prop_oneof![
        Just(Decl::WriteAll),
        Just(Decl::Precise),
        Just(Decl::DropOne),
    ];
    (ops, decl).prop_map(|(ops, decl)| BatchSpec { ops, decl })
}

fn arb_scripts() -> impl Strategy<Value = Vec<Vec<BatchSpec>>> {
    proptest::collection::vec(proptest::collection::vec(arb_batch(), 1..4), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property, at 1 **and** 4 shards, under both
    /// undeclared-access policies: declared submission produces exactly
    /// the classified path's results, fates, final committed states and
    /// lifecycle counters.
    #[test]
    fn declared_equals_classified(scripts in arb_scripts()) {
        for shards in [1usize, 4] {
            for policy in [UndeclaredPolicy::Escalate, UndeclaredPolicy::Abort] {
                let (tr_d, f_d, dg_d, st_d) = run(&scripts, shards, policy, true);
                let (tr_c, f_c, dg_c, st_c) = run(&scripts, shards, policy, false);
                prop_assert_eq!(
                    &tr_d, &tr_c,
                    "per-batch results diverge at {} shard(s) under {}", shards, policy
                );
                prop_assert_eq!(
                    &f_d, &f_c,
                    "transaction fates diverge at {} shard(s) under {}", shards, policy
                );
                prop_assert_eq!(
                    &dg_d, &dg_c,
                    "final committed states diverge at {} shard(s) under {}", shards, policy
                );
                prop_assert_eq!(
                    comparable(&st_d), comparable(&st_c),
                    "lifecycle counters diverge at {} shard(s) under {}", shards, policy
                );
                // Bookkeeping sanity on the declared side: every batch
                // with a declaration was counted, and each one either
                // group-admitted, fell back, or escalated.
                prop_assert_eq!(
                    st_d.declared_batches,
                    st_d.declared_admitted + st_d.declared_fallbacks
                        + st_d.declared_escalations + st_d.aborts_undeclared,
                    "declared batches must partition across the outcomes"
                );
                // Under SBCC_DECLARED=1 the reference run derives all-write
                // declarations for its undeclared batches (that is the
                // knob's whole point), so only assert the undeclared
                // reference when the env leaves batches alone.
                if std::env::var("SBCC_DECLARED").is_err() {
                    prop_assert_eq!(st_c.declared_batches, 0, "reference run declares nothing");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pinned scenarios (deterministic)
// ---------------------------------------------------------------------

/// A quiescent, correctly declared batch takes the zero-classification
/// fast path: the whole group admits in one footprint scan.
#[test]
fn quiescent_declared_batch_group_admits() {
    let db = Database::with_config(config(1, UndeclaredPolicy::Escalate));
    let handles = register_all(&db);

    let txn = db.begin();
    let results = txn
        .batch()
        .declare_write(&handles[0])
        .declare_write(&handles[2])
        .call(&handles[0], StackOp::Push(Value::Int(7)).to_call())
        .call(&handles[2], CounterOp::Increment(3).to_call())
        .call(&handles[2], CounterOp::Read.to_call())
        .submit()
        .unwrap();
    assert_eq!(
        results,
        vec![
            sbcc_adt::OpResult::Ok,
            sbcc_adt::OpResult::Ok,
            sbcc_adt::OpResult::Value(Value::Int(3)),
        ]
    );
    assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);

    let stats = db.stats();
    assert_eq!(stats.declared_batches, 1);
    assert_eq!(stats.declared_admitted, 1);
    assert_eq!(stats.declared_fallbacks, 0);
    assert_eq!(stats.declared_escalations, 0);
    db.verify_serializable().unwrap();
}

/// A read-only declaration is honoured for read-only calls and the
/// group still admits without classification.
#[test]
fn read_declarations_cover_readonly_calls() {
    let db = Database::with_config(config(1, UndeclaredPolicy::Escalate));
    let handles = register_all(&db);

    let w = db.begin();
    w.exec_call(&handles[2], CounterOp::Increment(9).to_call()).unwrap();
    w.commit().unwrap();

    let txn = db.begin();
    let results = txn
        .batch()
        .declare_read(&handles[2])
        .declare_write(&handles[4])
        .call(&handles[2], CounterOp::Read.to_call())
        .call(&handles[4], PageOp::Write(Value::Int(1)).to_call())
        .submit()
        .unwrap();
    assert_eq!(results[0], sbcc_adt::OpResult::Value(Value::Int(9)));
    txn.commit().unwrap();
    assert_eq!(db.stats().declared_admitted, 1);
}

/// A mutating call on a read-declared object is outside the declaration:
/// the batch escalates to the classifier (same results) instead of
/// trusting the lie.
#[test]
fn write_through_read_declaration_escalates() {
    let db = Database::with_config(config(1, UndeclaredPolicy::Escalate));
    let handles = register_all(&db);

    let txn = db.begin();
    let results = txn
        .batch()
        .declare_read(&handles[2])
        .call(&handles[2], CounterOp::Increment(5).to_call())
        .call(&handles[2], CounterOp::Read.to_call())
        .submit()
        .unwrap();
    assert_eq!(results[1], sbcc_adt::OpResult::Value(Value::Int(5)));
    txn.commit().unwrap();

    let stats = db.stats();
    assert_eq!(stats.declared_batches, 1);
    assert_eq!(stats.declared_admitted, 0);
    assert_eq!(stats.declared_escalations, 1);
    db.verify_serializable().unwrap();
}

/// Under [`UndeclaredPolicy::Abort`], the same lie kills the transaction
/// with a retryable [`AbortReason::UndeclaredAccess`] before any call of
/// the batch executes.
#[test]
fn undeclared_access_aborts_under_abort_policy() {
    let db = Database::with_config(config(1, UndeclaredPolicy::Abort));
    let handles = register_all(&db);

    let txn = db.begin();
    let err = txn
        .batch()
        .declare_write(&handles[0])
        .call(&handles[0], StackOp::Push(Value::Int(1)).to_call())
        .call(&handles[2], CounterOp::Increment(5).to_call())
        .submit()
        .expect_err("undeclared counter access must abort");
    match err {
        CoreError::Aborted { reason, .. } => {
            assert_eq!(reason, AbortReason::UndeclaredAccess);
            assert!(
                reason.is_scheduler_initiated(),
                "undeclared-access aborts must be retryable"
            );
        }
        other => panic!("expected abort, got {other}"),
    }

    // Nothing executed — not even the correctly declared prefix — so the
    // committed state is untouched.
    let probe = db.begin();
    assert_eq!(
        probe.exec_call(&handles[0], StackOp::Top.to_call()).unwrap(),
        sbcc_adt::OpResult::Null,
        "aborted batch must not have pushed"
    );
    assert_eq!(
        probe.exec_call(&handles[2], CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(0))
    );
    probe.commit().unwrap();

    let stats = db.stats();
    assert_eq!(stats.aborts_undeclared, 1);
    assert_eq!(stats.declared_admitted, 0);
    db.verify_serializable().unwrap();
}

/// A *busy* declared footprint (another live transaction holds log
/// entries on a declared object) falls back to the classifier — the
/// declaration is only a fast path, never an exclusivity claim. The
/// overlap uses commuting counter increments so the sequential driver
/// cannot block.
#[test]
fn busy_footprint_falls_back_to_classifier() {
    let db = Database::with_config(config(1, UndeclaredPolicy::Escalate));
    let handles = register_all(&db);

    let pinner = db.begin();
    pinner.exec_call(&handles[2], CounterOp::Increment(1).to_call()).unwrap();

    // Declares the busy counter (and the idle page): the footprint scan
    // sees the pinner's uncommitted log entry and hands the whole batch
    // to the classifier, where the increment commutes and executes.
    let txn = db.begin();
    let results = txn
        .batch()
        .declare_write(&handles[2])
        .declare_write(&handles[4])
        .call(&handles[2], CounterOp::Increment(2).to_call())
        .call(&handles[4], PageOp::Write(Value::Int(9)).to_call())
        .submit()
        .unwrap();
    assert_eq!(results, vec![sbcc_adt::OpResult::Ok, sbcc_adt::OpResult::Ok]);

    assert_eq!(pinner.commit().unwrap(), CommitOutcome::Committed);
    txn.commit().unwrap();

    let stats = db.stats();
    assert_eq!(stats.declared_batches, 1);
    assert_eq!(stats.declared_fallbacks, 1);
    assert_eq!(stats.declared_admitted, 0);

    let final_read = db.begin();
    assert_eq!(
        final_read.exec_call(&handles[2], CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(3)),
        "both increments must survive the fallback"
    );
    final_read.commit().unwrap();
    db.verify_serializable().unwrap();
}
