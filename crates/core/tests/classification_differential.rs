//! Differential tests for the two hot-path optimisations:
//!
//! * the **indexed** `classify` must return identical [`Classification`]s
//!   (conflicts, commit dependencies) to the retained naive reference
//!   implementation (`classify_naive`) on randomized logs over every data
//!   type; and
//! * a kernel running the **incremental** cycle detector must produce
//!   executions identical to one running the from-scratch **SCC oracle**
//!   detector on randomized workloads — same per-request outcomes, same
//!   fates, same counters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sbcc_adt::{
    AbstractObject, AdtObject, AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack,
    StackOp, TableObject, TableOp, Value,
};
use sbcc_core::{
    Classification, ConflictPolicy, CycleDetector, ManagedObject, ObjectId, RecoveryStrategy,
    RequestOutcome, SchedulerConfig, SchedulerKernel, TxnId,
};

/// Number of object archetypes in the universe (five typed ADTs plus one
/// table-driven abstract object).
const N_OBJECTS: usize = 6;

fn make_object(archetype: usize) -> ManagedObject {
    let boxed: Box<dyn sbcc_adt::SemanticObject> = match archetype {
        0 => Box::new(AdtObject::new(Stack::new())),
        1 => Box::new(AdtObject::new(Set::new())),
        2 => Box::new(AdtObject::new(Counter::new())),
        3 => Box::new(AdtObject::new(TableObject::new())),
        4 => Box::new(AdtObject::new(Page::new())),
        _ => {
            // Deterministic random conflict table: 4 ops, Pc=4, Pr=4.
            let mut rng = StdRng::seed_from_u64(2024);
            Box::new(AbstractObject::random(4, 4, 4, &mut rng))
        }
    };
    ManagedObject::new(
        ObjectId(archetype as u32),
        format!("obj{archetype}"),
        boxed,
        RecoveryStrategy::IntentionsList,
    )
}

fn arb_call_for(archetype: usize) -> BoxedStrategy<OpCall> {
    match archetype {
        0 => prop_oneof![
            (0i64..4).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..4).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..4).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..9)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
            Just(TableOp::Size.to_call()),
            (0i64..4, 0i64..9)
                .prop_map(|(k, v)| TableOp::Modify(Value::Int(k), Value::Int(v)).to_call()),
        ]
        .boxed(),
        4 => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..4).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
        _ => (0usize..4).prop_map(OpCall::nullary).boxed(),
    }
}

/// A random log: `(transaction index, call)` pairs, installed in order.
fn arb_log(archetype: usize) -> impl Strategy<Value = Vec<(u64, OpCall)>> {
    proptest::collection::vec((1u64..6, arb_call_for(archetype)), 0..24)
}

fn arb_fairness(archetype: usize) -> impl Strategy<Value = Vec<(u64, OpCall)>> {
    proptest::collection::vec((1u64..8, arb_call_for(archetype)), 0..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The indexed classify and the naive reference agree exactly —
    /// conflicts, commit dependencies, ordering — for random logs, random
    /// fairness sets, both policies and every object archetype.
    #[test]
    fn indexed_classify_matches_naive_reference(
        // Draw the archetype first so the log, fairness set and request are
        // all generated from that archetype's operation space.
        (archetype, log, fairness, request, requester) in (0usize..N_OBJECTS).prop_flat_map(|a| (
            Just(a),
            arb_log(a),
            arb_fairness(a),
            arb_call_for(a),
            1u64..8,
        )),
    ) {
        let mut obj = make_object(archetype);
        let mut seq = 0u64;
        for (txn, call) in &log {
            seq += 1;
            obj.execute(TxnId(*txn), seq, call.clone());
        }
        let fairness: Vec<(TxnId, OpCall)> = fairness
            .iter()
            .map(|(t, c)| (TxnId(*t), c.clone()))
            .collect();
        for policy in [ConflictPolicy::Recoverability, ConflictPolicy::CommutativityOnly] {
            let fast = obj.classify(policy, TxnId(requester), &request, &fairness);
            let slow = obj.classify_naive(policy, TxnId(requester), &request, &fairness);
            prop_assert_eq!(
                &fast, &slow,
                "archetype {} policy {:?} request {} by T{}",
                archetype, policy, &request, requester
            );
            assert_classification_sorted(&fast);
        }
    }

    /// Kernels running the incremental detector and the SCC oracle produce
    /// identical executions: outcome-for-outcome, fate-for-fate, and the
    /// same statistics (including the cycle-check count).
    #[test]
    fn cycle_detectors_are_behaviourally_identical(
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..N_OBJECTS).prop_flat_map(|o| arb_call_for(o).prop_map(move |c| (o, c))),
                1..6,
            ),
            2..6,
        ),
        fair in any::<bool>(),
        policy_choice in any::<bool>(),
    ) {
        let policy = if policy_choice {
            ConflictPolicy::Recoverability
        } else {
            ConflictPolicy::CommutativityOnly
        };
        let run = |detector: CycleDetector| {
            let mut kernel = SchedulerKernel::new(
                SchedulerConfig::default()
                    .with_policy(policy)
                    .with_fair_scheduling(fair)
                    .with_cycle_detector(detector),
            );
            let objects: Vec<ObjectId> = vec![
                kernel.register("stack", Stack::new()).unwrap(),
                kernel.register("set", Set::new()).unwrap(),
                kernel.register("counter", Counter::new()).unwrap(),
                kernel.register("table", TableObject::new()).unwrap(),
                kernel.register("page", Page::new()).unwrap(),
                kernel
                    .register_object("abstract", {
                        let mut rng = StdRng::seed_from_u64(2024);
                        Box::new(AbstractObject::random(4, 4, 4, &mut rng))
                    })
                    .unwrap(),
            ];
            let txns: Vec<TxnId> = scripts.iter().map(|_| kernel.begin()).collect();
            let mut trace: Vec<String> = Vec::new();
            // Issue operations round-robin; a blocked or aborted transaction
            // simply stops issuing (termination settles the rest).
            let mut done = vec![false; scripts.len()];
            let mut position = vec![0usize; scripts.len()];
            loop {
                let mut progressed = false;
                for (i, script) in scripts.iter().enumerate() {
                    if done[i] {
                        continue;
                    }
                    if position[i] >= script.len() {
                        let outcome = kernel.commit(txns[i]);
                        trace.push(format!("commit {i}: {outcome:?}"));
                        done[i] = true;
                        trace.push(format!("events: {:?}", kernel.drain_events()));
                        progressed = true;
                        continue;
                    }
                    let (object, call) = &script[position[i]];
                    position[i] += 1;
                    match kernel.request(txns[i], objects[*object], call.clone()) {
                        Ok(outcome) => {
                            trace.push(format!("req {i}: {outcome:?}"));
                            if !outcome.is_executed() {
                                done[i] = true;
                            }
                        }
                        Err(e) => {
                            trace.push(format!("req {i}: err {e}"));
                            done[i] = true;
                        }
                    }
                    trace.push(format!("events: {:?}", kernel.drain_events()));
                    progressed = true;
                }
                if !progressed {
                    break;
                }
            }
            // Abort whatever is still live (blocked transactions).
            for (i, txn) in txns.iter().enumerate() {
                if kernel.txn_state(*txn).map(|s| s.is_live()).unwrap_or(false) {
                    let _ = kernel.abort(*txn);
                    trace.push(format!("cleanup abort {i}"));
                    trace.push(format!("events: {:?}", kernel.drain_events()));
                }
            }
            let fates: Vec<_> = txns.iter().map(|t| kernel.txn_state(*t)).collect();
            let stats = kernel.stats().clone();
            let checks = kernel.cycle_checks();
            kernel.check_invariants().expect("kernel invariants");
            (trace, fates, stats, checks)
        };

        let (trace_inc, fates_inc, stats_inc, checks_inc) = run(CycleDetector::Incremental);
        let (trace_scc, fates_scc, stats_scc, checks_scc) = run(CycleDetector::SccOracle);
        prop_assert_eq!(trace_inc, trace_scc, "execution traces diverge");
        prop_assert_eq!(fates_inc, fates_scc, "transaction fates diverge");
        prop_assert_eq!(stats_inc, stats_scc, "kernel statistics diverge");
        prop_assert_eq!(checks_inc, checks_scc, "cycle-check counts diverge");
    }
}

fn assert_classification_sorted(c: &Classification) {
    assert!(c.conflicts.windows(2).all(|w| w[0] < w[1]));
    assert!(c.commit_deps.windows(2).all(|w| w[0] < w[1]));
    assert!(c.commit_deps.iter().all(|t| !c.conflicts.contains(t)));
}

/// A focused regression: repeated recoverable operations against the same
/// holder must not pile up commit-dependency edge multiplicity (the kernel
/// deduplicates them before they reach the graph), while the statistics
/// keep counting one dependency per admitted recoverable request.
#[test]
fn commit_dependency_edges_are_deduplicated() {
    let mut kernel = SchedulerKernel::new(SchedulerConfig::default());
    let s = kernel.register("stack", Stack::new()).unwrap();
    let t1 = kernel.begin();
    let t2 = kernel.begin();
    assert!(kernel
        .request(t1, s, StackOp::Push(Value::Int(99)).to_call())
        .unwrap()
        .is_executed());
    for i in 0..5 {
        // Distinct values: pushes of the *same* value are Yes-SP
        // commutative and would not create a dependency at all.
        let outcome = kernel
            .request(t2, s, StackOp::Push(Value::Int(i)).to_call())
            .unwrap();
        match outcome {
            RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, vec![t1]),
            other => panic!("push should be recoverable, got {other:?}"),
        }
    }
    // Five recoverable requests, one graph edge.
    assert_eq!(kernel.stats().commit_dependencies, 5);
    assert_eq!(kernel.commit_dependencies_of(t2), vec![t1]);
    assert!(kernel.commit(t2).unwrap().is_pseudo_commit());
    assert!(kernel.commit(t1).unwrap().is_full_commit());
    let _ = kernel.drain_events();
    assert_eq!(
        kernel.txn_state(t2),
        Some(sbcc_core::TxnState::Committed),
        "dedup must not break the cascade"
    );
}
