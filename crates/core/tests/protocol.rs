//! Scenario tests for the concurrency-control and commit protocol,
//! mirroring the examples and claims of the paper section by section.

use sbcc_adt::{
    AdtOp, Counter, CounterOp, Page, PageOp, Set, SetOp, Stack, StackOp, TableObject, TableOp,
    Value,
};
use sbcc_core::{
    verify_commit_order_respects_dependencies, verify_commit_order_serializable, AbortReason,
    CommitOutcome, ConflictPolicy, CoreError, KernelEvent, RecoveryStrategy, RequestOutcome,
    SchedulerConfig, SchedulerKernel, TxnState, VictimPolicy,
};

fn kernel(policy: ConflictPolicy) -> SchedulerKernel {
    SchedulerKernel::new(SchedulerConfig::default().with_policy(policy))
}

fn executed(outcome: &RequestOutcome) -> bool {
    outcome.is_executed()
}

#[test]
fn paper_example_two_pushes_run_in_parallel_with_commit_dependency() {
    // Section 1: "two push operations are recoverable and hence can be
    // executed in parallel", with the commit order fixed to invocation order.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("stack", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    let r1 = k
        .request_op(t1, s, &StackOp::Push(Value::Int(4)))
        .unwrap();
    assert!(executed(&r1));
    let r2 = k
        .request_op(t2, s, &StackOp::Push(Value::Int(2)))
        .unwrap();
    match &r2 {
        RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, &vec![t1]),
        other => panic!("expected execution with a commit dependency, got {other:?}"),
    }

    // T2 commits first from the user's perspective (pseudo-commit) ...
    assert!(k.commit(t2).unwrap().is_pseudo_commit());
    assert_eq!(k.txn_state(t2), Some(TxnState::PseudoCommitted));
    // ... and actually commits only after T1 terminates.
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    let events = k.drain_events();
    assert!(events
        .iter()
        .any(|e| matches!(e, KernelEvent::Committed { txn } if *txn == t2)));
    assert_eq!(k.txn_state(t2), Some(TxnState::Committed));

    verify_commit_order_serializable(&k).unwrap();
    verify_commit_order_respects_dependencies(&k).unwrap();
    k.check_invariants().unwrap();
}

#[test]
fn under_commutativity_only_the_second_push_waits() {
    let mut k = kernel(ConflictPolicy::CommutativityOnly);
    let s = k.register("stack", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, s, &StackOp::Push(Value::Int(4))).unwrap()
    ));
    let r2 = k
        .request_op(t2, s, &StackOp::Push(Value::Int(2)))
        .unwrap();
    match &r2 {
        RequestOutcome::Blocked { waiting_on } => assert_eq!(waiting_on, &vec![t1]),
        other => panic!("expected blocking under the baseline, got {other:?}"),
    }
    assert_eq!(k.txn_state(t2), Some(TxnState::Blocked));

    // When T1 commits, T2's push is retried and executes.
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    let events = k.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        KernelEvent::Unblocked { txn, outcome } if *txn == t2 && outcome.is_executed()
    )));
    assert_eq!(k.txn_state(t2), Some(TxnState::Active));
    assert_eq!(k.commit(t2).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn paper_sequence_1_member_after_insert_must_wait() {
    // Sequence (1) of Section 3.2: T2's member(3) observes T1's uncommitted
    // insert(3); allowing it would expose T2 to a cascading abort, so the
    // protocol blocks it.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let x = k.register("X", Set::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, x, &SetOp::Insert(Value::Int(3))).unwrap()
    ));
    let r = k
        .request_op(t2, x, &SetOp::Member(Value::Int(3)))
        .unwrap();
    assert!(r.is_blocked(), "member(3) must wait for the insert(3)");

    // Once T1 aborts, the member executes and does NOT see the insert.
    k.abort(t1).unwrap();
    let events = k.drain_events();
    let unblocked = events
        .iter()
        .find_map(|e| match e {
            KernelEvent::Unblocked { txn, outcome } if *txn == t2 => Some(outcome.clone()),
            _ => None,
        })
        .expect("member must be retried after the abort");
    assert_eq!(
        unblocked.result(),
        Some(&sbcc_adt::OpResult::Value(Value::Bool(false)))
    );
    k.commit(t2).unwrap();
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn paper_sequence_3_recoverable_operations_do_not_wait() {
    // Sequence (3): T1 pushes on stack S and checks membership on set X;
    // T2 pushes on S and inserts into X. T2's operations are recoverable,
    // so they execute without waiting; the commit order is fixed.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    let x = k.register("X", Set::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, s, &StackOp::Push(Value::Int(4))).unwrap()
    ));
    let member = k
        .request_op(t1, x, &SetOp::Member(Value::Int(3)))
        .unwrap();
    assert_eq!(
        member.result(),
        Some(&sbcc_adt::OpResult::Value(Value::Bool(false)))
    );
    assert!(executed(
        &k.request_op(t2, s, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, x, &SetOp::Insert(Value::Int(3))).unwrap()
    ));

    // T2 can only pseudo-commit while T1 is live.
    assert!(k.commit(t2).unwrap().is_pseudo_commit());
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    assert_eq!(k.txn_state(t2), Some(TxnState::Committed));
    verify_commit_order_serializable(&k).unwrap();
    verify_commit_order_respects_dependencies(&k).unwrap();
}

#[test]
fn read_write_model_only_read_after_write_conflicts() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let p = k.register("page", Page::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();
    let t3 = k.begin();

    assert!(executed(&k.request_op(t1, p, &PageOp::Read).unwrap()));
    // write after read: recoverable
    let w = k
        .request_op(t2, p, &PageOp::Write(Value::Int(5)))
        .unwrap();
    match &w {
        RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, &vec![t1]),
        other => panic!("write after read should be recoverable, got {other:?}"),
    }
    // read after (uncommitted) write: blocked
    let r = k.request_op(t3, p, &PageOp::Read).unwrap();
    assert!(r.is_blocked());

    assert!(k.commit(t2).unwrap().is_pseudo_commit());
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    // T2's cascade commit also releases T3's read, which must now see 5.
    let events = k.drain_events();
    let unblocked = events
        .iter()
        .find_map(|e| match e {
            KernelEvent::Unblocked { txn, outcome } if *txn == t3 => Some(outcome.clone()),
            _ => None,
        })
        .expect("read retried after writers terminate");
    assert_eq!(
        unblocked.result(),
        Some(&sbcc_adt::OpResult::Value(Value::Int(5)))
    );
    k.commit(t3).unwrap();
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn commit_dependency_cycle_aborts_the_requester() {
    // T1 and T2 push on two stacks in opposite orders: the second push of T2
    // would create commit dependencies T1 -> T2 and T2 -> T1, so the
    // requester is aborted to preserve serializability.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let a = k.register("A", Stack::new()).unwrap();
    let b = k.register("B", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, a, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, b, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t1, b, &StackOp::Push(Value::Int(3))).unwrap()
    ));
    let r = k
        .request_op(t2, a, &StackOp::Push(Value::Int(4)))
        .unwrap();
    assert_eq!(
        r,
        RequestOutcome::Aborted {
            reason: AbortReason::CommitDependencyCycle
        }
    );
    assert_eq!(k.txn_state(t2), Some(TxnState::Aborted));
    assert_eq!(k.stats().aborts_commit_cycle, 1);

    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
    k.check_invariants().unwrap();
}

#[test]
fn wait_for_deadlock_aborts_the_requester() {
    // Classic two-object deadlock under the commutativity-only baseline.
    let mut k = kernel(ConflictPolicy::CommutativityOnly);
    let a = k.register("A", Stack::new()).unwrap();
    let b = k.register("B", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, a, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, b, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    assert!(k
        .request_op(t1, b, &StackOp::Push(Value::Int(3)))
        .unwrap()
        .is_blocked());
    let r = k
        .request_op(t2, a, &StackOp::Push(Value::Int(4)))
        .unwrap();
    assert_eq!(
        r,
        RequestOutcome::Aborted {
            reason: AbortReason::DeadlockCycle
        }
    );
    assert_eq!(k.stats().aborts_deadlock, 1);

    // T2's abort releases T1's blocked push.
    let events = k.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        KernelEvent::Unblocked { txn, outcome } if *txn == t1 && outcome.is_executed()
    )));
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn mixed_wait_for_and_commit_dependency_cycles_are_detected() {
    // T1 pushes on A (T2 will depend on it), T2 pushes on A (commit-dep
    // T2 -> T1), then T1 issues a pop on A which must wait for T2 ... the
    // wait-for edge T1 -> T2 plus the commit-dep edge T2 -> T1 closes a
    // mixed cycle, so T1 is aborted.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let a = k.register("A", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, a, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, a, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    let r = k.request_op(t1, a, &StackOp::Pop).unwrap();
    assert_eq!(
        r,
        RequestOutcome::Aborted {
            reason: AbortReason::DeadlockCycle
        }
    );
    // T2 survives and can commit (no cascading abort).
    let events = k.drain_events();
    assert!(events
        .iter()
        .all(|e| !matches!(e, KernelEvent::Aborted { txn, .. } if *txn == t2)));
    assert_eq!(k.commit(t2).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn pseudo_commit_chain_cascades_in_dependency_order() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();
    let t3 = k.begin();

    for (t, v) in [(t1, 1), (t2, 2), (t3, 3)] {
        assert!(executed(
            &k.request_op(t, s, &StackOp::Push(Value::Int(v))).unwrap()
        ));
    }
    // Commit in reverse order: T3 and T2 pseudo-commit, T1 commits and the
    // whole chain cascades.
    assert!(k.commit(t3).unwrap().is_pseudo_commit());
    assert!(k.commit(t2).unwrap().is_pseudo_commit());
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    assert_eq!(k.txn_state(t2), Some(TxnState::Committed));
    assert_eq!(k.txn_state(t3), Some(TxnState::Committed));

    // The committed stack must reflect invocation order 1, 2, 3.
    let state = k.object_committed_state(s).unwrap();
    let stack = state
        .as_any()
        .downcast_ref::<sbcc_adt::AdtObject<Stack>>()
        .unwrap();
    assert_eq!(
        stack.inner().items(),
        &[Value::Int(1), Value::Int(2), Value::Int(3)]
    );
    verify_commit_order_respects_dependencies(&k).unwrap();
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn abort_of_dependency_target_does_not_cascade() {
    // The headline property: even if the transaction a pseudo-committed
    // transaction depends on aborts, the pseudo-committed one still commits.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, s, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, s, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    assert!(k.commit(t2).unwrap().is_pseudo_commit());

    k.abort(t1).unwrap();
    assert_eq!(k.txn_state(t1), Some(TxnState::Aborted));
    assert_eq!(
        k.txn_state(t2),
        Some(TxnState::Committed),
        "no cascading abort: T2 commits despite T1 aborting"
    );

    let state = k.object_committed_state(s).unwrap();
    let stack = state
        .as_any()
        .downcast_ref::<sbcc_adt::AdtObject<Stack>>()
        .unwrap();
    assert_eq!(stack.inner().items(), &[Value::Int(2)]);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn fair_scheduling_blocks_behind_blocked_requests() {
    // Recoverability policy: T1 modify(1) active, T2 lookup(1) blocked
    // (lookup cannot observe the uncommitted modify), T3 modify(1) is
    // recoverable relative to the active modify but conflicts with the
    // blocked lookup -> blocked under fair scheduling, executed (with a
    // commit dependency) without it.
    for fair in [true, false] {
        let mut k = SchedulerKernel::new(
            SchedulerConfig::default()
                .with_policy(ConflictPolicy::Recoverability)
                .with_fair_scheduling(fair),
        );
        let tbl = k.register("T", TableObject::new()).unwrap();
        let t1 = k.begin();
        let t2 = k.begin();
        let t3 = k.begin();

        assert!(executed(
            &k.request_op(t1, tbl, &TableOp::Modify(Value::Int(1), Value::Int(10)))
                .unwrap()
        ));
        assert!(k
            .request_op(t2, tbl, &TableOp::Lookup(Value::Int(1)))
            .unwrap()
            .is_blocked());
        let r3 = k
            .request_op(t3, tbl, &TableOp::Modify(Value::Int(1), Value::Int(99)))
            .unwrap();
        if fair {
            assert!(
                r3.is_blocked(),
                "fair scheduling must queue the modify behind the blocked lookup"
            );
        } else {
            match &r3 {
                RequestOutcome::Executed { commit_deps, .. } => {
                    assert_eq!(commit_deps, &vec![t1]);
                }
                other => panic!("without fair scheduling the modify executes, got {other:?}"),
            }
        }
    }
}

#[test]
fn fair_scheduling_read_write_starvation_example() {
    // The read/write shape the paper mentions ("prevent starvation of
    // writers by readers"), under the commutativity-only baseline:
    // an active reader, a blocked writer, and a newly arriving reader.
    for fair in [true, false] {
        let mut k = SchedulerKernel::new(
            SchedulerConfig::default()
                .with_policy(ConflictPolicy::CommutativityOnly)
                .with_fair_scheduling(fair),
        );
        let p = k.register("page", Page::new()).unwrap();
        let t1 = k.begin();
        let t2 = k.begin();
        let t3 = k.begin();

        assert!(executed(&k.request_op(t1, p, &PageOp::Read).unwrap()));
        assert!(k
            .request_op(t2, p, &PageOp::Write(Value::Int(9)))
            .unwrap()
            .is_blocked());
        let r3 = k.request_op(t3, p, &PageOp::Read).unwrap();
        if fair {
            assert!(r3.is_blocked(), "the new reader queues behind the writer");
        } else {
            assert!(r3.is_executed(), "readers overtake the blocked writer");
        }
    }
}

#[test]
fn youngest_victim_policy_aborts_the_youngest_cycle_participant() {
    let mut k = SchedulerKernel::new(
        SchedulerConfig::default()
            .with_policy(ConflictPolicy::Recoverability)
            .with_victim(VictimPolicy::Youngest),
    );
    let a = k.register("A", Stack::new()).unwrap();
    let b = k.register("B", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();

    assert!(executed(
        &k.request_op(t1, a, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, b, &StackOp::Push(Value::Int(2))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t2, a, &StackOp::Push(Value::Int(3))).unwrap()
    ));
    // T1 now requests a push on B: commit-dep T1 -> T2 plus T2 -> T1 closes
    // a cycle. Under the youngest policy T2 (the younger transaction) is
    // aborted instead of the requester, and T1's push then executes.
    let r = k
        .request_op(t1, b, &StackOp::Push(Value::Int(4)))
        .unwrap();
    assert!(r.is_executed(), "requester survives, got {r:?}");
    assert_eq!(k.txn_state(t2), Some(TxnState::Aborted));
    assert_eq!(k.stats().aborts_victim, 1);
    let events = k.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        KernelEvent::Aborted { txn, reason: AbortReason::VictimSelected } if *txn == t2
    )));
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn recovery_strategies_produce_identical_histories() {
    // Scripted workload exercising recoverable and commutative operations on
    // several data types, executed under both recovery strategies.
    let run = |strategy: RecoveryStrategy| {
        let mut k = SchedulerKernel::new(
            SchedulerConfig::default()
                .with_recovery(strategy)
                .with_policy(ConflictPolicy::Recoverability),
        );
        let s = k.register("stack", Stack::new()).unwrap();
        let c = k.register("counter", Counter::new()).unwrap();
        let tbl = k.register("table", TableObject::new()).unwrap();
        let t1 = k.begin();
        let t2 = k.begin();
        let t3 = k.begin();

        let mut results = Vec::new();
        let mut push = |k: &mut SchedulerKernel, t, o, call: sbcc_adt::OpCall| {
            let r = k.request(t, o, call).unwrap();
            results.push(format!("{r:?}"));
        };
        push(&mut k, t1, s, StackOp::Push(Value::Int(1)).to_call());
        push(&mut k, t2, s, StackOp::Push(Value::Int(2)).to_call());
        push(&mut k, t1, c, CounterOp::Increment(5).to_call());
        push(&mut k, t2, c, CounterOp::Decrement(2).to_call());
        push(
            &mut k,
            t3,
            tbl,
            TableOp::Insert(Value::Int(1), Value::Int(10)).to_call(),
        );
        push(&mut k, t3, c, CounterOp::Increment(7).to_call());
        push(&mut k, t1, tbl, TableOp::Insert(Value::Int(2), Value::Int(20)).to_call());

        // T2 pseudo-commits, T3 aborts, T1 commits -> cascade.
        results.push(format!("{:?}", k.commit(t2).unwrap()));
        k.abort(t3).unwrap();
        results.push(format!("{:?}", k.commit(t1).unwrap()));
        let _ = k.drain_events();

        verify_commit_order_serializable(&k).unwrap();
        let counter_state = k
            .object_committed_state(c)
            .unwrap()
            .as_any()
            .downcast_ref::<sbcc_adt::AdtObject<Counter>>()
            .unwrap()
            .inner()
            .value();
        let stack_items = k
            .object_committed_state(s)
            .unwrap()
            .as_any()
            .downcast_ref::<sbcc_adt::AdtObject<Stack>>()
            .unwrap()
            .inner()
            .items()
            .to_vec();
        (results, counter_state, stack_items)
    };

    let a = run(RecoveryStrategy::IntentionsList);
    let b = run(RecoveryStrategy::UndoReplay);
    assert_eq!(a, b, "both recovery strategies must be observationally identical");
    assert_eq!(a.1, 3, "committed counter value is +5 -2 (T3's +7 aborted)");
    assert_eq!(a.2, vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn error_paths_are_reported() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    assert!(matches!(
        k.register("S", Stack::new()),
        Err(CoreError::DuplicateObject(_))
    ));

    let bogus_txn = sbcc_core::TxnId(999);
    assert!(matches!(
        k.request_op(bogus_txn, s, &StackOp::Top),
        Err(CoreError::UnknownTransaction(_))
    ));
    assert!(matches!(k.commit(bogus_txn), Err(CoreError::UnknownTransaction(_))));
    assert!(matches!(k.abort(bogus_txn), Err(CoreError::UnknownTransaction(_))));

    let t1 = k.begin();
    assert!(matches!(
        k.request(t1, sbcc_core::ObjectId(42), StackOp::Top.to_call()),
        Err(CoreError::UnknownObject(_))
    ));

    // A blocked transaction cannot issue another request or commit.
    let t2 = k.begin();
    assert!(executed(
        &k.request_op(t1, s, &StackOp::Push(Value::Int(1))).unwrap()
    ));
    assert!(k.request_op(t2, s, &StackOp::Pop).unwrap().is_blocked());
    assert!(matches!(
        k.request_op(t2, s, &StackOp::Top),
        Err(CoreError::InvalidState { .. })
    ));
    assert!(matches!(k.commit(t2), Err(CoreError::InvalidState { .. })));

    // A pseudo-committed transaction can neither abort nor commit again.
    // (Use a second stack: on the first one T3's push would queue behind
    // T2's blocked pop under fair scheduling.)
    let s2 = k.register("S2", Stack::new()).unwrap();
    let t3 = k.begin();
    assert!(executed(
        &k.request_op(t1, s2, &StackOp::Push(Value::Int(5))).unwrap()
    ));
    assert!(executed(
        &k.request_op(t3, s2, &StackOp::Push(Value::Int(9))).unwrap()
    ));
    assert!(k.commit(t3).unwrap().is_pseudo_commit());
    assert!(matches!(k.abort(t3), Err(CoreError::InvalidState { .. })));
    assert!(matches!(k.commit(t3), Err(CoreError::InvalidState { .. })));

    // Terminated transactions cannot do anything.
    k.commit(t1).unwrap();
    assert!(matches!(
        k.request_op(t1, s, &StackOp::Top),
        Err(CoreError::InvalidState { .. })
    ));
}

#[test]
fn own_operations_never_conflict() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    let t1 = k.begin();
    // push, pop, top, push again: all within one transaction, all immediate.
    for op in [
        StackOp::Push(Value::Int(1)),
        StackOp::Top,
        StackOp::Pop,
        StackOp::Push(Value::Int(2)),
        StackOp::Pop,
        StackOp::Pop,
    ] {
        assert!(k.request_op(t1, s, &op).unwrap().is_executed());
    }
    assert_eq!(k.commit(t1).unwrap(), CommitOutcome::Committed);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn empty_transactions_commit_immediately() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let t = k.begin();
    assert_eq!(k.commit(t).unwrap(), CommitOutcome::Committed);
    assert_eq!(k.stats().commits, 1);
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn stats_track_the_protocol() {
    let mut k = kernel(ConflictPolicy::Recoverability);
    let s = k.register("S", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();
    let t3 = k.begin();
    k.request_op(t1, s, &StackOp::Push(Value::Int(1))).unwrap();
    k.request_op(t2, s, &StackOp::Push(Value::Int(2))).unwrap();
    k.request_op(t3, s, &StackOp::Pop).unwrap(); // blocks
    assert_eq!(k.stats().transactions_begun, 3);
    assert_eq!(k.stats().requests, 3);
    assert_eq!(k.stats().operations_executed, 2);
    assert_eq!(k.stats().blocks, 1);
    assert_eq!(k.stats().commit_dependencies, 1);
    assert!(k.cycle_checks() >= 2);

    k.commit(t2).unwrap(); // pseudo
    k.commit(t1).unwrap(); // commits, cascades T2, unblocks T3
    let _ = k.drain_events();
    assert_eq!(k.stats().commits, 2);
    assert_eq!(k.stats().pseudo_commits, 1);
    assert_eq!(k.stats().unblocks, 1);
    k.commit(t3).unwrap();
    assert_eq!(k.stats().commits, 3);
    assert_eq!(k.live_transactions().len(), 0);
    assert_eq!(k.executed_ops_of(t3), 1);
    assert!(
        k.ops_of(t3).is_empty(),
        "detailed per-operation records are dropped once a transaction terminates"
    );
}

#[test]
fn counter_hotspot_scales_without_blocking() {
    // Many concurrent increments on a single counter: under recoverability
    // none of them blocks; every transaction pseudo-commits at worst and the
    // final value is the sum.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let c = k.register("hits", Counter::new()).unwrap();
    let txns: Vec<_> = (0..20).map(|_| k.begin()).collect();
    for (i, t) in txns.iter().enumerate() {
        let r = k
            .request_op(*t, c, &CounterOp::Increment(i as i64 + 1))
            .unwrap();
        assert!(r.is_executed(), "increment {i} must not block");
    }
    assert_eq!(k.stats().blocks, 0);
    // Commit in reverse order to maximise pseudo-commits ... increments
    // commute, so there are no commit dependencies and all commits are full.
    for t in txns.iter().rev() {
        assert!(k.commit(*t).unwrap().is_full_commit());
    }
    let value = k
        .object_committed_state(c)
        .unwrap()
        .as_any()
        .downcast_ref::<sbcc_adt::AdtObject<Counter>>()
        .unwrap()
        .inner()
        .value();
    assert_eq!(value, (1..=20).sum::<i64>());
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn table_audit_scenario_insert_recoverable_relative_to_size() {
    // A long-running "audit" transaction reads the table size; subsequent
    // inserts by other transactions are recoverable relative to it and do
    // not wait, but they commit after the audit.
    let mut k = kernel(ConflictPolicy::Recoverability);
    let tbl = k.register("accounts", TableObject::new()).unwrap();
    let audit = k.begin();
    let r = k.request_op(audit, tbl, &TableOp::Size).unwrap();
    assert_eq!(r.result(), Some(&sbcc_adt::OpResult::Value(Value::Int(0))));

    let writer = k.begin();
    let r = k
        .request_op(
            writer,
            tbl,
            &TableOp::Insert(Value::Int(1), Value::Int(100)),
        )
        .unwrap();
    match &r {
        RequestOutcome::Executed { commit_deps, .. } => assert_eq!(commit_deps, &vec![audit]),
        other => panic!("insert should be recoverable relative to size, got {other:?}"),
    }
    // The reverse is not allowed: another auditor's size must wait for the
    // writer now.
    let audit2 = k.begin();
    assert!(k.request_op(audit2, tbl, &TableOp::Size).unwrap().is_blocked());

    assert!(k.commit(writer).unwrap().is_pseudo_commit());
    assert_eq!(k.commit(audit).unwrap(), CommitOutcome::Committed);
    let _ = k.drain_events();
    assert_eq!(k.txn_state(writer), Some(TxnState::Committed));
    // audit2 saw the table only after the writer committed: size = 1.
    let events_ok = k.txn_state(audit2) == Some(TxnState::Active);
    assert!(events_ok, "audit2 should have been unblocked");
    k.commit(audit2).unwrap();
    verify_commit_order_serializable(&k).unwrap();
    verify_commit_order_respects_dependencies(&k).unwrap();
}
