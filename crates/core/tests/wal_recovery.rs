//! Crash-restart differential tests for the write-ahead log.
//!
//! House-style oracle: **crash-restart equivalence**. A crash image is a
//! byte-copy of the log directory taken at a chosen point (with
//! `FsyncPolicy::Always` every acknowledged commit is fully on disk, so a
//! copy *is* the disk state a `kill -9` would leave); recovering the image
//! must reproduce exactly the state an uncrashed database shows after the
//! same prefix of the workload, at `SBCC_SHARDS`-style shard counts 1
//! and 4. Targeted surgery (truncating a marker or one shard's fragment)
//! emulates the crash points a clean copy cannot reach: mid-group-commit
//! and between the per-shard flushes of a multi-shard commit.

use sbcc_adt::{
    AbstractObject, AdtObject, AdtOp, AdtSpec, Counter, CounterOp, Stack, StackOp, Value,
};
use sbcc_core::{
    shard_of_name, CommitOutcome, CoreError, Database, DatabaseConfig, FsyncPolicy, Handle,
    SchedulerConfig, ShardCount, WalConfig,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "sbcc-wal-recovery-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn truncate(path: &Path, len: u64) {
    let file = std::fs::OpenOptions::new().write(true).open(path).unwrap();
    file.set_len(len).unwrap();
}

fn config(shards: usize, wal: Option<WalConfig>) -> DatabaseConfig {
    DatabaseConfig {
        scheduler: SchedulerConfig::default(),
        shards: ShardCount::Fixed(shards),
        wal,
    }
}

fn wal_always(dir: &Path) -> WalConfig {
    WalConfig::new(dir).with_fsync(FsyncPolicy::Always)
}

// ---------------------------------------------------------------------
// The deterministic workload shared by the differential tests.
// ---------------------------------------------------------------------

const STACKS: usize = 4;
const TXNS: usize = 12;

struct Objects {
    stacks: Vec<Handle<Stack>>,
    hits: Handle<Counter>,
}

fn object_names() -> Vec<String> {
    let mut names: Vec<String> = (0..STACKS).map(|i| format!("stack-{i}")).collect();
    names.push("hits".to_owned());
    names
}

fn register_all(db: &Database) -> Objects {
    Objects {
        stacks: (0..STACKS)
            .map(|i| db.register(format!("stack-{i}"), Stack::new()))
            .collect(),
        hits: db.register("hits", Counter::new()),
    }
}

/// Run transaction `k` of the workload: every third transaction spans two
/// stacks plus the counter (multi-shard at 4 shards), the rest touch one
/// stack. All commits are actual commits (one sequential session).
fn run_txn(db: &Database, objects: &Objects, k: usize) {
    let txn = db.begin();
    let v = Value::Int(k as i64);
    if k % 3 == 2 {
        txn.exec(&objects.stacks[k % STACKS], StackOp::Push(v.clone())).unwrap();
        txn.exec(&objects.stacks[(k + 1) % STACKS], StackOp::Push(v)).unwrap();
        txn.exec(&objects.hits, CounterOp::Increment(1)).unwrap();
    } else {
        txn.exec(&objects.stacks[k % STACKS], StackOp::Push(v)).unwrap();
        // An observer too, so replay checks a value-carrying result.
        txn.exec(&objects.stacks[k % STACKS], StackOp::Top).unwrap();
    }
    assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);
}

/// One committed-state digest per workload object (`None` = unregistered).
fn digests(db: &Database) -> Vec<Option<String>> {
    object_names()
        .iter()
        .map(|name| {
            db.with_sharded_kernel(|k| {
                k.object_id(name)
                    .and_then(|id| k.with_object_committed(id, |o| o.debug_state()))
            })
        })
        .collect()
}

/// What one snapshot transaction observes of the workload objects: the
/// top of every stack plus the counter, read through the multi-version
/// path. Handles are looked up by name so this works on recovered
/// databases (whose registrations replayed from the log).
fn snapshot_probe(db: &Database, txn: &sbcc_core::Transaction) -> Vec<String> {
    let mut seen = Vec::new();
    for i in 0..STACKS {
        let stack = db.handle::<Stack>(&format!("stack-{i}")).unwrap();
        seen.push(format!("{:?}", txn.exec(&stack, StackOp::Top).unwrap()));
    }
    let hits = db.handle::<Counter>("hits").unwrap();
    seen.push(format!("{:?}", txn.exec(&hits, CounterOp::Read).unwrap()));
    seen
}

/// Recover a crash image (copied first — recovery repairs files in place)
/// and return the recovered database.
fn recover(image: &Path, shards: usize) -> (ScratchDir, Database) {
    let scratch = ScratchDir::new("recover");
    copy_dir(image, scratch.path());
    let db = Database::try_with_config(config(shards, Some(wal_always(scratch.path())))).unwrap();
    (scratch, db)
}

// ---------------------------------------------------------------------
// The tentpole oracle: crash-restart equivalence at every commit boundary.
// ---------------------------------------------------------------------

fn crash_restart_equivalence(shards: usize) {
    let dir = ScratchDir::new("diff");
    let db = Database::with_config(config(shards, Some(wal_always(dir.path()))));
    let objects = register_all(&db);

    // Crash images: one after registration, one after each commit.
    let mut images: Vec<ScratchDir> = Vec::new();
    let snap = |images: &mut Vec<ScratchDir>| {
        let image = ScratchDir::new("image");
        copy_dir(dir.path(), image.path());
        images.push(image);
    };
    snap(&mut images);
    for k in 0..TXNS {
        run_txn(&db, &objects, k);
        snap(&mut images);
    }

    for (prefix, image) in images.iter().enumerate() {
        // The uncrashed reference: a fresh, non-durable database running
        // the same workload prefix.
        let reference = Database::with_config(config(shards, None));
        let ref_objects = register_all(&reference);
        for k in 0..prefix {
            run_txn(&reference, &ref_objects, k);
        }

        let (_scratch, recovered) = recover(image.path(), shards);
        assert_eq!(
            digests(&recovered),
            digests(&reference),
            "kill after commit {prefix}/{TXNS} at {shards} shard(s): \
             recovered state must equal the uncrashed prefix run"
        );
        assert_eq!(
            recovered.stats().commits,
            prefix as u64,
            "transaction fates: exactly the {prefix} logged commits replay"
        );

        // Replay rebuilds the version chain too: a snapshot begun at the
        // recovered head must observe exactly what a snapshot at the
        // uncrashed head observes, through the multi-version read path.
        let snap_rec = recovered.begin_snapshot();
        let snap_ref = reference.begin_snapshot();
        assert_eq!(
            snapshot_probe(&recovered, &snap_rec),
            snapshot_probe(&reference, &snap_ref),
            "kill after commit {prefix}/{TXNS} at {shards} shard(s): \
             post-recovery snapshot diverges from the uncrashed snapshot"
        );
        snap_rec.commit().unwrap();
        snap_ref.commit().unwrap();
        assert!(
            recovered.stats().snapshot_reads >= (STACKS + 1) as u64,
            "the probe must be served by the snapshot path"
        );
    }
}

#[test]
fn crash_restart_equivalence_single_shard() {
    crash_restart_equivalence(1);
}

#[test]
fn crash_restart_equivalence_four_shards() {
    crash_restart_equivalence(4);
}

// ---------------------------------------------------------------------
// Version chains after recovery: snapshots pin history, GC reclaims it.
// ---------------------------------------------------------------------

/// A snapshot opened on a recovered database keeps reading the recovered
/// head while later commits stack new versions on top; closing it lets
/// `prune_versions` reclaim every retained version.
#[test]
fn recovered_version_chains_serve_snapshots_and_prune() {
    let dir = ScratchDir::new("versions");
    {
        let db = Database::with_config(config(4, Some(wal_always(dir.path()))));
        let objects = register_all(&db);
        for k in 0..TXNS {
            run_txn(&db, &objects, k);
        }
    }
    let image = ScratchDir::new("versions-image");
    copy_dir(dir.path(), image.path());
    let (_scratch, recovered) = recover(image.path(), 4);

    let reference = Database::with_config(config(4, None));
    let ref_objects = register_all(&reference);
    for k in 0..TXNS {
        run_txn(&reference, &ref_objects, k);
    }

    // Pin the recovered head with a snapshot, then keep committing: the
    // overwritten versions must be retained for the snapshot...
    let pinned = recovered.begin_snapshot();
    let head = snapshot_probe(&recovered, &pinned);
    assert_eq!(
        head,
        {
            let r = reference.begin_snapshot();
            let probe = snapshot_probe(&reference, &r);
            r.commit().unwrap();
            probe
        },
        "recovered snapshot head diverges from the uncrashed reference"
    );
    let objects = Objects {
        stacks: (0..STACKS)
            .map(|i| recovered.handle::<Stack>(&format!("stack-{i}")).unwrap())
            .collect(),
        hits: recovered.handle::<Counter>("hits").unwrap(),
    };
    for k in TXNS..TXNS + 6 {
        run_txn(&recovered, &objects, k);
    }
    assert!(
        recovered.version_depth() > 0,
        "commits over a live snapshot must retain the overwritten versions"
    );
    // ...a mid-life sweep may only prune below the snapshot's stamp...
    recovered.prune_versions();
    assert_eq!(
        snapshot_probe(&recovered, &pinned),
        head,
        "the pinned snapshot must still read the recovered head"
    );
    pinned.commit().unwrap();

    // ...and once the oldest (only) snapshot closes, everything goes.
    assert_eq!(recovered.oldest_snapshot_stamp(), None);
    assert!(recovered.prune_versions() > 0, "retained versions reclaimed");
    assert_eq!(recovered.version_depth(), 0);
    assert!(recovered.stats().versions_pruned > 0);
}

// ---------------------------------------------------------------------
// Ordering: pseudo-commits must not reach the log before their
// dependency union clears.
// ---------------------------------------------------------------------

#[test]
fn pseudo_committed_transaction_is_not_durable() {
    let dir = ScratchDir::new("pseudo");
    let db = Database::with_config(config(1, Some(wal_always(dir.path()))));
    let stack = db.register("s", Stack::new());

    let a = db.begin();
    a.exec(&stack, StackOp::Push(Value::Int(1))).unwrap();
    let b = db.begin();
    // push/push: non-commuting but recoverable, so B executes with a
    // commit dependency on A and can only pseudo-commit.
    b.exec(&stack, StackOp::Push(Value::Int(2))).unwrap();
    let outcome = b.commit().unwrap();
    assert!(
        matches!(outcome, CommitOutcome::PseudoCommitted { .. }),
        "expected a pseudo-commit, got {outcome:?}"
    );

    // Crash now: B is pseudo-committed, A still live. Neither may be in
    // the log — recovery must show an empty stack.
    let image = ScratchDir::new("pseudo-image");
    copy_dir(dir.path(), image.path());
    let (_s, recovered) = recover(image.path(), 1);
    assert_eq!(recovered.stats().commits, 0, "no commit may have been logged");

    // A commits; the cascade actually-commits B, and both become durable
    // in dependency order (A's record precedes B's).
    assert_eq!(a.commit().unwrap(), CommitOutcome::Committed);
    let image2 = ScratchDir::new("pseudo-image2");
    copy_dir(dir.path(), image2.path());
    let (_s2, recovered2) = recover(image2.path(), 1);
    assert_eq!(recovered2.stats().commits, 2);
    let state = digests(&recovered2);
    let top = recovered2.with_sharded_kernel(|k| {
        let id = k.object_id("s").unwrap();
        k.with_object_committed(id, |o| o.debug_state()).unwrap()
    });
    assert!(top.contains('1') && top.contains('2'), "both pushes recovered: {state:?}");
}

// ---------------------------------------------------------------------
// Group commit: a Committed acknowledgement is a durability promise.
// ---------------------------------------------------------------------

#[test]
fn group_commit_acknowledged_commits_survive_a_crash() {
    let dir = ScratchDir::new("group");
    let wal = WalConfig::new(dir.path())
        .with_fsync(FsyncPolicy::GroupCommit)
        .with_window(Duration::from_millis(1));
    let db = Database::with_config(config(1, Some(wal)));
    let objects = register_all(&db);
    for k in 0..6 {
        run_txn(&db, &objects, k);
    }
    // The database is still alive (flusher running, buffers possibly
    // non-empty for anything unacknowledged — but every `run_txn` commit
    // was acknowledged, so every record is flushed). A copy taken NOW is
    // the kill -9 image.
    let image = ScratchDir::new("group-image");
    copy_dir(dir.path(), image.path());
    let (_s, recovered) = recover(image.path(), 1);
    assert_eq!(recovered.stats().commits, 6);

    let reference = Database::with_config(config(1, None));
    let ref_objects = register_all(&reference);
    for k in 0..6 {
        run_txn(&reference, &ref_objects, k);
    }
    assert_eq!(digests(&recovered), digests(&reference));
    drop(db);
}

// ---------------------------------------------------------------------
// Declared batches: group-commit durability equals the classified path.
// ---------------------------------------------------------------------

/// Transaction `k` of the same workload, submitted as one declared batch
/// (write footprint declared up front, all calls through
/// [`sbcc_core::Batch::submit`]) instead of per-op classified execs.
fn run_txn_declared(db: &Database, objects: &Objects, k: usize) {
    let txn = db.begin();
    let v = Value::Int(k as i64);
    let mut batch = txn.batch();
    if k % 3 == 2 {
        batch.add_declare_write(&objects.stacks[k % STACKS]);
        batch.add_declare_write(&objects.stacks[(k + 1) % STACKS]);
        batch.add_declare_write(&objects.hits);
        batch.add_call(&objects.stacks[k % STACKS], StackOp::Push(v.clone()).to_call());
        batch.add_call(&objects.stacks[(k + 1) % STACKS], StackOp::Push(v).to_call());
        batch.add_call(&objects.hits, CounterOp::Increment(1).to_call());
        assert_eq!(batch.submit().unwrap().len(), 3);
    } else {
        batch.add_declare_write(&objects.stacks[k % STACKS]);
        batch.add_call(&objects.stacks[k % STACKS], StackOp::Push(v.clone()).to_call());
        batch.add_call(&objects.stacks[k % STACKS], StackOp::Top.to_call());
        let results = batch.submit().unwrap();
        assert_eq!(results.last(), Some(&sbcc_adt::OpResult::Value(v)));
    }
    assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);
}

/// A declared-batch workload under group commit, killed mid-flight, must
/// recover to exactly the state a classified (per-op exec) reference run
/// of the same committed prefix shows — the log records executed
/// operations, not admission paths, so the two are indistinguishable at
/// recovery. Two kill points: a live-copy image (every acknowledged
/// commit flushed, the group-commit flusher mid-window) and a surgical
/// image dropping the final multi-shard commit's marker (killed after
/// its fragment flushes, before the marker write). Recovery itself
/// replays commits as declared batches, so the recovered database must
/// show group admissions.
#[test]
fn declared_batches_killed_mid_group_commit_recover_to_classified_replay() {
    let dir = ScratchDir::new("declared-group");
    let wal = WalConfig::new(dir.path())
        .with_fsync(FsyncPolicy::GroupCommit)
        .with_window(Duration::from_millis(1));
    let db = Database::with_config(config(4, Some(wal)));
    let objects = register_all(&db);

    let marker_file = sbcc_wal::marker_path(dir.path());
    for k in 0..TXNS - 1 {
        run_txn_declared(&db, &objects, k);
    }
    // The final transaction is multi-shard (TXNS-1 ≡ 2 mod 3): record the
    // marker length before it so surgery can un-mark exactly that commit.
    assert_eq!((TXNS - 1) % 3, 2, "the surgical kill needs a multi-shard tail");
    let marker_len_before = std::fs::metadata(&marker_file).unwrap().len();
    run_txn_declared(&db, &objects, TXNS - 1);

    // Kill point A: copy the live directory. Every commit above was
    // acknowledged, and a group-commit acknowledgement is a durability
    // promise, so the full workload must recover.
    let image = ScratchDir::new("declared-group-image");
    copy_dir(dir.path(), image.path());
    let (_s, recovered) = recover(image.path(), 4);
    assert_eq!(recovered.stats().commits, TXNS as u64);
    assert!(
        recovered.stats().declared_admitted > 0,
        "recovery replays commits as declared batches through group admission"
    );

    let reference = Database::with_config(config(4, None));
    let ref_objects = register_all(&reference);
    for k in 0..TXNS {
        run_txn(&reference, &ref_objects, k);
    }
    assert_eq!(
        digests(&recovered),
        digests(&reference),
        "declared-batch recovery must equal the classified reference run"
    );

    // Kill point B: the tail commit's fragments are on disk but its
    // marker write never landed. All-or-nothing: recovery keeps exactly
    // the first TXNS-1 commits and equals the classified prefix run.
    let image_b = ScratchDir::new("declared-group-image-b");
    copy_dir(dir.path(), image_b.path());
    truncate(&sbcc_wal::marker_path(image_b.path()), marker_len_before);
    let (_s2, rec_b) = recover(image_b.path(), 4);
    assert_eq!(rec_b.stats().commits, (TXNS - 1) as u64);
    let ref_prefix = Database::with_config(config(4, None));
    let ref_prefix_objects = register_all(&ref_prefix);
    for k in 0..TXNS - 1 {
        run_txn(&ref_prefix, &ref_prefix_objects, k);
    }
    assert_eq!(
        digests(&rec_b),
        digests(&ref_prefix),
        "the unmarked declared tail commit must vanish whole"
    );
    drop(db);
}

// ---------------------------------------------------------------------
// Multi-shard commits: all-or-nothing under marker/fragment loss.
// ---------------------------------------------------------------------

/// Two workload stacks guaranteed to live in different shards at 4 shards.
fn cross_shard_pair() -> (usize, usize) {
    for i in 0..STACKS {
        for j in (i + 1)..STACKS {
            if shard_of_name(&format!("stack-{i}"), 4) != shard_of_name(&format!("stack-{j}"), 4) {
                return (i, j);
            }
        }
    }
    panic!("no cross-shard stack pair at 4 shards");
}

#[test]
fn multi_shard_commit_is_all_or_nothing_at_recovery() {
    let (i, j) = cross_shard_pair();
    let dir = ScratchDir::new("multi");
    let db = Database::with_config(config(4, Some(wal_always(dir.path()))));
    let objects = register_all(&db);

    // A durable single-shard commit first, as the survivor control.
    let txn = db.begin();
    txn.exec(&objects.stacks[i], StackOp::Push(Value::Int(100))).unwrap();
    txn.commit().unwrap();

    let marker_file = sbcc_wal::marker_path(dir.path());
    let marker_len_before = std::fs::metadata(&marker_file).map(|m| m.len()).unwrap_or(0);
    let shard_j = shard_of_name(&format!("stack-{j}"), 4);
    let frag_file = sbcc_wal::shard_log_path(dir.path(), shard_j);
    let frag_len_before = std::fs::metadata(&frag_file).unwrap().len();

    // The multi-shard transaction.
    let txn = db.begin();
    txn.exec(&objects.stacks[i], StackOp::Push(Value::Int(7))).unwrap();
    txn.exec(&objects.stacks[j], StackOp::Push(Value::Int(7))).unwrap();
    assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);

    // Sanity: a clean image recovers the whole transaction.
    let clean = ScratchDir::new("multi-clean");
    copy_dir(dir.path(), clean.path());
    let (_s0, full) = recover(clean.path(), 4);
    assert_eq!(full.stats().commits, 2);

    // Crash point A — after every fragment flush, before the marker: drop
    // the marker record. Recovery must lose the multi-shard transaction in
    // BOTH shards and keep the earlier single-shard commit.
    let image_a = ScratchDir::new("multi-a");
    copy_dir(dir.path(), image_a.path());
    truncate(&sbcc_wal::marker_path(image_a.path()), marker_len_before);
    let (_s1, rec_a) = recover(image_a.path(), 4);
    assert_eq!(
        rec_a.stats().commits,
        1,
        "unmarked multi-shard fragments must not replay"
    );
    let di = digests(&rec_a);
    assert!(di[i].as_ref().unwrap().contains("100"), "control commit survives");
    assert!(!di[i].as_ref().unwrap().contains('7'), "no half-recovered txn: {di:?}");
    assert!(!di[j].as_ref().unwrap().contains('7'), "no half-recovered txn: {di:?}");

    // Crash point B — between the per-shard flushes: shard j's fragment
    // never hit the disk, so the marker (written strictly afterwards)
    // is gone too. Same outcome: all-or-nothing.
    let image_b = ScratchDir::new("multi-b");
    copy_dir(dir.path(), image_b.path());
    truncate(&sbcc_wal::shard_log_path(image_b.path(), shard_j), frag_len_before);
    truncate(&sbcc_wal::marker_path(image_b.path()), marker_len_before);
    let (_s2, rec_b) = recover(image_b.path(), 4);
    assert_eq!(rec_b.stats().commits, 1);
    let di = digests(&rec_b);
    assert!(!di[i].as_ref().unwrap().contains('7'), "surviving fragment dropped: {di:?}");
}

// ---------------------------------------------------------------------
// Continuity: recover, append, recover again.
// ---------------------------------------------------------------------

#[test]
fn recovery_chains_across_generations() {
    let dir = ScratchDir::new("chain");
    {
        let db = Database::with_config(config(4, Some(wal_always(dir.path()))));
        let objects = register_all(&db);
        for k in 0..5 {
            run_txn(&db, &objects, k);
        }
    }
    {
        // Second generation: recovers 5 commits, adds 4 more. Handles are
        // re-created by name (registration is in the log, not re-run).
        let db = Database::with_config(config(4, Some(wal_always(dir.path()))));
        assert_eq!(db.stats().commits, 5);
        // Re-registering must fail: replay already registered the objects.
        match db.try_register("stack-0", Stack::new()) {
            Err(CoreError::DuplicateObject(_)) => {}
            other => panic!("expected DuplicateObject, got {other:?}"),
        }
        // A typed lookup with the wrong type is refused.
        assert!(db.handle::<Counter>("stack-0").is_none());
        let objects = Objects {
            stacks: (0..STACKS)
                .map(|i| db.handle::<Stack>(&format!("stack-{i}")).unwrap())
                .collect(),
            hits: db.handle::<Counter>("hits").unwrap(),
        };
        for k in 5..9 {
            run_txn(&db, &objects, k);
        }
    }
    // Third generation equals an uncrashed run of the first 9 transactions,
    // even at a DIFFERENT shard count (recovery reads every shard file).
    let db = Database::with_config(config(1, Some(wal_always(dir.path()))));
    let reference = Database::with_config(config(1, None));
    let ref_objects = register_all(&reference);
    for k in 0..9 {
        run_txn(&reference, &ref_objects, k);
    }
    assert_eq!(digests(&db), digests(&reference));
}

// ---------------------------------------------------------------------
// Registration validation on durable databases.
// ---------------------------------------------------------------------

#[test]
fn durable_databases_refuse_unreconstructible_registrations() {
    let dir = ScratchDir::new("validate");
    let db = Database::with_config(config(1, Some(wal_always(dir.path()))));

    // An abstract object's conflict table is not captured by the log.
    match db.register_object("abstract", Box::new(AbstractObject::read_write())) {
        Err(CoreError::Durability(msg)) => assert!(msg.contains("abstract")),
        other => panic!("expected Durability error, got {other:?}"),
    }

    // A pre-populated object cannot be rebuilt from an operation log.
    let mut populated = Stack::new();
    populated.apply(&StackOp::Push(Value::Int(9)));
    match db.register_object("full", Box::new(AdtObject::new(populated))) {
        Err(CoreError::Durability(msg)) => assert!(msg.contains("non-empty")),
        other => panic!("expected Durability error, got {other:?}"),
    }

    // Both register fine without a WAL.
    let plain = Database::with_config(config(1, None));
    plain
        .register_object("abstract", Box::new(AbstractObject::read_write()))
        .unwrap();
    let mut populated = Stack::new();
    populated.apply(&StackOp::Push(Value::Int(9)));
    plain
        .register_object("full", Box::new(AdtObject::new(populated)))
        .unwrap();
}
