//! Differential tests for the multi-version snapshot-read path.
//!
//! House-style oracle: **snapshot-blocking equivalence**. A read served
//! by [`Database::begin_snapshot`]'s versioned, non-blocking path must
//! return exactly what the classified blocking path returns on the same
//! committed state — same per-operation results, same transaction fates,
//! same final committed object states, same transaction-lifecycle
//! counters — at shard counts 1 and 4. On top of the equivalence, a
//! snapshot held open across later commits must keep reading its begin
//! stamp (stability), the version store must drain once the last
//! snapshot closes (GC), and the pinned write-skew schedule — invisible
//! to each snapshot alone, non-serializable in combination — must be
//! refused by the SSI rw-antidependency guard.

use proptest::prelude::*;
use sbcc_adt::{
    AdtObject, AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp,
    TableObject, TableOp, Value,
};
use sbcc_core::{
    shard_of_name, AbortReason, CommitOutcome, CoreError, Database, DatabaseConfig,
    KernelStats, ObjectHandle, SchedulerConfig, ShardCount, Transaction,
};

const N_OBJECTS: usize = 5;

fn config(shards: usize) -> DatabaseConfig {
    DatabaseConfig {
        scheduler: SchedulerConfig::default(),
        shards: ShardCount::Fixed(shards),
        wal: None,
    }
}

fn object_names() -> Vec<String> {
    vec![
        "stack".to_owned(),
        "set".to_owned(),
        "counter".to_owned(),
        "table".to_owned(),
        "page".to_owned(),
    ]
}

fn register_all(db: &Database) -> Vec<ObjectHandle> {
    vec![
        db.register_object("stack", Box::new(AdtObject::new(Stack::new()))).unwrap(),
        db.register_object("set", Box::new(AdtObject::new(Set::new()))).unwrap(),
        db.register_object("counter", Box::new(AdtObject::new(Counter::new()))).unwrap(),
        db.register_object("table", Box::new(AdtObject::new(TableObject::new()))).unwrap(),
        db.register_object("page", Box::new(AdtObject::new(Page::new()))).unwrap(),
    ]
}

/// The fixed read-only probe both read paths answer at every read point.
fn probe_calls() -> Vec<(usize, OpCall)> {
    vec![
        (0, StackOp::Top.to_call()),
        (1, SetOp::Member(Value::Int(0)).to_call()),
        (1, SetOp::Member(Value::Int(2)).to_call()),
        (2, CounterOp::Read.to_call()),
        (3, TableOp::Lookup(Value::Int(1)).to_call()),
        (3, TableOp::Size.to_call()),
        (4, PageOp::Read.to_call()),
    ]
}

/// Run the probe inside an already-open transaction (snapshot or
/// classified — `exec_call` routes each read to the right path).
fn probe_with(txn: &Transaction, handles: &[ObjectHandle]) -> Vec<String> {
    probe_calls()
        .into_iter()
        .map(|(o, call)| format!("{}", txn.exec_call(&handles[o], call).unwrap()))
        .collect()
}

/// One committed-state digest per object.
fn digests(db: &Database) -> Vec<Option<String>> {
    object_names()
        .iter()
        .map(|name| {
            db.with_sharded_kernel(|k| {
                k.object_id(name)
                    .and_then(|id| k.with_object_committed(id, |o| o.debug_state()))
            })
        })
        .collect()
}

/// Commit one writer script as a single transaction. The driver is
/// sequential (one live writer at a time), so every call executes
/// immediately and every commit is an actual commit.
fn run_writer(db: &Database, handles: &[ObjectHandle], script: &[(usize, OpCall)]) {
    let txn = db.begin();
    for (o, call) in script {
        txn.exec_call(&handles[*o], call.clone()).unwrap();
    }
    assert_eq!(txn.commit().unwrap(), CommitOutcome::Committed);
}

/// The transaction-lifecycle counters both read paths must agree on.
/// Operation-level counters legitimately differ: classified probes count
/// `requests`/`operations_executed`, snapshot probes count
/// `snapshot_reads` instead.
fn lifecycle(stats: &KernelStats) -> [u64; 8] {
    [
        stats.transactions_begun,
        stats.commits,
        stats.pseudo_commits,
        stats.commit_dependencies,
        stats.aborts_deadlock,
        stats.aborts_commit_cycle,
        stats.aborts_victim,
        stats.aborts_explicit,
    ]
}

/// Drive the workload with **classified blocking** read points.
fn run_blocking(
    scripts: &[Vec<(usize, OpCall)>],
    shards: usize,
) -> (Vec<Vec<String>>, Vec<Option<String>>, KernelStats) {
    let db = Database::with_config(config(shards));
    let handles = register_all(&db);
    let mut probes = Vec::new();
    for script in scripts {
        let reader = db.begin();
        probes.push(probe_with(&reader, &handles));
        assert_eq!(reader.commit().unwrap(), CommitOutcome::Committed);
        run_writer(&db, &handles, script);
    }
    let reader = db.begin();
    probes.push(probe_with(&reader, &handles));
    assert_eq!(reader.commit().unwrap(), CommitOutcome::Committed);
    db.verify_serializable().unwrap();
    (probes, digests(&db), db.stats())
}

/// Drive the same workload with **snapshot** read points, holding every
/// snapshot open until the end so later commits stack versions on top of
/// each begin stamp.
fn run_snapshot(
    scripts: &[Vec<(usize, OpCall)>],
    shards: usize,
) -> (Vec<Vec<String>>, Vec<Option<String>>, KernelStats) {
    let db = Database::with_config(config(shards));
    let handles = register_all(&db);
    let mut probes = Vec::new();
    let mut open: Vec<(Transaction, Vec<String>)> = Vec::new();
    for script in scripts {
        let snap = db.begin_snapshot();
        assert!(snap.snapshot_stamp().is_some());
        let seen = probe_with(&snap, &handles);
        probes.push(seen.clone());
        open.push((snap, seen));
        run_writer(&db, &handles, script);
    }
    let snap = db.begin_snapshot();
    probes.push(probe_with(&snap, &handles));
    assert_eq!(snap.commit().unwrap(), CommitOutcome::Committed);

    // Stability: every held snapshot still reads its begin stamp, no
    // matter how many commits have landed since, and — being read-only —
    // commits without tripping the SSI guard.
    for (snap, seen) in open {
        assert_eq!(probe_with(&snap, &handles), seen, "snapshot reads drifted");
        assert_eq!(snap.commit().unwrap(), CommitOutcome::Committed);
    }

    // GC: with the last snapshot closed nothing can need old versions;
    // a sweep drains the version store completely.
    assert_eq!(db.oldest_snapshot_stamp(), None);
    db.prune_versions();
    assert_eq!(db.version_depth(), 0, "version store must drain after GC");
    db.verify_serializable().unwrap();
    (probes, digests(&db), db.stats())
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..10).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

fn arb_scripts() -> impl Strategy<Value = Vec<Vec<(usize, OpCall)>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0..N_OBJECTS).prop_flat_map(|o| arb_call_for(o).prop_map(move |c| (o, c))),
            1..6,
        ),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The headline property, at 1 **and** 4 shards: snapshot read
    /// points produce exactly the blocking path's results, the same
    /// final committed states, and the same transaction lifecycle.
    #[test]
    fn snapshot_reads_equal_blocking_reads(scripts in arb_scripts()) {
        let mut per_shard = Vec::new();
        for shards in [1usize, 4] {
            let (probes_b, digests_b, stats_b) = run_blocking(&scripts, shards);
            let (probes_s, digests_s, stats_s) = run_snapshot(&scripts, shards);
            prop_assert_eq!(
                &probes_b, &probes_s,
                "per-operation read results diverge at {} shard(s)", shards
            );
            prop_assert_eq!(
                &digests_b, &digests_s,
                "final committed states diverge at {} shard(s)", shards
            );
            prop_assert_eq!(
                lifecycle(&stats_b), lifecycle(&stats_s),
                "transaction lifecycles diverge at {} shard(s)", shards
            );
            // Read-only snapshots over a sequential writer schedule can
            // never complete a dangerous structure.
            prop_assert_eq!(stats_s.aborts_ssi, 0);
            prop_assert_eq!(stats_b.snapshot_reads, 0, "blocking run uses no snapshots");
            // Every probe answered by the versioned path: initial pass
            // plus the stability re-probe of each held snapshot.
            let expected = (probe_calls().len() * (2 * scripts.len() + 1)) as u64;
            prop_assert_eq!(stats_s.snapshot_reads, expected);
            per_shard.push((probes_s, digests_s));
        }
        // Sharding is invisible to a sequential schedule on both paths.
        let (p1, d1) = &per_shard[0];
        let (p4, d4) = &per_shard[1];
        prop_assert_eq!(p1, p4, "results diverge between 1 and 4 shards");
        prop_assert_eq!(d1, d4, "states diverge between 1 and 4 shards");
    }
}

// ---------------------------------------------------------------------
// Pinned scenarios (deterministic)
// ---------------------------------------------------------------------

/// Two counter names guaranteed to land on distinct shards of a
/// `shards`-way kernel (any names work at 1 shard).
fn names_on_distinct_shards(shards: usize) -> (String, String) {
    let a = "x0".to_string();
    let sa = shard_of_name(&a, shards);
    let mut i = 1;
    loop {
        let b = format!("x{i}");
        if shards == 1 || shard_of_name(&b, shards) != sa {
            return (a, b);
        }
        i += 1;
    }
}

/// The SSI litmus test: classic write skew. T1 snapshot-reads `x` and
/// writes `y`; T2 snapshot-reads `y` and writes `x`. Each snapshot alone
/// is consistent, but the pair is not serializable (each read misses the
/// other's write), completing the dangerous in+out rw-antidependency
/// structure. The first committer wins; the second must be refused with
/// [`AbortReason::SsiConflict`].
fn write_skew_is_refused(shards: usize) {
    let db = Database::with_config(config(shards));
    let (name_x, name_y) = names_on_distinct_shards(shards);
    let x = db.register_object(&name_x, Box::new(AdtObject::new(Counter::new()))).unwrap();
    let y = db.register_object(&name_y, Box::new(AdtObject::new(Counter::new()))).unwrap();

    let t1 = db.begin_snapshot();
    let t2 = db.begin_snapshot();

    // Both reads are served by the versioned path and see the initial
    // state — neither observes the other's pending write.
    assert_eq!(
        t1.exec_call(&x, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(0))
    );
    t1.exec_call(&y, CounterOp::Increment(1).to_call()).unwrap();
    assert_eq!(
        t2.exec_call(&y, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(0)),
        "t2's snapshot read must not see t1's uncommitted increment"
    );
    t2.exec_call(&x, CounterOp::Increment(1).to_call()).unwrap();

    // First committer wins.
    assert_eq!(t1.commit().unwrap(), CommitOutcome::Committed);
    // The second commit completes the dangerous structure against the
    // already-committed (unabortable) t1 and must be refused.
    match t2.commit() {
        Err(CoreError::Aborted {
            reason: AbortReason::SsiConflict,
            ..
        }) => {}
        other => panic!("write skew must be refused with SsiConflict, got {other:?}"),
    }

    let stats = db.stats();
    assert_eq!(stats.aborts_ssi, 1, "exactly one SSI abort");
    assert_eq!(stats.commits, 1, "only the first committer survives");
    db.verify_serializable().unwrap();
}

#[test]
fn write_skew_is_refused_single_shard() {
    write_skew_is_refused(1);
}

#[test]
fn write_skew_is_refused_across_shards() {
    write_skew_is_refused(4);
}

/// The non-dangerous half of the guard: a single rw-antidependency (one
/// snapshot reading under a concurrent writer) is *not* a dangerous
/// structure and both transactions must survive — the guard aborts only
/// on the full in+out structure, never on plain reader/writer overlap.
#[test]
fn single_antidependency_commits_on_both_sides() {
    let db = Database::with_config(config(2));
    let c = db.register_object("c", Box::new(AdtObject::new(Counter::new()))).unwrap();

    let snap = db.begin_snapshot();
    let writer = db.begin();
    writer.exec_call(&c, CounterOp::Increment(7).to_call()).unwrap();
    assert_eq!(writer.commit().unwrap(), CommitOutcome::Committed);

    // The snapshot read now carries an rw-antidependency out-edge to the
    // committed writer — harmless on its own.
    assert_eq!(
        snap.exec_call(&c, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(0)),
        "snapshot still reads its begin stamp"
    );
    assert_eq!(snap.commit().unwrap(), CommitOutcome::Committed);
    assert_eq!(db.stats().aborts_ssi, 0);
}

/// Read-your-writes: a snapshot transaction that has itself written an
/// object must fall back to the classified path for reads of that
/// object, observing its own uncommitted operations.
#[test]
fn snapshot_transactions_read_their_own_writes() {
    let db = Database::with_config(config(1));
    let c = db.register_object("c", Box::new(AdtObject::new(Counter::new()))).unwrap();

    let w = db.begin();
    w.exec_call(&c, CounterOp::Increment(10).to_call()).unwrap();
    w.commit().unwrap();

    let snap = db.begin_snapshot();
    assert_eq!(
        snap.exec_call(&c, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(10))
    );
    snap.exec_call(&c, CounterOp::Increment(5).to_call()).unwrap();
    assert_eq!(
        snap.exec_call(&c, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(15)),
        "own uncommitted write must be visible"
    );
    snap.commit().unwrap();
    db.verify_serializable().unwrap();
}

/// GC telemetry: versions stack up under a live snapshot, survive until
/// it closes, and the sweep both drains them and counts them.
#[test]
fn gc_prunes_only_after_the_oldest_snapshot_closes() {
    let db = Database::with_config(config(1));
    let c = db.register_object("c", Box::new(AdtObject::new(Counter::new()))).unwrap();

    let w = db.begin();
    w.exec_call(&c, CounterOp::Increment(1).to_call()).unwrap();
    w.commit().unwrap();

    let snap = db.begin_snapshot();
    let stamp = snap.snapshot_stamp().unwrap();
    assert_eq!(db.oldest_snapshot_stamp(), Some(stamp));
    for _ in 0..3 {
        let w = db.begin();
        w.exec_call(&c, CounterOp::Increment(1).to_call()).unwrap();
        w.commit().unwrap();
    }
    assert!(db.version_depth() > 0, "live snapshot retains versions");
    // The sweep must not prune what the snapshot still needs.
    db.prune_versions();
    assert_eq!(
        snap.exec_call(&c, CounterOp::Read.to_call()).unwrap(),
        sbcc_adt::OpResult::Value(Value::Int(1)),
        "snapshot still reads its begin stamp after a sweep"
    );
    snap.commit().unwrap();

    assert_eq!(db.oldest_snapshot_stamp(), None);
    let pruned = db.prune_versions();
    assert!(pruned > 0, "closing the snapshot frees its versions");
    assert_eq!(db.version_depth(), 0);
    assert!(db.stats().versions_pruned >= pruned);
}
