//! Async-vs-sync differential tests: the same randomized transaction
//! scripts driven through the blocking session front-end
//! ([`sbcc_core::Database`]) and through the async front-end
//! ([`sbcc_core::aio::AsyncDatabase`]) must be **behaviourally
//! identical** — same per-operation results, same blocking decisions,
//! same transaction fates, same final committed object states and same
//! kernel statistics — at one shard and at several.
//!
//! Both drivers impose the *same deterministic interleaving*: sessions
//! take turns in index order, a session runs until its next operation
//! blocks (or its script ends in a commit), and a blocked session resumes
//! the moment its turn comes around after the conflict cleared. The sync
//! driver realises this with `try_exec_call` + `settle_pending` (never
//! parking the test thread); the async driver realises it by polling each
//! session's future round-robin — a poll runs the session exactly until
//! its next suspension point, which is the same "turn". Any divergence in
//! scheduling decisions between the two front-ends therefore shows up as
//! a trace mismatch.

use proptest::prelude::*;
use sbcc_adt::{
    AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp, TableObject,
    TableOp, Value,
};
use sbcc_core::aio::AsyncDatabase;
use sbcc_core::{
    CoreError, Database, DatabaseConfig, ObjectHandle, SchedulerConfig, TxnState,
};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

const N_OBJECTS: usize = 5;

fn config(policy_choice: bool) -> SchedulerConfig {
    let policy = if policy_choice {
        sbcc_core::ConflictPolicy::Recoverability
    } else {
        sbcc_core::ConflictPolicy::CommutativityOnly
    };
    SchedulerConfig::default().with_policy(policy)
}

fn register_objects(db: &Database) -> Vec<ObjectHandle> {
    vec![
        db.register("stack", Stack::new()).into_erased(),
        db.register("set", Set::new()).into_erased(),
        db.register("counter", Counter::new()).into_erased(),
        db.register("table", TableObject::new()).into_erased(),
        db.register("page", Page::new()).into_erased(),
    ]
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..10).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

/// One scripted operation: target object, call, and whether the session
/// cooperatively yields its turn afterwards. Yields are what make the
/// interleaving interesting: without them every session would run its
/// whole script (and commit) in its first turn and no two live
/// transactions would ever conflict.
type ScriptOp = (usize, OpCall, bool);

/// Per-transaction scripts: each transaction runs its ops in order, then
/// commits.
fn arb_scripts() -> impl Strategy<Value = Vec<Vec<ScriptOp>>> {
    proptest::collection::vec(
        proptest::collection::vec(
            (0..N_OBJECTS).prop_flat_map(|o| {
                (arb_call_for(o), any::<bool>()).prop_map(move |(c, y)| (o, c, y))
            }),
            1..8,
        ),
        2..5,
    )
}

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Trace {
    /// Per transaction: the result of every completed operation, in order.
    results: Vec<Vec<String>>,
    /// Per transaction: the indices of the operations that blocked.
    blocked: Vec<BTreeSet<usize>>,
    /// Per transaction: how it ended.
    fates: Vec<String>,
    /// Final committed state of every object.
    states: Vec<String>,
    /// The comparable subset of the kernel counters.
    stats: String,
}

fn stats_line(db: &Database) -> String {
    let s = db.stats();
    format!(
        "requests={} executed={} blocks={} unblocks={} commit_deps={} commits={} pseudo={} \
         ab_dead={} ab_ccycle={} ab_victim={} ab_explicit={}",
        s.requests,
        s.operations_executed,
        s.blocks,
        s.unblocks,
        s.commit_dependencies,
        s.commits,
        s.pseudo_commits,
        s.aborts_deadlock,
        s.aborts_commit_cycle,
        s.aborts_victim,
        s.aborts_explicit
    )
}

fn committed_states(db: &Database, handles: &[ObjectHandle]) -> Vec<String> {
    handles
        .iter()
        .map(|h| {
            db.with_sharded_kernel(|k| {
                k.with_object_committed(h.id(), |o| o.debug_state())
                    .expect("registered object")
            })
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum DriverState {
    Running,
    Waiting,
    Done,
}

/// The sync reference: deterministic single-threaded round-robin over
/// blocking sessions, using the non-parking submission API.
fn run_sync(scripts: &[Vec<ScriptOp>], policy_choice: bool, shards: usize) -> Trace {
    let db = Database::with_config(
        DatabaseConfig::new(config(policy_choice)).with_shards(shards),
    );
    let handles = register_objects(&db);
    let n = scripts.len();
    let mut txns: Vec<Option<sbcc_core::Transaction>> =
        (0..n).map(|_| Some(db.begin())).collect();
    let mut state = vec![DriverState::Running; n];
    let mut next = vec![0usize; n];
    let mut results: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut blocked: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut fates: Vec<String> = vec![String::new(); n];

    // Runs session `i` until it blocks, yields or finishes; called on
    // its turn. Returns the new driver state.
    fn turn(
        i: usize,
        script: &[ScriptOp],
        txn: &mut Option<sbcc_core::Transaction>,
        handles: &[ObjectHandle],
        next: &mut usize,
        results: &mut Vec<String>,
        blocked: &mut BTreeSet<usize>,
        fate: &mut String,
    ) -> DriverState {
        let t = txn.as_ref().expect("live session");
        while *next < script.len() {
            let (object, call, yield_after) = &script[*next];
            match t.try_exec_call(&handles[*object], call.clone()) {
                Ok(outcome) => match outcome {
                    sbcc_core::RequestOutcome::Executed { result, .. } => {
                        results.push(format!("{result}"));
                        *next += 1;
                        if *yield_after {
                            // Hand the turn to the next session; resume
                            // here on the next round (still Running).
                            return DriverState::Running;
                        }
                    }
                    sbcc_core::RequestOutcome::Blocked { .. } => {
                        blocked.insert(*next);
                        return DriverState::Waiting;
                    }
                    sbcc_core::RequestOutcome::Aborted { reason } => {
                        *fate = format!("aborted: {reason}");
                        drop(txn.take());
                        return DriverState::Done;
                    }
                },
                Err(CoreError::Aborted { reason, .. }) => {
                    *fate = format!("aborted: {reason}");
                    drop(txn.take());
                    return DriverState::Done;
                }
                Err(e) => panic!("unexpected sync submission error for T{i}: {e}"),
            }
        }
        let outcome = txn.take().expect("live session").commit().unwrap();
        *fate = format!("commit pseudo={}", outcome.is_pseudo_commit());
        DriverState::Done
    }

    let mut safety = 0usize;
    loop {
        safety += 1;
        assert!(safety < 100_000, "sync driver failed to make progress");
        let mut all_done = true;
        for i in 0..n {
            match state[i] {
                DriverState::Done => continue,
                DriverState::Running => {}
                DriverState::Waiting => {
                    let t = txns[i].as_ref().expect("waiting session");
                    if db.txn_state(t.id()) == Some(TxnState::Blocked) {
                        all_done = false;
                        continue;
                    }
                    // The pending request settled (executed or aborted).
                    match t.settle_pending() {
                        Ok(result) => {
                            let yield_after = scripts[i][next[i]].2;
                            results[i].push(format!("{result}"));
                            next[i] += 1;
                            state[i] = DriverState::Running;
                            if yield_after {
                                // The settled op carries a yield: the turn
                                // ends here, exactly like the async future
                                // suspending on `yield_now` right after
                                // its resumed exec.
                                all_done = false;
                                continue;
                            }
                        }
                        Err(CoreError::Aborted { reason, .. }) => {
                            fates[i] = format!("aborted: {reason}");
                            drop(txns[i].take());
                            state[i] = DriverState::Done;
                            continue;
                        }
                        Err(e) => panic!("unexpected settle error for T{i}: {e}"),
                    }
                }
            }
            state[i] = turn(
                i,
                &scripts[i],
                &mut txns[i],
                &handles,
                &mut next[i],
                &mut results[i],
                &mut blocked[i],
                &mut fates[i],
            );
            all_done &= state[i] == DriverState::Done;
        }
        if all_done {
            break;
        }
    }

    db.verify_serializable().unwrap();
    db.verify_commit_dependencies().unwrap();
    db.check_invariants().unwrap();
    let states = committed_states(&db, &handles);
    let stats = stats_line(&db);
    Trace {
        results,
        blocked,
        fates,
        states,
        stats,
    }
}

/// The async driver: one future per transaction, polled round-robin in
/// index order. A poll advances the session until its next conflict
/// suspends it, which mirrors the sync driver's "turn" exactly.
fn run_async(scripts: &[Vec<ScriptOp>], policy_choice: bool, shards: usize) -> Trace {
    let db = AsyncDatabase::with_config(
        DatabaseConfig::new(config(policy_choice)).with_shards(shards),
    );
    let handles = register_objects(db.database());
    let n = scripts.len();

    #[derive(Default)]
    struct SharedTrace {
        results: Vec<Vec<String>>,
        fates: Vec<String>,
    }
    let shared = Rc::new(RefCell::new(SharedTrace {
        results: vec![Vec::new(); n],
        fates: vec![String::new(); n],
    }));

    // Distinguishes a cooperative-yield suspension from a blocked-in-
    // the-kernel suspension when a poll returns `Pending`.
    let yielding: Vec<Rc<std::cell::Cell<bool>>> =
        (0..n).map(|_| Rc::new(std::cell::Cell::new(false))).collect();
    let mut futures: Vec<Option<Pin<Box<dyn Future<Output = ()>>>>> = scripts
        .iter()
        .enumerate()
        .map(|(i, script)| {
            let txn = db.begin();
            let script = script.clone();
            let handles = handles.clone();
            let shared = shared.clone();
            let yielding = yielding[i].clone();
            let fut: Pin<Box<dyn Future<Output = ()>>> = Box::pin(async move {
                for (object, call, yield_after) in script {
                    match txn.exec_call(&handles[object], call).await {
                        Ok(result) => {
                            shared.borrow_mut().results[i].push(format!("{result}"));
                        }
                        Err(CoreError::Aborted { reason, .. }) => {
                            shared.borrow_mut().fates[i] = format!("aborted: {reason}");
                            return;
                        }
                        Err(e) => panic!("unexpected async exec error for T{i}: {e}"),
                    }
                    if yield_after {
                        yielding.set(true);
                        sbcc_core::aio::yield_now().await;
                        yielding.set(false);
                    }
                }
                let outcome = txn.commit().await.unwrap();
                shared.borrow_mut().fates[i] =
                    format!("commit pseudo={}", outcome.is_pseudo_commit());
            });
            Some(fut)
        })
        .collect();

    let mut blocked: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut cx = Context::from_waker(Waker::noop());
    let mut safety = 0usize;
    loop {
        safety += 1;
        assert!(safety < 100_000, "async driver failed to make progress");
        let mut all_done = true;
        for (i, slot) in futures.iter_mut().enumerate() {
            let Some(fut) = slot.as_mut() else { continue };
            all_done = false;
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => *slot = None,
                Poll::Pending => {
                    if yielding[i].get() {
                        // Cooperative yield, not a conflict.
                        continue;
                    }
                    // The session suspends exactly at a blocked operation:
                    // the next unrecorded op is the one that blocked.
                    let index = shared.borrow().results[i].len();
                    blocked[i].insert(index);
                }
            }
        }
        if all_done {
            break;
        }
    }

    db.verify_serializable().unwrap();
    db.database().verify_commit_dependencies().unwrap();
    db.check_invariants().unwrap();
    let states = committed_states(db.database(), &handles);
    let stats = stats_line(db.database());
    let shared = Rc::try_unwrap(shared)
        .ok()
        .expect("all futures dropped")
        .into_inner();
    Trace {
        results: shared.results,
        blocked,
        fates: shared.fates,
        states,
        stats,
    }
}

fn assert_equivalent(scripts: &[Vec<ScriptOp>], policy_choice: bool, shards: usize) {
    let sync_trace = run_sync(scripts, policy_choice, shards);
    let async_trace = run_async(scripts, policy_choice, shards);
    assert_eq!(
        sync_trace, async_trace,
        "sync and async executions diverged at {shards} shard(s)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: the async front-end is observationally
    /// equivalent to the sync front-end under a deterministic
    /// interleaving — per-op results, blocking decisions, fates, final
    /// committed states and kernel counters all match — both unsharded
    /// and sharded.
    #[test]
    fn async_equals_sync(
        scripts in arb_scripts(),
        policy_choice in any::<bool>(),
    ) {
        for shards in [1usize, 4] {
            assert_equivalent(&scripts, policy_choice, shards);
        }
    }
}

/// A deterministic pin of the classic conflict shape (push held, pop
/// blocked, resumed by the commit) so a differential break is debuggable
/// without shrinking a random case.
#[test]
fn pinned_conflict_scenario_matches() {
    let scripts: Vec<Vec<ScriptOp>> = vec![
        // T0: holds the stack with a push, yields its turn, increments,
        // then commits — the push stays uncommitted across one round.
        vec![
            (0, StackOp::Push(Value::Int(7)).to_call(), true),
            (2, CounterOp::Increment(1).to_call(), false),
        ],
        // T1: pop conflicts with the uncommitted push and must block.
        vec![(0, StackOp::Pop.to_call(), false)],
        // T2: pure counter traffic, never blocks.
        vec![
            (2, CounterOp::Increment(2).to_call(), true),
            (2, CounterOp::Read.to_call(), false),
        ],
    ];
    for policy_choice in [false, true] {
        for shards in [1usize, 4] {
            let t = run_sync(&scripts, policy_choice, shards);
            assert_eq!(
                t,
                run_async(&scripts, policy_choice, shards),
                "pinned scenario diverged (policy_choice={policy_choice}, {shards} shards)"
            );
            // Under recoverability the pop still blocks (pop does not
            // commute with and is not recoverable relative to push).
            assert!(
                t.blocked[1].contains(&0),
                "T1's pop must block (policy_choice={policy_choice})"
            );
            assert_eq!(t.fates.len(), 3);
        }
    }
}
