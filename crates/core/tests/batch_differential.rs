//! Differential tests for grouped (batched) submission: a kernel driven
//! with [`SchedulerKernel::request_batch`] must be **behaviourally
//! identical** to one driven by submitting the same calls one at a time
//! through [`SchedulerKernel::request`] — same per-operation results, same
//! blocking decisions, same transaction fates, same final committed object
//! states, same statistics (batch bookkeeping aside), and serializable
//! executions in both cases.
//!
//! The drivers share one skeleton: each transaction's script is cut into
//! random chunks; transactions take turns round-robin, and on its turn a
//! transaction submits its next chunk — call by call in sequential mode,
//! as one `request_batch` group in batched mode. A blocked chunk parks the
//! transaction; once the kernel unblocks the pending call, the remainder
//! of the chunk resumes on the next turn (which is exactly what
//! `Database`'s session batch does with the returned `rest`).

use proptest::prelude::*;
use sbcc_adt::{
    AdtOp, Counter, CounterOp, OpCall, Page, PageOp, Set, SetOp, Stack, StackOp, TableObject,
    TableOp, Value,
};
use sbcc_core::{
    verify_commit_order_respects_dependencies, verify_commit_order_serializable, BatchCall,
    BatchStop, ConflictPolicy, KernelEvent, KernelStats, ObjectId, RequestOutcome,
    SchedulerConfig, SchedulerKernel, TxnId, TxnState,
};
use std::collections::{HashMap, VecDeque};

const N_OBJECTS: usize = 5;

fn register_objects(kernel: &mut SchedulerKernel) -> Vec<ObjectId> {
    vec![
        kernel.register("stack", Stack::new()).unwrap(),
        kernel.register("set", Set::new()).unwrap(),
        kernel.register("counter", Counter::new()).unwrap(),
        kernel.register("table", TableObject::new()).unwrap(),
        kernel.register("page", Page::new()).unwrap(),
    ]
}

fn arb_call_for(object: usize) -> BoxedStrategy<OpCall> {
    match object {
        0 => prop_oneof![
            (0i64..5).prop_map(|v| StackOp::Push(Value::Int(v)).to_call()),
            Just(StackOp::Pop.to_call()),
            Just(StackOp::Top.to_call()),
        ]
        .boxed(),
        1 => prop_oneof![
            (0i64..4).prop_map(|v| SetOp::Insert(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Delete(Value::Int(v)).to_call()),
            (0i64..4).prop_map(|v| SetOp::Member(Value::Int(v)).to_call()),
        ]
        .boxed(),
        2 => prop_oneof![
            (1i64..5).prop_map(|v| CounterOp::Increment(v).to_call()),
            (1i64..5).prop_map(|v| CounterOp::Decrement(v).to_call()),
            Just(CounterOp::Read.to_call()),
        ]
        .boxed(),
        3 => prop_oneof![
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Insert(Value::Int(k), Value::Int(v)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Delete(Value::Int(k)).to_call()),
            (0i64..4).prop_map(|k| TableOp::Lookup(Value::Int(k)).to_call()),
            Just(TableOp::Size.to_call()),
            (0i64..4, 0i64..50)
                .prop_map(|(k, v)| TableOp::Modify(Value::Int(k), Value::Int(v)).to_call()),
        ]
        .boxed(),
        _ => prop_oneof![
            Just(PageOp::Read.to_call()),
            (0i64..10).prop_map(|v| PageOp::Write(Value::Int(v)).to_call()),
        ]
        .boxed(),
    }
}

fn arb_chunk() -> impl Strategy<Value = Vec<(usize, OpCall)>> {
    proptest::collection::vec(
        (0..N_OBJECTS).prop_flat_map(|o| arb_call_for(o).prop_map(move |c| (o, c))),
        1..6,
    )
}

/// Per-transaction scripts, pre-cut into submission chunks.
fn arb_chunked_scripts() -> impl Strategy<Value = Vec<Vec<Vec<(usize, OpCall)>>>> {
    proptest::collection::vec(proptest::collection::vec(arb_chunk(), 1..4), 2..5)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SubmissionMode {
    PerCall,
    Batched,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum DriverState {
    Running,
    Waiting,
    Done,
}

/// Drive the kernel with the given chunked scripts. Returns the trace of
/// per-operation results (keyed by transaction index and operation index),
/// the blocking decisions observed, the final fates and the kernel.
fn run_chunked(
    scripts: &[Vec<Vec<(usize, OpCall)>>],
    config: SchedulerConfig,
    mode: SubmissionMode,
) -> (
    HashMap<(usize, usize), String>,
    Vec<String>,
    Vec<TxnState>,
    SchedulerKernel,
) {
    let mut kernel = SchedulerKernel::new(config);
    let objects = register_objects(&mut kernel);

    let txns: Vec<TxnId> = scripts.iter().map(|_| kernel.begin()).collect();
    let index_of: HashMap<TxnId, usize> = txns.iter().enumerate().map(|(i, t)| (*t, i)).collect();

    // Per-transaction driver state.
    let mut chunks: Vec<VecDeque<Vec<(usize, OpCall)>>> = scripts
        .iter()
        .map(|s| s.iter().cloned().collect())
        .collect();
    let mut current: Vec<Vec<(usize, OpCall)>> = vec![Vec::new(); scripts.len()];
    let mut state = vec![DriverState::Running; scripts.len()];
    let mut next_op = vec![0usize; scripts.len()];
    let mut results: HashMap<(usize, usize), String> = HashMap::new();
    let mut decisions: Vec<String> = Vec::new();

    // Shared event pump: settles blocked transactions, records their
    // resumed results.
    macro_rules! pump_events {
        () => {
            for event in kernel.drain_events() {
                match event {
                    KernelEvent::Unblocked { txn, outcome } => {
                        let i = index_of[&txn];
                        match outcome {
                            RequestOutcome::Executed { result, .. } => {
                                results.insert((i, next_op[i]), format!("{result}"));
                                next_op[i] += 1;
                                state[i] = DriverState::Running;
                                decisions.push(format!("unblocked {i}"));
                            }
                            RequestOutcome::Aborted { reason } => {
                                state[i] = DriverState::Done;
                                decisions.push(format!("retry-aborted {i}: {reason}"));
                            }
                            RequestOutcome::Blocked { .. } => unreachable!(),
                        }
                    }
                    KernelEvent::Aborted { txn, reason } => {
                        let i = index_of[&txn];
                        state[i] = DriverState::Done;
                        decisions.push(format!("victim-aborted {i}: {reason}"));
                    }
                    KernelEvent::Committed { txn } => {
                        decisions.push(format!("cascade-committed {}", index_of[&txn]));
                    }
                }
            }
        };
    }

    let mut safety = 0usize;
    loop {
        safety += 1;
        assert!(safety < 100_000, "driver failed to make progress");
        let mut any_running = false;
        for i in 0..scripts.len() {
            if state[i] != DriverState::Running {
                continue;
            }
            any_running = true;
            if current[i].is_empty() {
                match chunks[i].pop_front() {
                    Some(chunk) => current[i] = chunk,
                    None => {
                        let outcome = kernel.commit(txns[i]).unwrap();
                        decisions.push(format!(
                            "commit {i}: pseudo={}",
                            outcome.is_pseudo_commit()
                        ));
                        state[i] = DriverState::Done;
                        pump_events!();
                        continue;
                    }
                }
            }
            match mode {
                SubmissionMode::PerCall => {
                    // Submit the chunk call by call until it is exhausted
                    // or the transaction blocks/aborts.
                    while !current[i].is_empty() {
                        let (object, call) = current[i].remove(0);
                        let outcome =
                            kernel.request(txns[i], objects[object], call).unwrap();
                        pump_events!();
                        match outcome {
                            RequestOutcome::Executed { result, .. } => {
                                results.insert((i, next_op[i]), format!("{result}"));
                                next_op[i] += 1;
                            }
                            RequestOutcome::Blocked { waiting_on } => {
                                decisions.push(format!("blocked {i} on {waiting_on:?}"));
                                state[i] = DriverState::Waiting;
                                break;
                            }
                            RequestOutcome::Aborted { reason } => {
                                decisions.push(format!("aborted {i}: {reason}"));
                                state[i] = DriverState::Done;
                                current[i].clear();
                                break;
                            }
                        }
                    }
                }
                SubmissionMode::Batched => {
                    let calls: Vec<BatchCall> = current[i]
                        .drain(..)
                        .map(|(object, call)| BatchCall::new(objects[object], call))
                        .collect();
                    let outcome = kernel.request_batch(txns[i], calls).unwrap();
                    pump_events!();
                    for result in &outcome.executed {
                        results.insert((i, next_op[i]), format!("{result}"));
                        next_op[i] += 1;
                    }
                    match outcome.stopped {
                        None => {}
                        Some(BatchStop::Blocked {
                            waiting_on, rest, ..
                        }) => {
                            decisions.push(format!("blocked {i} on {waiting_on:?}"));
                            state[i] = DriverState::Waiting;
                            current[i] = rest
                                .into_iter()
                                .map(|bc| {
                                    let object = objects
                                        .iter()
                                        .position(|o| *o == bc.object)
                                        .expect("known object");
                                    (object, bc.call)
                                })
                                .collect();
                        }
                        Some(BatchStop::Aborted { reason, .. }) => {
                            decisions.push(format!("aborted {i}: {reason}"));
                            state[i] = DriverState::Done;
                        }
                    }
                }
            }
        }
        if !any_running {
            break;
        }
    }

    let fates: Vec<TxnState> = txns
        .iter()
        .map(|t| kernel.txn_state(*t).expect("transaction recorded"))
        .collect();
    (results, decisions, fates, kernel)
}

/// Strip the batch bookkeeping counters (the only counters allowed to
/// differ between the two submission modes).
fn comparable(stats: &KernelStats) -> KernelStats {
    KernelStats {
        batches: 0,
        batched_calls: 0,
        ..stats.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: batched submission is observationally
    /// equivalent to per-call submission on randomized multi-object
    /// scripts — results, decisions, fates, counters and final committed
    /// states all match, and both executions pass the serializability and
    /// commit-dependency checkers.
    #[test]
    fn batched_equals_sequential(
        scripts in arb_chunked_scripts(),
        fair in any::<bool>(),
        policy_choice in any::<bool>(),
    ) {
        let policy = if policy_choice {
            ConflictPolicy::Recoverability
        } else {
            ConflictPolicy::CommutativityOnly
        };
        let config = SchedulerConfig::default()
            .with_policy(policy)
            .with_fair_scheduling(fair);

        let (r_seq, d_seq, f_seq, mut k_seq) =
            run_chunked(&scripts, config.clone(), SubmissionMode::PerCall);
        let (r_bat, d_bat, f_bat, mut k_bat) =
            run_chunked(&scripts, config, SubmissionMode::Batched);

        prop_assert_eq!(r_seq, r_bat, "per-operation results diverge");
        prop_assert_eq!(d_seq, d_bat, "scheduling decisions diverge");
        prop_assert_eq!(f_seq, f_bat, "transaction fates diverge");
        prop_assert_eq!(
            comparable(k_seq.stats()),
            comparable(k_bat.stats()),
            "kernel statistics diverge"
        );
        prop_assert_eq!(
            k_seq.cycle_checks(),
            k_bat.cycle_checks(),
            "cycle-check counts diverge"
        );
        for id in k_seq.object_ids() {
            let a = k_seq.object_committed_state(id).unwrap();
            let b = k_bat.object_committed_state(id).unwrap();
            prop_assert!(
                a.state_eq(b),
                "final committed state of {} differs: {} vs {}",
                id,
                a.debug_state(),
                b.debug_state()
            );
        }
        for kernel in [&mut k_seq, &mut k_bat] {
            kernel.check_invariants().map_err(TestCaseError::fail)?;
            verify_commit_order_serializable(kernel).map_err(TestCaseError::fail)?;
            verify_commit_order_respects_dependencies(kernel).map_err(TestCaseError::fail)?;
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic partial-admission scenarios
// ---------------------------------------------------------------------

fn kernel() -> SchedulerKernel {
    SchedulerKernel::new(SchedulerConfig::default())
}

#[test]
fn batch_executes_across_objects_in_one_submission() {
    let mut k = kernel();
    let s = k.register("stack", Stack::new()).unwrap();
    let c = k.register("counter", Counter::new()).unwrap();
    let t = k.begin();
    let outcome = k
        .request_batch(
            t,
            vec![
                BatchCall::new(s, StackOp::Push(Value::Int(1)).to_call()),
                BatchCall::new(c, CounterOp::Increment(2).to_call()),
                BatchCall::new(s, StackOp::Top.to_call()),
                BatchCall::new(c, CounterOp::Read.to_call()),
            ],
        )
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.executed.len(), 4);
    assert_eq!(outcome.executed[2], sbcc_adt::OpResult::Value(Value::Int(1)));
    assert_eq!(outcome.executed[3], sbcc_adt::OpResult::Value(Value::Int(2)));
    assert!(outcome.commit_deps.is_empty());
    assert_eq!(k.stats().batches, 1);
    assert_eq!(k.stats().batched_calls, 4);
    assert_eq!(k.stats().requests, 4);
    assert!(k.commit(t).unwrap().is_full_commit());
}

#[test]
fn blocked_batch_reports_prefix_terminator_and_rest() {
    let mut k = kernel();
    let s = k.register("stack", Stack::new()).unwrap();
    let c = k.register("counter", Counter::new()).unwrap();
    let holder = k.begin();
    assert!(k
        .request(holder, s, StackOp::Push(Value::Int(7)).to_call())
        .unwrap()
        .is_executed());

    let t = k.begin();
    let outcome = k
        .request_batch(
            t,
            vec![
                BatchCall::new(c, CounterOp::Increment(1).to_call()),
                BatchCall::new(s, StackOp::Pop.to_call()), // conflicts with the push
                BatchCall::new(c, CounterOp::Increment(1).to_call()),
            ],
        )
        .unwrap();
    // Partial admission: the increment executed, the pop blocked, the
    // suffix came back unprocessed.
    assert_eq!(outcome.executed, vec![sbcc_adt::OpResult::Ok]);
    match outcome.stopped {
        Some(BatchStop::Blocked {
            index,
            ref waiting_on,
            ref rest,
        }) => {
            assert_eq!(index, 1);
            assert_eq!(waiting_on, &vec![holder]);
            assert_eq!(rest.len(), 1);
            assert_eq!(rest[0].object, c);
        }
        ref other => panic!("expected a blocked terminator, got {other:?}"),
    }
    assert_eq!(k.txn_state(t), Some(TxnState::Blocked));
    assert_eq!(k.stats().blocks, 1);

    // The holder commits; the pending pop is retried and executes.
    assert!(k.commit(holder).unwrap().is_full_commit());
    let events = k.drain_events();
    assert!(events.iter().any(|e| matches!(
        e,
        KernelEvent::Unblocked { txn, outcome: RequestOutcome::Executed { .. } } if *txn == t
    )));
    // The caller then resubmits the rest (what `Database` does).
    let resumed = k
        .request_batch(t, vec![BatchCall::new(c, CounterOp::Increment(1).to_call())])
        .unwrap();
    assert!(resumed.is_complete());
    assert!(k.commit(t).unwrap().is_full_commit());
    let _ = k.drain_events();
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn batch_union_of_commit_deps_is_deduplicated() {
    let mut k = kernel();
    let s = k.register("stack", Stack::new()).unwrap();
    let holder = k.begin();
    assert!(k
        .request(holder, s, StackOp::Push(Value::Int(9)).to_call())
        .unwrap()
        .is_executed());
    let t = k.begin();
    let outcome = k
        .request_batch(
            t,
            vec![
                BatchCall::new(s, StackOp::Push(Value::Int(1)).to_call()),
                BatchCall::new(s, StackOp::Push(Value::Int(2)).to_call()),
                BatchCall::new(s, StackOp::Push(Value::Int(3)).to_call()),
            ],
        )
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(
        outcome.commit_deps,
        vec![holder],
        "three recoverable pushes against one holder collapse to one dependency"
    );
    // The stats still count one dependency per admitted recoverable call.
    assert_eq!(k.stats().commit_dependencies, 3);
    assert_eq!(k.commit_dependencies_of(t), vec![holder]);
    assert!(k.commit(t).unwrap().is_pseudo_commit());
    assert!(k.commit(holder).unwrap().is_full_commit());
    let _ = k.drain_events();
    assert_eq!(k.txn_state(t), Some(TxnState::Committed));
}

#[test]
fn aborted_batch_reports_void_prefix_results_and_the_rest() {
    // A commit-dependency cycle mid-batch: T2's batch call would make the
    // dependency relation cyclic, so T2 (the requester) is aborted and the
    // executed prefix is undone with it.
    let mut k = kernel();
    let s1 = k.register("s1", Stack::new()).unwrap();
    let s2 = k.register("s2", Stack::new()).unwrap();
    let t1 = k.begin();
    let t2 = k.begin();
    // T1 depends on T2 (recoverable push behind T2's push on s1)...
    assert!(k
        .request(t2, s1, StackOp::Push(Value::Int(1)).to_call())
        .unwrap()
        .is_executed());
    assert!(k
        .request(t1, s1, StackOp::Push(Value::Int(2)).to_call())
        .unwrap()
        .is_executed());
    assert!(k
        .request(t1, s2, StackOp::Push(Value::Int(3)).to_call())
        .unwrap()
        .is_executed());
    // ... so T2's batch — an unrelated counter-free push prefix plus a push
    // on s2 that would make T2 depend on T1 — closes the cycle at index 1.
    let c = k.register("c", Counter::new()).unwrap();
    let outcome = k
        .request_batch(
            t2,
            vec![
                BatchCall::new(c, CounterOp::Increment(1).to_call()),
                BatchCall::new(s2, StackOp::Push(Value::Int(4)).to_call()),
                BatchCall::new(c, CounterOp::Increment(1).to_call()),
            ],
        )
        .unwrap();
    // The prefix result is reported (per-call submission would already
    // have returned it) but the abort has undone its effects.
    assert_eq!(outcome.executed, vec![sbcc_adt::OpResult::Ok]);
    match outcome.stopped {
        Some(BatchStop::Aborted { index, ref rest, .. }) => {
            assert_eq!(index, 1);
            assert_eq!(rest.len(), 1);
        }
        ref other => panic!("expected an aborted terminator, got {other:?}"),
    }
    assert_eq!(k.txn_state(t2), Some(TxnState::Aborted));
    // T1 survives (no cascading aborts) and commits.
    let _ = k.drain_events();
    assert!(k.commit(t1).unwrap().is_full_commit());
    k.check_invariants().unwrap();
    verify_commit_order_serializable(&k).unwrap();
}

#[test]
fn empty_and_invalid_batches_are_rejected_cleanly() {
    let mut k = kernel();
    let s = k.register("s", Stack::new()).unwrap();
    let t = k.begin();
    // Empty batch: trivially complete.
    let outcome = k.request_batch(t, Vec::new()).unwrap();
    assert!(outcome.is_complete());
    assert!(outcome.executed.is_empty());
    // Unknown object: rejected before anything executes.
    let err = k.request_batch(
        t,
        vec![
            BatchCall::new(s, StackOp::Push(Value::Int(1)).to_call()),
            BatchCall::new(ObjectId(99), StackOp::Pop.to_call()),
        ],
    );
    assert!(err.is_err());
    assert_eq!(k.stats().operations_executed, 0, "fail-fast: nothing ran");
    // Terminated transaction: rejected.
    k.abort(t).unwrap();
    assert!(k
        .request_batch(t, vec![BatchCall::new(s, StackOp::Pop.to_call())])
        .is_err());
}

