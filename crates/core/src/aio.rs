//! The asynchronous session front-end: futures instead of parked threads,
//! so **one runtime thread multiplexes thousands of in-flight
//! transactions**.
//!
//! # Why this exists
//!
//! The paper's scheduler admits far more interleavings than
//! commutativity-based locking, but the sync front-end
//! ([`crate::Database`]) parks one OS thread per blocked transaction, so
//! the concurrency the semantics buy is capped by thread count. This
//! module removes that cap: an [`AsyncTransaction`] operation that
//! conflicts with uncommitted work *suspends its future* instead of the
//! thread, and the executor runs other sessions — including the very
//! holder whose commit will unblock it. (With the sync API, a single
//! thread driving two conflicting sessions would deadlock itself; with
//! the async API it cannot.)
//!
//! # How it works
//!
//! There is **no new kernel, batching or event-delivery code** here. Both
//! front-ends drive the same [`Database`] internals through the same
//! per-transaction rendezvous: a blocked request registers a private
//! waiter slot, and whichever thread drains the kernel event that settles
//! the transaction fills exactly that slot. The slot is two-variant — a
//! condvar for a parked thread, a [`std::task::Waker`] for a suspended
//! future — and the fill path serves both, so every scheduling decision,
//! admission, blocking and wakeup is *identical* between the two APIs
//! (pinned by the async-vs-sync differential proptest suite in
//! `crates/core/tests/async_differential.rs`).
//!
//! # Executor-agnostic
//!
//! The futures returned here are plain [`std::future::Future`]s with
//! thread-safe wakers: any executor can drive them, including multiple
//! sync threads delivering wakeups from outside the runtime. No tokio (or
//! any other runtime) dependency is taken; this module ships a minimal
//! current-thread [`block_on`] and a [`LocalExecutor`] that are entirely
//! sufficient to multiplex thousands of sessions on one thread (see
//! `examples/async_front_end.rs` for 10 000 concurrent transactions).
//!
//! [`AsyncTransaction`] is intentionally `!Send` (it is an [`Rc`]-shared
//! handle): a session is driven by one thread, exactly like the sync
//! guard. The [`Database`] underneath is shared freely — sync and async
//! sessions interleave on the same objects (see
//! [`AsyncDatabase::from_database`]).
//!
//! # Migration from the sync session API
//!
//! | sync session ([`crate::db`])         | async session (this module)                     |
//! |--------------------------------------|-------------------------------------------------|
//! | `Database::new(cfg)`                 | `AsyncDatabase::new(cfg)`                       |
//! | `db.register(name, adt)`             | `db.register(name, adt)` (unchanged)            |
//! | `db.begin() -> Transaction`          | `db.begin() -> AsyncTransaction`                |
//! | `txn.exec(&h, op)?`                  | `txn.exec(&h, op).await?`                       |
//! | `txn.exec_call(&h, call)?`           | `txn.exec_call(&h, call).await?`                |
//! | `txn.try_exec_call(&h, call)?`       | `txn.try_exec_call(&h, call)?` (still sync)     |
//! | `txn.settle_pending()?`              | `txn.settle_pending().await?`                   |
//! | `txn.batch().op(…).submit()?`        | `txn.batch().op(…).submit().await?`             |
//! | `txn.commit()?` / `txn.abort()?`     | `txn.commit().await?` / `txn.abort().await?`    |
//! | `db.run(\|txn\| …)?`                 | `db.run(\|txn\| async move { … }).await?`       |
//! | blocked ⇒ the OS thread parks        | blocked ⇒ the future suspends                   |
//! | dropping the guard aborts            | dropping the last handle aborts                 |
//!
//! Two deliberate differences:
//!
//! * [`AsyncTransaction`] is a cheaply **cloneable handle** (the clones
//!   share one session), because `run` moves it into the body's `async
//!   move` block while the runner keeps a clone for the commit. All
//!   clones name the same transaction; the auto-abort fires when the last
//!   clone drops without a commit/abort.
//! * **Cancellation aborts.** Dropping an `exec`/`submit`/`settle`
//!   future *before it resolves* while the operation is blocked inside
//!   the kernel aborts the transaction (there is no one left to claim the
//!   outcome, and a forever-blocked transaction would stall every
//!   conflicting session). Transactions whose futures you may cancel
//!   should be wrapped in [`AsyncDatabase::run`], which treats the abort
//!   like any other scheduler abort.
//!
//! # Example
//!
//! ```
//! use sbcc_core::aio::{block_on, AsyncDatabase};
//! use sbcc_core::SchedulerConfig;
//! use sbcc_adt::{Counter, CounterOp, OpResult, Stack, StackOp, Value};
//!
//! let db = AsyncDatabase::new(SchedulerConfig::default());
//! let jobs = db.register("jobs", Stack::new());
//! let hits = db.register("hits", Counter::new());
//!
//! let top = block_on(async {
//!     // A grouped submission: both operations admitted in one kernel
//!     // pass, exactly like the sync `Batch`.
//!     let txn = db.begin();
//!     let results = txn
//!         .batch()
//!         .op(&jobs, StackOp::Push(Value::Int(42)))
//!         .op(&hits, CounterOp::Increment(1))
//!         .submit()
//!         .await?;
//!     assert_eq!(results, vec![OpResult::Ok, OpResult::Ok]);
//!     txn.commit().await?;
//!
//!     // The closure runner retries on scheduler aborts and commits on Ok.
//!     db.run(|txn| {
//!         let jobs = jobs.clone();
//!         async move { txn.exec(&jobs, StackOp::Top).await }
//!     })
//!     .await
//! })
//! .unwrap();
//! assert_eq!(top, OpResult::Value(Value::Int(42)));
//! ```

use crate::db::{
    BatchCalls, BatchPass, BatchRun, Database, Handle, ObjectHandle, SessionCore, WaiterSlot,
};
use crate::errors::CoreError;
use crate::events::{CommitOutcome, RequestOutcome};
use crate::policy::SchedulerConfig;
use crate::shard::DatabaseConfig;
use crate::stats::{KernelStats, StatsSnapshot};
use crate::txn::{TxnId, TxnState};
use crate::chaos::sync::{Condvar, Mutex};
use sbcc_adt::{AdtOp, AdtSpec, OpCall, OpResult, SemanticObject};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

// ---------------------------------------------------------------------
// AsyncDatabase
// ---------------------------------------------------------------------

/// The async counterpart of [`Database`]: same kernel, same objects, same
/// scheduling decisions — sessions are futures instead of thread-blocking
/// guards. See the [module documentation](self) for the model and the
/// migration table.
///
/// Cheaply cloneable and shareable across threads (each clone is a handle
/// to the same database). The [`AsyncTransaction`]s it hands out are
/// single-threaded (`!Send`).
#[derive(Clone, Debug)]
pub struct AsyncDatabase {
    db: Database,
}

impl AsyncDatabase {
    /// Create an async database with the given scheduler configuration
    /// (shard count from `SBCC_SHARDS`, like [`Database::new`]).
    pub fn new(config: SchedulerConfig) -> Self {
        AsyncDatabase {
            db: Database::new(config),
        }
    }

    /// Create an async database with an explicit [`DatabaseConfig`].
    pub fn with_config(config: DatabaseConfig) -> Self {
        AsyncDatabase {
            db: Database::with_config(config),
        }
    }

    /// Wrap an existing [`Database`]: async sessions begun here interleave
    /// with sync sessions begun on `db` against the same objects — the
    /// kernel (and the differential test suite) cannot tell them apart.
    pub fn from_database(db: Database) -> Self {
        AsyncDatabase { db }
    }

    /// The underlying sync-API database (registration, inspection and
    /// sync sessions all remain available).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Register a typed atomic data type instance (see
    /// [`Database::register`]).
    ///
    /// # Panics
    ///
    /// Panics if an object with the same name is already registered.
    pub fn register<A: AdtSpec>(&self, name: impl Into<String>, adt: A) -> Handle<A> {
        self.db.register(name, adt)
    }

    /// Register a typed atomic data type instance, failing on duplicate
    /// names.
    pub fn try_register<A: AdtSpec>(
        &self,
        name: impl Into<String>,
        adt: A,
    ) -> Result<Handle<A>, CoreError> {
        self.db.try_register(name, adt)
    }

    /// Register an erased semantic object.
    pub fn register_object(
        &self,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
    ) -> Result<ObjectHandle, CoreError> {
        self.db.register_object(name, object)
    }

    /// Begin an async transaction session.
    ///
    /// Beginning never blocks, so this is an ordinary method; every
    /// operation on the returned session is a future. The transaction
    /// aborts when the last clone of the handle is dropped without an
    /// explicit [`AsyncTransaction::commit`] / [`AsyncTransaction::abort`].
    pub fn begin(&self) -> AsyncTransaction {
        AsyncTransaction {
            inner: Rc::new(TxnInner {
                core: self.db.begin_session(),
                db: self.db.clone(),
                finished: Cell::new(false),
                waiting: Cell::new(false),
            }),
        }
    }

    /// Begin an async **snapshot** transaction session: read-only
    /// operations observe the newest committed version at or below the
    /// session's begin stamp without classification or blocking, guarded
    /// by SSI rw-antidependency tracking — the async counterpart of
    /// [`Database::begin_snapshot`], which documents the semantics.
    pub fn begin_snapshot(&self) -> AsyncTransaction {
        AsyncTransaction {
            inner: Rc::new(TxnInner {
                core: self.db.begin_snapshot_session(),
                db: self.db.clone(),
                finished: Cell::new(false),
                waiting: Cell::new(false),
            }),
        }
    }

    /// Run a transaction body, committing on success and transparently
    /// **retrying from scratch** when the scheduler aborts the transaction
    /// (deadlock cycle, commit-dependency cycle, or victim selection) —
    /// the async analogue of [`Database::run`], which documents the exact
    /// retry classes both front-ends share in one table (see *Retry
    /// classes* there; this runner adds no class of its own).
    ///
    /// The closure receives a fresh [`AsyncTransaction`] per attempt and
    /// should move it into an `async move` block; the runner keeps a
    /// clone and commits once the body returns `Ok` (the body must not
    /// commit or abort itself). A cancellation abort (a dropped operation
    /// future, see the [module docs](self)) surfaces as the
    /// `InvalidState { state: Aborted }` row of that table and is retried
    /// like any other scheduler abort. The same
    /// [`SchedulerConfig::max_retries`] budget applies: once exhausted the
    /// runner returns [`CoreError::RetriesExhausted`] instead of looping.
    ///
    /// ```
    /// use sbcc_core::aio::{block_on, AsyncDatabase};
    /// use sbcc_core::SchedulerConfig;
    /// use sbcc_adt::{Counter, CounterOp, OpResult, Value};
    ///
    /// let db = AsyncDatabase::new(SchedulerConfig::default());
    /// let hits = db.register("hits", Counter::new());
    /// let result = block_on(db.run(|txn| {
    ///     let hits = hits.clone();
    ///     async move { txn.exec(&hits, CounterOp::Increment(1)).await }
    /// }))
    /// .unwrap();
    /// assert_eq!(result, OpResult::Ok);
    /// assert_eq!(db.stats().commits, 1);
    /// ```
    pub async fn run<R, Fut>(
        &self,
        mut body: impl FnMut(AsyncTransaction) -> Fut,
    ) -> Result<R, CoreError>
    where
        Fut: Future<Output = Result<R, CoreError>>,
    {
        let max_retries = self.db.max_retries();
        let mut attempts: usize = 0;
        loop {
            attempts += 1;
            let txn = self.begin();
            let keeper = txn.clone();
            let id = keeper.id();
            let err = match body(txn).await {
                Ok(value) => match keeper.commit().await {
                    Ok(_) => return Ok(value),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            // The commit-side `InvalidState { state: Aborted }` is a cycle
            // victim picked between the body's last operation and the
            // commit. The body-side one is the same race as in
            // `Database::run` — a victim abort observed as a terminated
            // state before its abort event (with the reason) reaches the
            // session layer — and also covers cancellation aborts of this
            // attempt's own operation futures.
            let retryable = err.is_scheduler_abort_of(id)
                || matches!(
                    err,
                    CoreError::InvalidState {
                        txn: t,
                        state: TxnState::Aborted,
                        ..
                    } if t == id
                );
            if !retryable {
                return Err(err);
            }
            if attempts > max_retries {
                return Err(CoreError::RetriesExhausted { txn: id, attempts });
            }
        }
    }

    /// The current state of a transaction.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.db.txn_state(txn)
    }

    /// The commit outcome of a (pseudo-)committed transaction (see
    /// [`Database::outcome_of`]).
    pub fn outcome_of(&self, txn: TxnId) -> Option<CommitOutcome> {
        self.db.outcome_of(txn)
    }

    /// Number of scheduler-kernel shards behind this database.
    pub fn shard_count(&self) -> usize {
        self.db.shard_count()
    }

    /// Snapshot of the aggregate kernel counters.
    pub fn stats(&self) -> KernelStats {
        self.db.stats()
    }

    /// The aggregate counters plus the per-shard breakdown.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.db.stats_snapshot()
    }

    /// Run the commit-order serializability checker on every shard.
    pub fn verify_serializable(&self) -> Result<(), String> {
        self.db.verify_serializable()
    }

    /// Check kernel invariants on every shard.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.db.check_invariants()
    }
}

// ---------------------------------------------------------------------
// AsyncTransaction
// ---------------------------------------------------------------------

/// The session state behind every clone of one [`AsyncTransaction`].
#[derive(Debug)]
struct TxnInner {
    db: Database,
    core: SessionCore,
    finished: Cell<bool>,
    /// `true` while a [`Settled`] future of this session holds the
    /// registered waiter slot. A session has **one** waiter slot, so a
    /// second clone trying to await concurrently (e.g. two
    /// `settle_pending` calls racing) is rejected instead of silently
    /// overwriting the first waiter's slot — which would strand the first
    /// future forever.
    waiting: Cell<bool>,
}

impl Drop for TxnInner {
    fn drop(&mut self) {
        if !self.finished.get() {
            // Best effort, exactly like the sync guard: the transaction
            // may already be terminated (scheduler abort, pseudo-commit).
            let _ = self.db.abort_raw(self.core.id());
        }
    }
}

/// An async transaction session: the futures-based counterpart of
/// [`crate::Transaction`].
///
/// Obtained from [`AsyncDatabase::begin`] (or per attempt inside
/// [`AsyncDatabase::run`]). Operations whose requests conflict with
/// uncommitted operations of other transactions return futures that stay
/// pending until the conflict clears — the driving thread is never
/// parked, so one executor thread can hold thousands of sessions
/// mid-conflict at once.
///
/// Cloning is cheap and yields another handle to the *same* session
/// (needed so [`AsyncDatabase::run`] can move the handle into the body's
/// future while retaining one for the commit). The transaction aborts
/// when the last clone drops without [`AsyncTransaction::commit`] /
/// [`AsyncTransaction::abort`]. The handle is deliberately `!Send`: a
/// session is driven by one thread, like the sync guard (the `Database`
/// and its wakeups remain fully thread-safe underneath).
#[derive(Clone, Debug)]
pub struct AsyncTransaction {
    inner: Rc<TxnInner>,
}

impl AsyncTransaction {
    /// The raw transaction id (for diagnostics and the inspection APIs on
    /// [`AsyncDatabase`]).
    pub fn id(&self) -> TxnId {
        self.inner.core.id()
    }

    /// The transaction's current scheduler state.
    pub fn state(&self) -> Option<TxnState> {
        self.inner.db.txn_state(self.id())
    }

    /// The snapshot begin stamp for sessions opened through
    /// [`AsyncDatabase::begin_snapshot`], `None` for ordinary sessions.
    pub fn snapshot_stamp(&self) -> Option<u64> {
        self.inner.core.snapshot()
    }

    /// Execute a typed operation; the future resolves once the operation
    /// has executed (suspending while it conflicts with uncommitted
    /// operations of other transactions).
    pub async fn exec<A: AdtSpec>(
        &self,
        object: &Handle<A>,
        op: A::Op,
    ) -> Result<OpResult, CoreError> {
        self.exec_call(object, op.to_call()).await
    }

    /// Execute an erased operation call, suspending while in conflict.
    ///
    /// Typed [`Handle`]s coerce to [`ObjectHandle`], so this accepts both.
    pub async fn exec_call(
        &self,
        object: &ObjectHandle,
        call: OpCall,
    ) -> Result<OpResult, CoreError> {
        let inner = &self.inner;
        let id = inner.core.id();
        let outcome = inner.db.try_exec_call_raw(&inner.core, object.loc(), call)?;
        let outcome = if outcome.is_blocked() {
            self.settled()?.await
        } else {
            outcome
        };
        inner.core.set_pending(false);
        outcome.into_result(id)
    }

    /// Submit an operation without suspending: returns the raw kernel
    /// outcome, exactly like [`crate::Transaction::try_exec_call`]. On
    /// [`RequestOutcome::Blocked`] the request stays pending inside the
    /// kernel; claim its eventual outcome with
    /// [`AsyncTransaction::settle_pending`].
    pub fn try_exec_call(
        &self,
        object: &ObjectHandle,
        call: OpCall,
    ) -> Result<RequestOutcome, CoreError> {
        self.inner
            .db
            .try_exec_call_raw(&self.inner.core, object.loc(), call)
    }

    /// Claim the outcome of a previously blocked submission
    /// ([`AsyncTransaction::try_exec_call`] returning
    /// [`RequestOutcome::Blocked`]), suspending until it settles. The
    /// async counterpart of [`crate::Transaction::settle_pending`]: a
    /// result that settled while nothing awaited it (kept in the
    /// database's `delivered` map) is claimed without suspending at all.
    pub async fn settle_pending(&self) -> Result<OpResult, CoreError> {
        let inner = &self.inner;
        let id = inner.core.id();
        if !inner.core.pending() {
            return Err(CoreError::NoPendingOperation(id));
        }
        let outcome = self.settled()?.await;
        inner.core.set_pending(false);
        outcome.into_result(id)
    }

    /// Start building a grouped submission. See [`AsyncBatch`] (and
    /// [`crate::Batch`] for the shared partial-admission semantics).
    pub fn batch(&self) -> AsyncBatch {
        AsyncBatch {
            txn: self.clone(),
            group: BatchCalls::default(),
        }
    }

    /// Commit the transaction (actual or pseudo-commit, per the
    /// protocol). Commits never suspend — a transaction whose commit
    /// dependencies are still live **pseudo-commits** and the kernel
    /// finishes the commit later — so this future resolves on first poll;
    /// it is a future for API symmetry only.
    ///
    /// On success no clone of the handle will abort on drop. A failed
    /// commit (e.g. a pending blocked request) leaves the auto-abort
    /// armed, exactly like the sync guard.
    pub async fn commit(self) -> Result<CommitOutcome, CoreError> {
        let result = self.inner.db.commit_raw(self.id());
        if result.is_ok() {
            self.inner.finished.set(true);
        }
        result
    }

    /// Explicitly abort the transaction. Never suspends; a future for API
    /// symmetry only.
    pub async fn abort(self) -> Result<(), CoreError> {
        self.inner.finished.set(true);
        self.inner.db.abort_raw(self.id())
    }

    /// A future resolving to the settled outcome of this session's
    /// pending request: either claims an already-delivered outcome or
    /// registers this session's waiter slot **now** (before first poll),
    /// so a wakeup can never slip between submission and registration.
    ///
    /// Errors when another clone of this session is already awaiting the
    /// outcome: a session has exactly one waiter slot, and a second
    /// registration would orphan the first waiter.
    fn settled(&self) -> Result<Settled, CoreError> {
        if self.inner.waiting.get() {
            return Err(CoreError::InvalidState {
                txn: self.id(),
                state: TxnState::Blocked,
                action: "await an outcome another clone is already awaiting",
            });
        }
        self.inner.waiting.set(true);
        Ok(match self.inner.db.claim_or_wait(self.id()) {
            Ok(outcome) => Settled {
                inner: self.inner.clone(),
                slot: None,
                ready: Some(outcome),
                completed: false,
            },
            Err(slot) => Settled {
                inner: self.inner.clone(),
                slot: Some(slot),
                ready: None,
                completed: false,
            },
        })
    }
}

/// Future for the settled outcome of a session's pending request.
///
/// **Cancellation aborts**: dropping this future before it resolves
/// leaves nobody to claim the outcome of a request that may stay blocked
/// inside a shard kernel indefinitely — so the drop glue unregisters the
/// waiter slot and aborts the transaction, which also unblocks every
/// session waiting *on* this transaction. See the [module docs](self).
struct Settled {
    inner: Rc<TxnInner>,
    slot: Option<Arc<WaiterSlot>>,
    ready: Option<RequestOutcome>,
    completed: bool,
}

impl Future for Settled {
    type Output = RequestOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<RequestOutcome> {
        let this = self.get_mut();
        if let Some(outcome) = this.ready.take() {
            this.completed = true;
            this.inner.waiting.set(false);
            return Poll::Ready(outcome);
        }
        let slot = this.slot.as_ref().expect("Settled polled after completion");
        match slot.poll_outcome(cx) {
            Poll::Ready(outcome) => {
                this.completed = true;
                this.inner.waiting.set(false);
                this.slot = None;
                Poll::Ready(outcome)
            }
            Poll::Pending => Poll::Pending,
        }
    }
}

impl Drop for Settled {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        self.inner.waiting.set(false);
        // Cancelled mid-wait. Unregister the slot first so the abort's own
        // event delivery does not fill a waiter nobody owns anymore; an
        // outcome that raced in is deliberately discarded — the caller
        // abandoned it.
        if let Some(slot) = self.slot.take() {
            let _ = self.inner.db.cancel_wait(self.inner.core.id(), &slot);
        }
        self.inner.core.set_pending(false);
        if !self.inner.finished.get() {
            self.inner.finished.set(true);
            let _ = self.inner.db.abort_raw(self.inner.core.id());
        }
    }
}

// ---------------------------------------------------------------------
// AsyncBatch
// ---------------------------------------------------------------------

/// Builder for an async grouped submission: the futures counterpart of
/// [`crate::Batch`], with identical partial-admission semantics (the two
/// share the batch state machine; only the waiting differs). Calls
/// execute in the order they were added; [`AsyncBatch::submit`] resolves
/// once every call has executed, suspending as often as needed.
#[derive(Debug)]
pub struct AsyncBatch {
    txn: AsyncTransaction,
    /// The call/location bookkeeping shared with the sync [`crate::Batch`].
    group: BatchCalls,
}

impl AsyncBatch {
    /// Append a typed operation (chaining form).
    pub fn op<A: AdtSpec>(mut self, object: &Handle<A>, op: A::Op) -> Self {
        self.add_op(object, op);
        self
    }

    /// Append an erased call (chaining form).
    pub fn call(mut self, object: &ObjectHandle, call: OpCall) -> Self {
        self.add_call(object, call);
        self
    }

    /// Append a typed operation (mutating form, for loops).
    pub fn add_op<A: AdtSpec>(&mut self, object: &Handle<A>, op: A::Op) {
        self.add_call(object, op.to_call());
    }

    /// Append an erased call (mutating form, for loops).
    pub fn add_call(&mut self, object: &ObjectHandle, call: OpCall) {
        self.group.push(object, call);
    }

    /// Declare that this batch only *reads* `object` (chaining form); see
    /// [`crate::Batch::declare_read`] for the group-admission contract —
    /// the async builder shares it verbatim.
    pub fn declare_read(mut self, object: &ObjectHandle) -> Self {
        self.add_declare_read(object);
        self
    }

    /// Declare that this batch may *write* `object` (chaining form; a
    /// write declaration covers reads too).
    pub fn declare_write(mut self, object: &ObjectHandle) -> Self {
        self.add_declare_write(object);
        self
    }

    /// Declare a read access (mutating form, for loops).
    pub fn add_declare_read(&mut self, object: &ObjectHandle) {
        self.group.declare_read(object);
    }

    /// Declare a write access (mutating form, for loops).
    pub fn add_declare_write(&mut self, object: &ObjectHandle) {
        self.group.declare_write(object);
    }

    /// Number of calls queued so far.
    pub fn len(&self) -> usize {
        self.group.len()
    }

    /// `true` when no calls are queued.
    pub fn is_empty(&self) -> bool {
        self.group.is_empty()
    }

    /// Submit the group; the future resolves once **every** call has
    /// executed, with one result per call in submission order, or with
    /// the abort error if the scheduler aborts the transaction along the
    /// way.
    pub async fn submit(self) -> Result<Vec<OpResult>, CoreError> {
        if self.group.is_empty() {
            return Ok(Vec::new());
        }
        let txn = self.txn;
        let inner = &txn.inner;
        let mut run = BatchRun::new(self.group);
        loop {
            match inner.db.batch_pass(&inner.core, &mut run)? {
                BatchPass::Complete => return Ok(run.into_results()),
                BatchPass::MustWait => {
                    // Guard the session against concurrent submissions
                    // from other clones while the terminator is pending,
                    // exactly like a blocked `try_exec_call`.
                    inner.core.set_pending(true);
                    let outcome = txn.settled()?.await;
                    inner.core.set_pending(false);
                    if inner.db.batch_resume(&inner.core, &mut run, outcome)? {
                        return Ok(run.into_results());
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Minimal executor harness
// ---------------------------------------------------------------------

/// A block_on / cross-thread wakeup signal (condvar-backed).
struct Signal {
    notified: Mutex<bool>,
    cond: Condvar,
}

impl Signal {
    fn new() -> Arc<Self> {
        Arc::new(Signal {
            notified: Mutex::new(false),
            cond: Condvar::new(),
        })
    }

    fn wait(&self) {
        let mut notified = self.notified.lock();
        while !*notified {
            self.cond.wait(&mut notified);
        }
        *notified = false;
    }
}

impl Wake for Signal {
    fn wake(self: Arc<Self>) {
        *self.notified.lock() = true;
        self.cond.notify_one();
    }
}

/// Drive a single future to completion on the calling thread, parking the
/// thread between polls.
///
/// This is the minimal current-thread entry point the module's futures
/// need — no runtime crate involved. Wakeups may come from any thread
/// (e.g. a sync session's commit delivering an outcome), so the waker is
/// a thread-safe condvar signal. For *many* concurrent sessions, spawn
/// them on a [`LocalExecutor`] (or any other executor) instead of
/// chaining `block_on` calls.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let signal = Signal::new();
    let waker = Waker::from(signal.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => signal.wait(),
        }
    }
}

/// The cross-thread half of [`LocalExecutor`]: the ready queue wakers
/// push task ids into. `Send + Sync` so outcomes delivered by *other* OS
/// threads (sync sessions, other executors) can wake tasks here.
struct ReadyQueue {
    ready: Mutex<VecDeque<usize>>,
    cond: Condvar,
}

impl ReadyQueue {
    fn push(&self, id: usize) {
        self.ready.lock().push_back(id);
        self.cond.notify_one();
    }

    fn pop_or_wait(&self) -> usize {
        let mut ready = self.ready.lock();
        loop {
            if let Some(id) = ready.pop_front() {
                return id;
            }
            self.cond.wait(&mut ready);
        }
    }

    fn try_pop(&self) -> Option<usize> {
        self.ready.lock().pop_front()
    }
}

/// Wakes one [`LocalExecutor`] task: pushes its id back onto the ready
/// queue (and unparks the executor thread if it is sleeping).
struct TaskWaker {
    id: usize,
    queue: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue.push(self.id);
    }
}

/// A minimal single-threaded executor: spawn any number of `!Send`
/// futures (async transactions included) and multiplex them on the
/// calling thread.
///
/// Scheduling is deterministic FIFO: tasks are polled in spawn order, and
/// a woken task re-queues behind already-ready ones. Wakers are
/// thread-safe, so sessions blocked in the kernel are woken by whichever
/// thread (this one or any sync session's) delivers their outcome.
///
/// This is a demonstration-grade harness, deliberately tiny; the async
/// front-end itself is executor-agnostic and runs unchanged under any
/// future executor.
///
/// ```
/// use sbcc_core::aio::{AsyncDatabase, LocalExecutor};
/// use sbcc_core::SchedulerConfig;
/// use sbcc_adt::{Counter, CounterOp};
///
/// let db = AsyncDatabase::new(SchedulerConfig::default());
/// let hits = db.register("hits", Counter::new());
/// let executor = LocalExecutor::new();
/// for _ in 0..100 {
///     let db = db.clone();
///     let hits = hits.clone();
///     executor.spawn(async move {
///         db.run(|txn| {
///             let hits = hits.clone();
///             async move { txn.exec(&hits, CounterOp::Increment(1)).await }
///         })
///         .await
///         .unwrap();
///     });
/// }
/// executor.run();
/// assert_eq!(db.stats().commits, 100);
/// ```
pub struct LocalExecutor {
    queue: Arc<ReadyQueue>,
    /// The spawned tasks, by id. A task is temporarily removed from the
    /// map while it is being polled (which also makes re-entrant spawns
    /// from inside a poll safe).
    tasks: RefCell<HashMap<usize, Pin<Box<dyn Future<Output = ()>>>>>,
    next_id: Cell<usize>,
    live: Cell<usize>,
}

impl Default for LocalExecutor {
    fn default() -> Self {
        LocalExecutor::new()
    }
}

impl LocalExecutor {
    /// An executor with no tasks.
    pub fn new() -> Self {
        LocalExecutor {
            queue: Arc::new(ReadyQueue {
                ready: Mutex::new(VecDeque::new()),
                cond: Condvar::new(),
            }),
            tasks: RefCell::new(HashMap::new()),
            next_id: Cell::new(0),
            live: Cell::new(0),
        }
    }

    /// Queue a future for execution (it is first polled inside
    /// [`LocalExecutor::run`] / [`LocalExecutor::run_until_stalled`], in
    /// spawn order). Futures need not be `Send`; they never leave this
    /// thread.
    pub fn spawn(&self, future: impl Future<Output = ()> + 'static) {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        self.tasks.borrow_mut().insert(id, Box::pin(future));
        self.live.set(self.live.get() + 1);
        self.queue.push(id);
    }

    /// Number of spawned tasks that have not completed yet.
    pub fn pending_tasks(&self) -> usize {
        self.live.get()
    }

    /// Drive every spawned task to completion, sleeping when all pending
    /// tasks wait on wakeups from other threads.
    ///
    /// Termination relies on every pending task having a wakeup in
    /// flight; the database guarantees this for blocked sessions (an
    /// outcome is always delivered), so `run` returns once all sessions
    /// settle.
    pub fn run(&self) {
        while self.live.get() > 0 {
            let id = self.queue.pop_or_wait();
            self.poll_task(id);
        }
    }

    /// Poll every ready task (including ones that become ready during the
    /// call) without ever sleeping, then return — useful for tests that
    /// interleave executor progress with sync-session activity on the
    /// same thread.
    pub fn run_until_stalled(&self) {
        while let Some(id) = self.queue.try_pop() {
            self.poll_task(id);
        }
    }

    fn poll_task(&self, id: usize) {
        // A task can be woken more than once (or complete before a stale
        // wake drains); a missing entry is simply skipped.
        let Some(mut task) = self.tasks.borrow_mut().remove(&id) else {
            return;
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            queue: self.queue.clone(),
        }));
        let mut cx = Context::from_waker(&waker);
        match task.as_mut().poll(&mut cx) {
            Poll::Ready(()) => self.live.set(self.live.get() - 1),
            Poll::Pending => {
                self.tasks.borrow_mut().insert(id, task);
            }
        }
    }
}

/// Cooperatively yield to the executor once: pending on first poll (after
/// scheduling an immediate wake), ready on the next. Lets long chains of
/// non-blocking operations share a [`LocalExecutor`] thread fairly — the
/// async sessions only suspend on their own when an operation actually
/// conflicts.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.yielded {
            Poll::Ready(())
        } else {
            this.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// The winner of a [`race`] between two futures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceWinner<A, B> {
    /// The left future resolved first (ties go left).
    Left(A),
    /// The right future resolved first.
    Right(B),
}

/// Race two futures; the loser is **dropped** when the winner resolves.
/// Polls left-biased, so a tie resolves `Left`.
///
/// This is the session-teardown primitive for connection-oriented
/// front-ends: race a session's operation future (left) against a
/// disconnect notification (right). When the notification wins, dropping
/// the in-flight operation future triggers this module's cancellation
/// contract — the waiter slot is unregistered and the transaction aborts,
/// which also unblocks every session waiting *on* it (see the [module
/// docs](self) on cancellation). No orphaned session outlives its
/// connection, and no waiter is left stranded behind one.
pub fn race<A: Future, B: Future>(left: A, right: B) -> Race<A, B> {
    Race {
        left: Some(Box::pin(left)),
        right: Some(Box::pin(right)),
    }
}

/// Future returned by [`race`].
#[derive(Debug)]
pub struct Race<A: Future, B: Future> {
    // Boxed so the combinator needs no unsafe pin projection; the races a
    // front-end runs wrap socket-bound operations, where one small
    // allocation per operation is noise.
    left: Option<Pin<Box<A>>>,
    right: Option<Pin<Box<B>>>,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = RaceWinner<A::Output, B::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let left = this.left.as_mut().expect("Race polled after completion");
        if let Poll::Ready(value) = left.as_mut().poll(cx) {
            this.left = None;
            this.right = None; // drop the loser now, not at Race's drop
            return Poll::Ready(RaceWinner::Left(value));
        }
        let right = this.right.as_mut().expect("Race polled after completion");
        if let Poll::Ready(value) = right.as_mut().poll(cx) {
            this.left = None; // drop the loser: cancellation contract fires
            this.right = None;
            return Poll::Ready(RaceWinner::Right(value));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::AbortReason;
    use crate::policy::ConflictPolicy;
    use sbcc_adt::{Stack, StackOp, Value};

    fn db() -> AsyncDatabase {
        AsyncDatabase::new(SchedulerConfig::default())
    }

    #[test]
    fn block_on_plain_and_yielding_futures() {
        assert_eq!(block_on(async { 40 + 2 }), 42);
        assert_eq!(
            block_on(async {
                yield_now().await;
                yield_now().await;
                7
            }),
            7
        );
    }

    #[test]
    fn race_is_left_biased_and_drops_the_loser() {
        // Tie: both sides are immediately ready, the left wins.
        assert_eq!(
            block_on(race(async { 1 }, async { 2 })),
            RaceWinner::Left(1)
        );
        // Left pending, right ready: the right wins.
        assert_eq!(
            block_on(race(
                async {
                    yield_now().await;
                    1
                },
                async { 2 }
            )),
            RaceWinner::Right(2)
        );
    }

    #[test]
    fn race_loss_cancels_a_blocked_operation() {
        // The disconnect-teardown seam: a blocked exec future loses a race
        // and is dropped, which must abort its transaction and unblock the
        // session waiting behind it.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let executor = LocalExecutor::new();
        let popped: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));

        let holder = db.begin();
        block_on(holder.exec(&s, StackOp::Push(Value::Int(7)))).unwrap();
        let blocked_id = Rc::new(Cell::new(None));

        let db2 = db.clone();
        let s2 = s.clone();
        let blocked_id2 = blocked_id.clone();
        executor.spawn(async move {
            let t = db2.begin();
            blocked_id2.set(Some(t.id()));
            // Conflicts with the holder's uncommitted push, so the exec
            // suspends; the ready right-hand side then wins the race and
            // the exec future is dropped mid-wait.
            let won = race(t.exec(&s2, StackOp::Pop), yield_now()).await;
            assert!(matches!(won, RaceWinner::Right(())));
        });
        let db3 = db.clone();
        let s3 = s.clone();
        let popped2 = popped.clone();
        executor.spawn(async move {
            let t = db3.begin();
            // Also blocks behind the holder; must not be stranded behind
            // the cancelled session once the holder commits.
            let r = t.exec(&s3, StackOp::Pop).await.unwrap();
            t.commit().await.unwrap();
            *popped2.borrow_mut() = Some(r);
        });
        executor.spawn(async move {
            // One tick so the race's right side resolves (and the exec is
            // cancelled) before the holder releases the conflict.
            yield_now().await;
            holder.commit().await.unwrap();
        });
        executor.run();
        assert_eq!(
            db.txn_state(blocked_id.get().unwrap()),
            Some(TxnState::Aborted),
            "losing the race aborts the cancelled session"
        );
        assert_eq!(*popped.borrow(), Some(OpResult::Value(Value::Int(7))));
        db.verify_serializable().unwrap();
    }

    #[test]
    fn executor_drives_spawned_tasks_fifo() {
        let executor = LocalExecutor::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let order = order.clone();
            executor.spawn(async move {
                order.borrow_mut().push(i);
                yield_now().await;
                order.borrow_mut().push(i + 10);
            });
        }
        assert_eq!(executor.pending_tasks(), 4);
        executor.run();
        assert_eq!(executor.pending_tasks(), 0);
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 10, 11, 12, 13]);
    }

    #[test]
    fn exec_commit_and_auto_abort() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        block_on(async {
            let t = db.begin();
            assert_eq!(t.state(), Some(TxnState::Active));
            assert_eq!(
                t.exec(&s, StackOp::Push(Value::Int(4))).await.unwrap(),
                OpResult::Ok
            );
            t.commit().await.unwrap();

            // Dropping the last handle of an uncommitted session aborts it.
            let t2 = db.begin();
            let id2 = t2.id();
            t2.exec(&s, StackOp::Push(Value::Int(9))).await.unwrap();
            drop(t2);
            assert_eq!(db.txn_state(id2), Some(TxnState::Aborted));

            let t3 = db.begin();
            assert_eq!(
                t3.exec(&s, StackOp::Top).await.unwrap(),
                OpResult::Value(Value::Int(4))
            );
            t3.abort().await.unwrap();
        });
        assert_eq!(db.stats().commits, 1);
        assert_eq!(db.stats().aborts_explicit, 2);
        db.verify_serializable().unwrap();
    }

    #[test]
    fn one_thread_multiplexes_conflicting_sessions() {
        // The capability the sync API cannot offer: a single thread holds
        // the blocking holder AND the blocked waiter, and the executor
        // interleaves them to completion.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let executor = LocalExecutor::new();
        let popped: Rc<RefCell<Option<OpResult>>> = Rc::new(RefCell::new(None));

        let holder = db.begin();
        block_on(holder.exec(&s, StackOp::Push(Value::Int(7)))).unwrap();

        let db2 = db.clone();
        let s2 = s.clone();
        let popped2 = popped.clone();
        executor.spawn(async move {
            let t = db2.begin();
            // Conflicts with the holder's uncommitted push: suspends.
            let r = t.exec(&s2, StackOp::Pop).await.unwrap();
            t.commit().await.unwrap();
            *popped2.borrow_mut() = Some(r);
        });
        executor.spawn(async move {
            // Runs while the first task is suspended, on the same thread.
            holder.commit().await.unwrap();
        });
        executor.run();
        assert_eq!(*popped.borrow(), Some(OpResult::Value(Value::Int(7))));
        assert_eq!(db.stats().blocks, 1);
        assert_eq!(db.stats().unblocks, 1);
        db.verify_serializable().unwrap();
    }

    #[test]
    fn wakeup_from_a_sync_thread_resumes_the_future() {
        // Mixed mode: the async session blocks, and a *sync* session on
        // another OS thread delivers the wakeup through the same slot.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let sync_db = db.database().clone();
        let t1 = sync_db.begin();
        t1.exec(&s, StackOp::Push(Value::Int(3))).unwrap();

        let committer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            t1.commit().unwrap();
        });
        let r = block_on(async {
            let t2 = db.begin();
            let r = t2.exec(&s, StackOp::Pop).await.unwrap();
            t2.commit().await.unwrap();
            r
        });
        committer.join().unwrap();
        assert_eq!(r, OpResult::Value(Value::Int(3)));
        db.verify_serializable().unwrap();
    }

    #[test]
    fn wake_before_poll_is_not_lost() {
        // The delivery fires while the exec future is suspended but
        // before its next poll: manual polling pins the order — poll
        // (registers the slot + waker), fill from outside, poll again.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(5))).unwrap();

        let t2 = db.begin();
        let fut = t2.exec_call(&s, StackOp::Pop.to_call());
        let mut fut = Box::pin(fut);
        let mut cx = Context::from_waker(Waker::noop());
        // First poll submits the request; it conflicts and suspends.
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        // The outcome is delivered (and the stored waker woken) with no
        // poll in progress...
        t1.commit().unwrap();
        // ...and the next poll must find it in the slot.
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(Ok(r)) => assert_eq!(r, OpResult::Value(Value::Int(5))),
            other => panic!("expected ready pop result, got {other:?}"),
        }
        drop(fut);
        block_on(t2.commit()).unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn cancelled_exec_future_aborts_and_unblocks_waiters() {
        // T1 holds the stack; T2 (async) executes one op, then blocks and
        // its exec future is dropped mid-wait; T3 is blocked *behind* T2.
        // The cancellation must abort T2 and thereby unblock T3.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let s2 = db.register("other", Stack::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(1))).unwrap();

        let t2 = db.begin();
        let id2 = t2.id();
        block_on(t2.exec(&s2, StackOp::Push(Value::Int(2)))).unwrap();
        {
            let fut = t2.exec_call(&s, StackOp::Pop.to_call());
            let mut fut = Box::pin(fut);
            let mut cx = Context::from_waker(Waker::noop());
            assert!(fut.as_mut().poll(&mut cx).is_pending());
            // Dropped while blocked inside the kernel.
        }
        assert_eq!(db.txn_state(id2), Some(TxnState::Aborted));

        // T3 would have waited on T2's uncommitted push on `other`; after
        // the cancellation abort it executes immediately.
        let t3 = db.database().begin();
        let r = t3.exec(&s2, StackOp::Pop).unwrap();
        assert_eq!(r, OpResult::Null, "t2's cancelled push was undone");
        t3.commit().unwrap();
        t1.commit().unwrap();
        // Later use of the cancelled session reports the terminated state.
        assert!(matches!(
            block_on(t2.exec(&s, StackOp::Top)),
            Err(CoreError::InvalidState {
                state: TxnState::Aborted,
                ..
            })
        ));
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn cancelled_settle_discards_a_raced_outcome() {
        // The outcome settles concurrently with the cancellation: the
        // filled slot is discarded and the transaction still aborts.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(4))).unwrap();

        let t2 = db.begin();
        let id2 = t2.id();
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        {
            let fut = t2.settle_pending();
            let mut fut = Box::pin(fut);
            let mut cx = Context::from_waker(Waker::noop());
            assert!(fut.as_mut().poll(&mut cx).is_pending());
            // The holder commits: T2's pop executes and fills the slot...
            t1.commit().unwrap();
            // ...but the future is dropped without being polled again.
        }
        assert_eq!(db.txn_state(id2), Some(TxnState::Aborted));
        // The abort undid the pop: the pushed value is still there.
        let t3 = db.database().begin();
        assert_eq!(
            t3.exec(&s, StackOp::Top).unwrap(),
            OpResult::Value(Value::Int(4))
        );
        t3.commit().unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn second_concurrent_awaiter_is_rejected_not_orphaned() {
        // Two clones of one session must not both register waiter slots:
        // the second awaiter errors instead of silently replacing the
        // first one's slot (which would strand the first future forever).
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(9))).unwrap();

        let t2 = db.begin();
        let t2b = t2.clone();
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        let first = t2.settle_pending();
        let mut first = Box::pin(first);
        let mut cx = Context::from_waker(Waker::noop());
        assert!(first.as_mut().poll(&mut cx).is_pending());
        // The clone's competing await is rejected up front...
        assert!(matches!(
            block_on(t2b.settle_pending()),
            Err(CoreError::InvalidState {
                state: TxnState::Blocked,
                ..
            })
        ));
        // ...and the original waiter still receives its outcome.
        t1.commit().unwrap();
        match first.as_mut().poll(&mut cx) {
            Poll::Ready(Ok(r)) => assert_eq!(r, OpResult::Value(Value::Int(9))),
            other => panic!("first awaiter must win, got {other:?}"),
        }
        drop(first);
        block_on(t2.commit()).unwrap();
        db.verify_serializable().unwrap();
    }

    #[test]
    fn settle_pending_claims_a_delivered_outcome() {
        // The `delivered`-map path for an async session: the request
        // settles while nothing awaits it, and `settle_pending` claims it
        // without suspending.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let t2 = db.begin();
        assert!(t2
            .try_exec_call(&s, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        // Settles with no waiter registered -> delivered map.
        t1.commit().unwrap();
        block_on(async {
            assert_eq!(
                t2.settle_pending().await.unwrap(),
                OpResult::Value(Value::Int(7))
            );
            t2.commit().await.unwrap();
        });
        assert!(matches!(
            block_on(db.begin().settle_pending()),
            Err(CoreError::NoPendingOperation(_))
        ));
        db.verify_serializable().unwrap();
    }

    #[test]
    fn async_batch_resumes_across_conflicts() {
        let db = db();
        let s = db.register("jobs", Stack::new());
        let c = db.register("hits", sbcc_adt::Counter::new());
        let t1 = db.database().begin();
        t1.exec(&s, StackOp::Push(Value::Int(7))).unwrap();

        let executor = LocalExecutor::new();
        let results = Rc::new(RefCell::new(Vec::new()));
        let (db2, s2, c2, results2) = (db.clone(), s.clone(), c.clone(), results.clone());
        executor.spawn(async move {
            let t2 = db2.begin();
            // Increment commutes; the pop conflicts and suspends the
            // batch; the final increment resumes after T1 commits.
            let r = t2
                .batch()
                .op(&c2, sbcc_adt::CounterOp::Increment(1))
                .op(&s2, StackOp::Pop)
                .op(&c2, sbcc_adt::CounterOp::Increment(1))
                .submit()
                .await
                .unwrap();
            t2.commit().await.unwrap();
            *results2.borrow_mut() = r;
        });
        executor.run_until_stalled();
        assert!(results.borrow().is_empty(), "batch is parked mid-group");
        t1.commit().unwrap();
        executor.run();
        assert_eq!(
            *results.borrow(),
            vec![
                OpResult::Ok,
                OpResult::Value(Value::Int(7)),
                OpResult::Ok
            ]
        );
        let stats = db.stats();
        assert_eq!(stats.blocks, 1);
        assert_eq!(stats.unblocks, 1);
        // At least the initial pass and the post-block resumption pass
        // (under SBCC_SHARDS > 1 the group additionally splits into
        // per-shard runs, each a pass of its own).
        assert!(stats.batches >= 2, "initial + resumption passes");
        db.verify_serializable().unwrap();

        // Empty async batches never reach the kernel.
        let batches_before = db.stats().batches;
        block_on(async {
            let t = db.begin();
            let b = t.batch();
            assert!(b.is_empty());
            assert_eq!(b.len(), 0);
            assert_eq!(b.submit().await.unwrap(), vec![]);
            t.commit().await.unwrap();
        });
        assert_eq!(db.stats().batches, batches_before);
    }

    #[test]
    fn run_retries_scheduler_aborts_across_tasks() {
        // Two `run` bodies deadlock each other on one executor thread; the
        // requester that closes the cycle is aborted and retried, and both
        // eventually commit.
        let db = AsyncDatabase::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let a = db.register("a", Stack::new());
        let b = db.register("b", Stack::new());
        let executor = LocalExecutor::new();
        for (first, second) in [(a.clone(), b.clone()), (b.clone(), a.clone())] {
            let db = db.clone();
            executor.spawn(async move {
                db.run(|txn| {
                    let (first, second) = (first.clone(), second.clone());
                    async move {
                        txn.exec(&first, StackOp::Push(Value::Int(1))).await?;
                        // Let the other task take its first object before
                        // requesting the second: guarantees the cycle.
                        yield_now().await;
                        yield_now().await;
                        txn.exec(&second, StackOp::Push(Value::Int(2))).await
                    }
                })
                .await
                .unwrap();
            });
        }
        executor.run();
        assert_eq!(db.stats().commits, 2);
        assert!(
            db.stats().scheduler_aborts() >= 1,
            "the cycle must have cost at least one abort"
        );
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn run_propagates_non_scheduler_errors() {
        let db = db();
        let mut calls = 0;
        let err = block_on(db.run(|_txn| {
            calls += 1;
            async { Err::<(), _>(CoreError::UnknownObject("nope".into())) }
        }));
        assert!(matches!(err, Err(CoreError::UnknownObject(_))));
        assert_eq!(calls, 1, "non-scheduler errors are not retried");
        assert_eq!(db.stats().aborts_explicit, 1, "attempt aborted by its handle");
    }

    #[test]
    fn run_retries_a_cancellation_abort() {
        // A body whose first attempt cancels its own blocked exec mid-wait
        // surfaces InvalidState{Aborted}; `run` restarts it.
        let db = db();
        let s = db.register("jobs", Stack::new());
        let holder = db.database().begin();
        holder.exec(&s, StackOp::Push(Value::Int(1))).unwrap();

        let mut attempts = 0;
        let mut holder = Some(holder);
        let r = block_on(db.run(|txn| {
            attempts += 1;
            let s = s.clone();
            let first = attempts == 1;
            if first {
                // Cancel a blocked pop by polling it once and dropping it.
                let fut = txn.exec_call(&s, StackOp::Pop.to_call());
                let mut fut = Box::pin(fut);
                let mut cx = Context::from_waker(Waker::noop());
                assert!(fut.as_mut().poll(&mut cx).is_pending());
                drop(fut);
                // The attempt now reports its own aborted state.
                if let Some(h) = holder.take() {
                    h.commit().unwrap();
                }
            }
            async move {
                txn.exec(&s, StackOp::Push(Value::Int(3))).await
            }
        }));
        assert_eq!(r.unwrap(), OpResult::Ok);
        assert!(attempts >= 2, "cancellation abort must be retried");
        db.verify_serializable().unwrap();
    }

    #[test]
    fn aborted_reason_surfaces_from_exec() {
        let db = AsyncDatabase::new(
            SchedulerConfig::default().with_policy(ConflictPolicy::CommutativityOnly),
        );
        let s = db.register("s", Stack::new());
        let s2 = db.register("s2", Stack::new());
        let executor = LocalExecutor::new();
        let seen = Rc::new(Cell::new(false));
        let (db1, sa, sb) = (db.clone(), s.clone(), s2.clone());
        let seen1 = seen.clone();
        executor.spawn(async move {
            let t1 = db1.begin();
            t1.exec(&sa, StackOp::Push(Value::Int(1))).await.unwrap();
            yield_now().await;
            yield_now().await;
            // Closes the cycle: t1 is the requester and is aborted.
            let err = t1.exec(&sb, StackOp::Push(Value::Int(2))).await;
            assert!(matches!(
                err,
                Err(CoreError::Aborted {
                    reason: AbortReason::DeadlockCycle,
                    ..
                })
            ));
            seen1.set(true);
        });
        let (db2, sa, sb) = (db.clone(), s.clone(), s2.clone());
        executor.spawn(async move {
            let t2 = db2.begin();
            t2.exec(&sb, StackOp::Push(Value::Int(3))).await.unwrap();
            yield_now().await;
            // Blocks behind t1's push; resumes when t1 is aborted.
            t2.exec(&sa, StackOp::Push(Value::Int(4))).await.unwrap();
            t2.commit().await.unwrap();
        });
        executor.run();
        assert!(seen.get());
        assert_eq!(db.stats().commits, 1);
        db.verify_serializable().unwrap();
    }

    /// A 4-shard database plus `n` object names probed (via
    /// [`crate::shard::shard_of_name`]) to land on `n` distinct shards, so
    /// the waiter-race tests below exercise the sharded claim/fill path
    /// with genuinely cross-shard sessions.
    fn sharded_db_with_names(n: usize) -> (AsyncDatabase, Vec<String>) {
        const SHARDS: usize = 4;
        let db = AsyncDatabase::with_config(
            DatabaseConfig::new(SchedulerConfig::default()).with_shards(SHARDS),
        );
        let mut names = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0.. {
            let name = format!("obj{i}");
            if seen.insert(crate::shard::shard_of_name(&name, SHARDS)) {
                names.push(name);
                if names.len() == n {
                    break;
                }
            }
        }
        (db, names)
    }

    #[test]
    fn sharded_cancelled_settle_discards_a_raced_outcome() {
        // The PR-4 cancellation/delivery race, re-run on the sharded path:
        // the pending request lives in one shard while the session is also
        // enrolled in another, so the cancellation abort must fan out
        // through the coordinator and undo both shards' effects.
        let (db, names) = sharded_db_with_names(2);
        let contested = db.register(&names[0], Stack::new());
        let other = db.register(&names[1], Stack::new());
        let t1 = db.database().begin();
        t1.exec(&contested, StackOp::Push(Value::Int(4))).unwrap();

        let t2 = db.begin();
        let id2 = t2.id();
        // Enroll in a second shard before blocking in the first.
        block_on(t2.exec(&other, StackOp::Push(Value::Int(8)))).unwrap();
        assert!(t2
            .try_exec_call(&contested, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        {
            let fut = t2.settle_pending();
            let mut fut = Box::pin(fut);
            let mut cx = Context::from_waker(Waker::noop());
            assert!(fut.as_mut().poll(&mut cx).is_pending());
            // The holder commits: T2's pop executes and fills the slot...
            t1.commit().unwrap();
            // ...but the future is dropped without being polled again.
        }
        assert_eq!(db.txn_state(id2), Some(TxnState::Aborted));
        // The cancellation abort undid the work in *both* shards.
        let t3 = db.database().begin();
        assert_eq!(
            t3.exec(&contested, StackOp::Top).unwrap(),
            OpResult::Value(Value::Int(4)),
            "cancelled pop undone in the contested shard"
        );
        assert_eq!(
            t3.exec(&other, StackOp::Top).unwrap(),
            OpResult::Null,
            "cancelled push undone in the other shard"
        );
        t3.commit().unwrap();
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }

    #[test]
    fn sharded_second_concurrent_awaiter_is_rejected_not_orphaned() {
        // Second-awaiter rejection at 4 shards: the pending-request gate
        // lives in the session layer, so a clone awaiting from the same
        // session must be rejected even when the pending request is parked
        // in a different shard than the clone last touched.
        let (db, names) = sharded_db_with_names(2);
        let contested = db.register(&names[0], Stack::new());
        let other = db.register(&names[1], Stack::new());
        let t1 = db.database().begin();
        t1.exec(&contested, StackOp::Push(Value::Int(9))).unwrap();

        let t2 = db.begin();
        let t2b = t2.clone();
        block_on(t2.exec(&other, StackOp::Push(Value::Int(1)))).unwrap();
        assert!(t2
            .try_exec_call(&contested, StackOp::Pop.to_call())
            .unwrap()
            .is_blocked());
        let first = t2.settle_pending();
        let mut first = Box::pin(first);
        let mut cx = Context::from_waker(Waker::noop());
        assert!(first.as_mut().poll(&mut cx).is_pending());
        // The clone's competing await is rejected up front...
        assert!(matches!(
            block_on(t2b.settle_pending()),
            Err(CoreError::InvalidState {
                state: TxnState::Blocked,
                ..
            })
        ));
        // ...and the original waiter still receives its outcome.
        t1.commit().unwrap();
        match first.as_mut().poll(&mut cx) {
            Poll::Ready(Ok(r)) => assert_eq!(r, OpResult::Value(Value::Int(9))),
            other => panic!("first awaiter must win, got {other:?}"),
        }
        drop(first);
        block_on(t2.commit()).unwrap();
        db.verify_serializable().unwrap();
        db.check_invariants().unwrap();
    }
}
