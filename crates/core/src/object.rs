//! Managed objects: the per-object state the paper's *object managers* keep.
//!
//! Each object manager maintains an execution log of uncommitted operations
//! on its object (Section 4) plus a queue of blocked requests. Conflict
//! classification happens against that log using the object's compatibility
//! tables (through the erased [`SemanticObject`] interface), and the chosen
//! [`RecoveryStrategy`] decides how operation results are computed and how
//! commits/aborts update the object state.
//!
//! # Indexed classification
//!
//! The paper's Figure-2 algorithm classifies every incoming operation
//! against *every* uncommitted operation in the log. The naive
//! implementation (retained as [`ManagedObject::classify_naive`], the
//! reference for differential tests) walks the whole log per request. The
//! production path instead maintains:
//!
//! * a **log index** keyed by `(transaction, operation kind)`, holding for
//!   each bucket the count of parameterless entries and the multiset of
//!   distinct distinguishing parameters — so a request touches each
//!   distinct `(transaction, kind, parameter-relation)` class once instead
//!   of each log entry; and
//! * a **classification memo**: a dense `[kind × kind × relation]` matrix
//!   caching the [`SemanticObject::classify`] verdicts, filled lazily. The
//!   memo is sound because classification is state-independent and
//!   *parameter-relational* (the `Yes-SP` / `Yes-DP` refinement only
//!   inspects whether the distinguishing parameters are equal, different,
//!   or not comparable — exactly the paper's "state-independent, but
//!   parameter-dependent" restriction; see [`SemanticObject::classify`]).
//!
//! With `T` live transactions on the object, `K` operation kinds and `L`
//! log entries, a classification costs `O(T·K)` table lookups instead of
//! `O(L)` full semantic classifications — and `L` grows with transaction
//! length and contention while `T·K` stays small and bounded.

use crate::policy::{ConflictPolicy, RecoveryStrategy};
use crate::txn::TxnId;
use sbcc_adt::{Compatibility, OpCall, OpResult, SemanticObject, Value};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifier of a registered object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// One uncommitted operation in an object's execution log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The transaction that executed the operation.
    pub txn: TxnId,
    /// Global execution sequence number.
    pub seq: u64,
    /// The operation.
    pub call: OpCall,
    /// The result that was returned to the transaction.
    pub result: OpResult,
}

/// A blocked operation request waiting in an object's queue.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedRequest {
    /// The blocked transaction.
    pub txn: TxnId,
    /// The operation it wants to execute.
    pub call: OpCall,
}

/// Summary of classifying a requested operation against an object's log
/// (and, under fair scheduling, its blocked queue).
///
/// Both lists are sorted by transaction id and free of duplicates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Classification {
    /// Transactions holding at least one uncommitted operation the request
    /// is neither commutative with nor recoverable relative to. Non-empty
    /// means the requester must wait (or abort on a cycle).
    pub conflicts: Vec<TxnId>,
    /// Transactions holding at least one uncommitted operation the request
    /// is recoverable relative to (but does not commute with). Executing the
    /// request creates commit-dependency edges to these transactions.
    pub commit_deps: Vec<TxnId>,
}

impl Classification {
    /// `true` when the request can execute immediately with no commit
    /// dependencies (everything commutes).
    pub fn is_free(&self) -> bool {
        self.conflicts.is_empty() && self.commit_deps.is_empty()
    }
}

/// How the distinguishing parameters of a requested and an executed call
/// relate — the only parameter information a (parameter-relational)
/// classification may depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParamRelation {
    /// At least one side has no distinguishing parameter.
    Incomparable = 0,
    /// Both present and equal.
    Equal = 1,
    /// Both present and different.
    Different = 2,
}

fn param_relation(requested: &OpCall, executed: &OpCall) -> ParamRelation {
    match (
        requested.distinguishing_param(),
        executed.distinguishing_param(),
    ) {
        (Some(a), Some(b)) if a == b => ParamRelation::Equal,
        (Some(_), Some(_)) => ParamRelation::Different,
        _ => ParamRelation::Incomparable,
    }
}

/// Lazily filled `[kind × kind × relation]` cache of raw
/// [`SemanticObject::classify`] verdicts.
#[derive(Debug, Clone)]
struct ClassifyMemo {
    arity: usize,
    cells: Vec<[Option<Compatibility>; 3]>,
}

impl ClassifyMemo {
    fn new(arity: usize) -> Self {
        ClassifyMemo {
            arity,
            cells: vec![[None; 3]; arity * arity],
        }
    }

    fn classify(
        &mut self,
        object: &dyn SemanticObject,
        requested: &OpCall,
        executed: &OpCall,
    ) -> Compatibility {
        let rel = param_relation(requested, executed);
        debug_assert!(
            requested.kind < self.arity && executed.kind < self.arity,
            "operation kind out of range for {} ({} kinds)",
            object.type_name(),
            self.arity
        );
        let idx = requested.kind * self.arity + executed.kind;
        let slot = &mut self.cells[idx][rel as usize];
        if let Some(c) = *slot {
            return c;
        }
        let c = object.classify(requested, executed);
        *slot = Some(c);
        c
    }

    /// Look up the verdict for `(requested.kind, executed_kind, rel)`
    /// directly. The representative executed call is only materialised on
    /// a memo **miss** — on a hit (the overwhelming majority once the
    /// table is warm) this is a pure array lookup with no `OpCall`
    /// construction or parameter clone.
    fn classify_rel(
        &mut self,
        object: &dyn SemanticObject,
        requested: &OpCall,
        executed_kind: usize,
        rel: ParamRelation,
        executed_rep: impl FnOnce() -> OpCall,
    ) -> Compatibility {
        debug_assert!(
            requested.kind < self.arity && executed_kind < self.arity,
            "operation kind out of range for {} ({} kinds)",
            object.type_name(),
            self.arity
        );
        let idx = requested.kind * self.arity + executed_kind;
        let slot = &mut self.cells[idx][rel as usize];
        if let Some(c) = *slot {
            return c;
        }
        let rep = executed_rep();
        debug_assert_eq!(
            param_relation(requested, &rep),
            rel,
            "representative call must realise the claimed parameter relation"
        );
        let c = object.classify(requested, &rep);
        *slot = Some(c);
        c
    }
}

/// Per-`(transaction, kind)` summary of the uncommitted log: how many
/// entries lack a distinguishing parameter, and the distinct parameters
/// (with multiplicities) of those that have one.
#[derive(Debug, Clone, Default)]
struct KindBucket {
    nullary: u32,
    params: HashMap<Value, u32>,
}

impl KindBucket {
    fn is_empty(&self) -> bool {
        self.nullary == 0 && self.params.is_empty()
    }

    /// Any parameter different from `p`, if one exists.
    fn param_other_than(&self, p: &Value) -> Option<&Value> {
        self.params.keys().find(|q| *q != p)
    }

    /// Any parameter at all, if one exists.
    fn any_param(&self) -> Option<&Value> {
        self.params.keys().next()
    }
}

/// The per-object state maintained by the kernel.
pub struct ManagedObject {
    id: ObjectId,
    name: String,
    /// Snapshot of the state at registration time (used by the history
    /// checker to replay committed transactions from scratch).
    initial: Box<dyn SemanticObject>,
    /// State reflecting exactly the committed transactions.
    committed: Box<dyn SemanticObject>,
    /// Committed state plus all uncommitted logged operations, in execution
    /// order. Maintained only under [`RecoveryStrategy::UndoReplay`].
    materialized: Option<Box<dyn SemanticObject>>,
    /// Commit stamp of the last fold that changed `committed` (0 before any
    /// commit). Snapshot reads with a begin stamp at or above this value are
    /// answered from `committed` directly.
    committed_stamp: u64,
    /// Historical committed states, ascending by stamp: entry `(s, state)`
    /// is the committed state that became current at stamp `s` (and was
    /// superseded by the next entry's stamp, or by `committed_stamp`).
    /// Maintained **lazily**: empty while no snapshot is live (the commit
    /// path passes `u64::MAX` as the watermark, which clears it), so the
    /// multi-version store costs nothing on snapshot-free workloads.
    history: Vec<(u64, Box<dyn SemanticObject>)>,
    /// Uncommitted operations, in execution order.
    log: Vec<LogEntry>,
    /// The log indexed by `(transaction, operation kind)`.
    index: HashMap<TxnId, HashMap<usize, KindBucket>>,
    /// Memoised classification verdicts (interior mutability: filling the
    /// cache is logically a read).
    memo: RefCell<ClassifyMemo>,
    /// Blocked requests, FIFO.
    blocked: VecDeque<BlockedRequest>,
    strategy: RecoveryStrategy,
}

impl fmt::Debug for ManagedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagedObject")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("type", &self.committed.type_name())
            .field("log_len", &self.log.len())
            .field("blocked_len", &self.blocked.len())
            .finish()
    }
}

impl ManagedObject {
    /// Wrap a semantic object for management by the kernel.
    pub fn new(
        id: ObjectId,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
        strategy: RecoveryStrategy,
    ) -> Self {
        let materialized = match strategy {
            RecoveryStrategy::IntentionsList => None,
            RecoveryStrategy::UndoReplay => Some(object.boxed_clone()),
        };
        let arity = object.op_names().len();
        ManagedObject {
            id,
            name: name.into(),
            initial: object.boxed_clone(),
            committed: object,
            materialized,
            committed_stamp: 0,
            history: Vec::new(),
            log: Vec::new(),
            index: HashMap::new(),
            memo: RefCell::new(ClassifyMemo::new(arity)),
            blocked: VecDeque::new(),
            strategy,
        }
    }

    /// The object's id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state at registration time.
    pub fn initial_state(&self) -> &dyn SemanticObject {
        self.initial.as_ref()
    }

    /// The state reflecting exactly the committed transactions.
    pub fn committed_state(&self) -> &dyn SemanticObject {
        self.committed.as_ref()
    }

    /// Number of uncommitted operations currently in the log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The uncommitted log entries (execution order).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Number of blocked requests queued on this object.
    pub fn blocked_len(&self) -> usize {
        self.blocked.len()
    }

    /// The blocked requests (FIFO order).
    pub fn blocked_queue(&self) -> &VecDeque<BlockedRequest> {
        &self.blocked
    }

    /// Raw memoised classification of `requested` against `executed`,
    /// before any policy demotion.
    fn raw_classify(&self, requested: &OpCall, executed: &OpCall) -> Compatibility {
        self.memo
            .borrow_mut()
            .classify(self.committed.as_ref(), requested, executed)
    }

    fn demote(policy: ConflictPolicy, c: Compatibility) -> Compatibility {
        match (policy, c) {
            (ConflictPolicy::CommutativityOnly, Compatibility::Recoverable) => {
                Compatibility::NonRecoverable
            }
            (_, c) => c,
        }
    }

    fn effective(
        &self,
        policy: ConflictPolicy,
        requested: &OpCall,
        executed: &OpCall,
    ) -> Compatibility {
        Self::demote(policy, self.raw_classify(requested, executed))
    }

    /// Policy-demoted verdict of `call` against one parameter-relation
    /// class of executed kind `kind`; the representative call is built
    /// only when the memo misses.
    fn rel_severity(
        &self,
        policy: ConflictPolicy,
        call: &OpCall,
        kind: usize,
        rel: ParamRelation,
        rep: impl FnOnce() -> OpCall,
    ) -> Compatibility {
        Self::demote(
            policy,
            self.memo
                .borrow_mut()
                .classify_rel(self.committed.as_ref(), call, kind, rel, rep),
        )
    }

    /// Worst-case (most restrictive) classification of `call` against one
    /// `(transaction, kind)` bucket, touching each parameter-relation class
    /// at most once (and, on a warm memo, performing no allocation at all).
    fn bucket_severity(
        &self,
        policy: ConflictPolicy,
        call: &OpCall,
        kind: usize,
        bucket: &KindBucket,
    ) -> Compatibility {
        let mut severity = Compatibility::Commutative;
        match call.distinguishing_param() {
            None => {
                // Every entry of the bucket is in the Incomparable class
                // (SP/DP can never hold without a parameter on both sides).
                if !bucket.is_empty() {
                    severity = self.rel_severity(policy, call, kind, ParamRelation::Incomparable, || {
                        if bucket.nullary > 0 {
                            OpCall::nullary(kind)
                        } else {
                            OpCall::unary(kind, bucket.any_param().expect("non-empty").clone())
                        }
                    });
                }
            }
            Some(p) => {
                if bucket.nullary > 0 {
                    severity = severity.max(self.rel_severity(
                        policy,
                        call,
                        kind,
                        ParamRelation::Incomparable,
                        || OpCall::nullary(kind),
                    ));
                }
                if severity < Compatibility::NonRecoverable && bucket.params.contains_key(p) {
                    severity = severity.max(self.rel_severity(
                        policy,
                        call,
                        kind,
                        ParamRelation::Equal,
                        || OpCall::unary(kind, p.clone()),
                    ));
                }
                if severity < Compatibility::NonRecoverable {
                    if let Some(q) = bucket.param_other_than(p) {
                        severity = severity.max(self.rel_severity(
                            policy,
                            call,
                            kind,
                            ParamRelation::Different,
                            || OpCall::unary(kind, q.clone()),
                        ));
                    }
                }
            }
        }
        severity
    }

    /// Classify `call`, requested by `txn`, against the uncommitted
    /// operations of **other** transactions in the log.
    ///
    /// Under [`ConflictPolicy::CommutativityOnly`] a `Recoverable`
    /// classification is demoted to a conflict, which is exactly how the
    /// baseline protocol behaves.
    ///
    /// If `fairness_extra` is non-empty those `(transaction, call)` pairs
    /// (typically the object's blocked queue) are also checked: a conflict
    /// with any of them blocks the request even though they have not
    /// executed (the fair-scheduling rule of Section 5.2).
    ///
    /// This is the indexed hot path; it is differentially tested against
    /// [`Self::classify_naive`]. It is the single-call specialisation of
    /// [`Self::classify_many`] — kept as a direct implementation (no
    /// group-shaped intermediate vectors) because every kernel request
    /// runs through it; `classify_many_matches_per_call_classification`
    /// pins the two to identical verdicts.
    pub fn classify(
        &self,
        policy: ConflictPolicy,
        txn: TxnId,
        call: &OpCall,
        fairness_extra: &[(TxnId, OpCall)],
    ) -> Classification {
        let mut conflicts: Vec<TxnId> = Vec::new();
        let mut commit_deps: Vec<TxnId> = Vec::new();

        for (other, kinds) in &self.index {
            if *other == txn {
                continue;
            }
            let mut severity = Compatibility::Commutative;
            for (kind, bucket) in kinds {
                if bucket.is_empty() {
                    continue;
                }
                severity = severity.max(self.bucket_severity(policy, call, *kind, bucket));
                if severity == Compatibility::NonRecoverable {
                    break;
                }
            }
            match severity {
                Compatibility::NonRecoverable => conflicts.push(*other),
                Compatibility::Recoverable => commit_deps.push(*other),
                Compatibility::Commutative => {}
            }
        }
        for (other, other_call) in fairness_extra {
            if *other == txn {
                continue;
            }
            // See `classify_many` for why the fairness test is symmetric.
            let incoming_after_blocked = self.effective(policy, call, other_call);
            let blocked_after_incoming = self.effective(policy, other_call, call);
            if (incoming_after_blocked == Compatibility::NonRecoverable
                || blocked_after_incoming == Compatibility::NonRecoverable)
                && !conflicts.contains(other)
            {
                conflicts.push(*other);
            }
        }
        conflicts.sort_unstable();
        // A transaction that must be waited on anyway is not listed as a
        // commit dependency.
        commit_deps.retain(|t| conflicts.binary_search(t).is_err());
        commit_deps.sort_unstable();
        Classification {
            conflicts,
            commit_deps,
        }
    }

    /// Classify a whole *group* of calls, all requested by `txn`, against
    /// the uncommitted operations of other transactions — in **one pass**
    /// over the `(transaction, kind, parameter-relation)` log index.
    ///
    /// Per-call classification walks the index once per call; a
    /// transaction's batch of `B` calls therefore traverses it `B` times.
    /// This method traverses each `(transaction, kind)` bucket exactly once
    /// and scores every call of the group against it, so a batch pays one
    /// index walk (plus one walk of the fairness set) regardless of its
    /// size. Calls are taken by reference so batch planning never clones
    /// operation payloads. The verdict for each call is identical to what
    /// [`Self::classify`] would return on it.
    pub fn classify_many(
        &self,
        policy: ConflictPolicy,
        txn: TxnId,
        calls: &[&OpCall],
        fairness_extra: &[(TxnId, OpCall)],
    ) -> Vec<Classification> {
        let mut conflicts: Vec<Vec<TxnId>> = vec![Vec::new(); calls.len()];
        let mut commit_deps: Vec<Vec<TxnId>> = vec![Vec::new(); calls.len()];

        // Buckets are the outer loop: each `(transaction, kind)` bucket is
        // visited exactly once and every call of the group is scored
        // against it while it is hot. Per-call severities accumulate in a
        // reused scratch vector; a call that has already reached
        // `NonRecoverable` against this transaction skips further buckets
        // (mirroring the early exit of the single-call path — `max` is
        // order-insensitive, so the verdicts are identical).
        let mut severities: Vec<Compatibility> = Vec::with_capacity(calls.len());
        for (other, kinds) in &self.index {
            if *other == txn {
                continue;
            }
            severities.clear();
            severities.resize(calls.len(), Compatibility::Commutative);
            for (kind, bucket) in kinds {
                if bucket.is_empty() {
                    continue;
                }
                for (ci, call) in calls.iter().enumerate() {
                    if severities[ci] == Compatibility::NonRecoverable {
                        continue;
                    }
                    severities[ci] =
                        severities[ci].max(self.bucket_severity(policy, call, *kind, bucket));
                }
            }
            for (ci, severity) in severities.iter().enumerate() {
                match severity {
                    Compatibility::NonRecoverable => conflicts[ci].push(*other),
                    Compatibility::Recoverable => commit_deps[ci].push(*other),
                    Compatibility::Commutative => {}
                }
            }
        }
        for (other, other_call) in fairness_extra {
            if *other == txn {
                continue;
            }
            for (ci, call) in calls.iter().enumerate() {
                // Fairness is a *symmetric* conflict test between two
                // pending requests: the incoming request waits if either
                // order of the two operations would be non-recoverable.
                // This is what stops an incoming operation from overtaking
                // (and thereby starving) a blocked request it conflicts
                // with — e.g. a new reader behind a blocked writer under
                // commutativity, or a new writer behind a blocked reader
                // under recoverability.
                let incoming_after_blocked = self.effective(policy, call, other_call);
                let blocked_after_incoming = self.effective(policy, other_call, call);
                if (incoming_after_blocked == Compatibility::NonRecoverable
                    || blocked_after_incoming == Compatibility::NonRecoverable)
                    && !conflicts[ci].contains(other)
                {
                    conflicts[ci].push(*other);
                }
            }
        }
        conflicts
            .into_iter()
            .zip(commit_deps)
            .map(|(mut conflicts, mut commit_deps)| {
                conflicts.sort_unstable();
                // A transaction that must be waited on anyway is not listed
                // as a commit dependency.
                commit_deps.retain(|t| conflicts.binary_search(t).is_err());
                commit_deps.sort_unstable();
                Classification {
                    conflicts,
                    commit_deps,
                }
            })
            .collect()
    }

    /// The pre-index reference implementation of [`Self::classify`]: a
    /// linear walk of the whole log, calling the semantic classification
    /// for every entry. Retained (and kept behaviourally identical) as the
    /// oracle for differential tests; not used on the hot path.
    pub fn classify_naive(
        &self,
        policy: ConflictPolicy,
        txn: TxnId,
        call: &OpCall,
        fairness_extra: &[(TxnId, OpCall)],
    ) -> Classification {
        let mut conflicts: Vec<TxnId> = Vec::new();
        let mut commit_deps: Vec<TxnId> = Vec::new();

        for entry in &self.log {
            if entry.txn == txn {
                continue;
            }
            match Self::demote(policy, self.committed.classify(call, &entry.call)) {
                Compatibility::Commutative => {}
                Compatibility::Recoverable => {
                    if !commit_deps.contains(&entry.txn) {
                        commit_deps.push(entry.txn);
                    }
                }
                Compatibility::NonRecoverable => {
                    if !conflicts.contains(&entry.txn) {
                        conflicts.push(entry.txn);
                    }
                }
            }
        }
        for (other, other_call) in fairness_extra {
            if *other == txn {
                continue;
            }
            let incoming_after_blocked =
                Self::demote(policy, self.committed.classify(call, other_call));
            let blocked_after_incoming =
                Self::demote(policy, self.committed.classify(other_call, call));
            if (incoming_after_blocked == Compatibility::NonRecoverable
                || blocked_after_incoming == Compatibility::NonRecoverable)
                && !conflicts.contains(other)
            {
                conflicts.push(*other);
            }
        }
        conflicts.sort_unstable();
        commit_deps.retain(|t| conflicts.binary_search(t).is_err());
        commit_deps.sort_unstable();
        Classification {
            conflicts,
            commit_deps,
        }
    }

    fn index_insert(&mut self, txn: TxnId, call: &OpCall) {
        let bucket = self
            .index
            .entry(txn)
            .or_default()
            .entry(call.kind)
            .or_default();
        match call.distinguishing_param() {
            Some(p) => *bucket.params.entry(p.clone()).or_insert(0) += 1,
            None => bucket.nullary += 1,
        }
    }

    /// Execute an admitted operation for `txn`, computing its result
    /// according to the recovery strategy and appending it to the log (and
    /// the log index).
    pub fn execute(&mut self, txn: TxnId, seq: u64, call: OpCall) -> OpResult {
        let result = match self.strategy {
            RecoveryStrategy::IntentionsList => {
                // Result computed against the committed state plus this
                // transaction's own earlier operations on this object.
                let mut probe = self.committed.boxed_clone();
                for entry in self.log.iter().filter(|e| e.txn == txn) {
                    let _ = probe.apply(&entry.call);
                }
                probe.apply(&call)
            }
            RecoveryStrategy::UndoReplay => {
                let materialized = self
                    .materialized
                    .as_mut()
                    .expect("undo-replay keeps a materialized state");
                materialized.apply(&call)
            }
        };
        self.index_insert(txn, &call);
        self.log.push(LogEntry {
            txn,
            seq,
            call,
            result: result.clone(),
        });
        result
    }

    /// Fold all of `txn`'s logged operations into the committed state (in
    /// execution order) and drop them from the log. Called at *actual*
    /// commit, which the commit protocol guarantees happens in
    /// commit-dependency order.
    ///
    /// `stamp` is the transaction's global commit stamp; `watermark` is the
    /// begin stamp of the oldest live snapshot (`u64::MAX` when none is
    /// live). When a snapshot is live the superseded committed state is
    /// preserved in the version history before folding; versions no
    /// snapshot can still reach are pruned and counted in the return value.
    pub fn commit_txn(&mut self, txn: TxnId, stamp: u64, watermark: u64) -> u64 {
        if !self.index.contains_key(&txn) {
            // No operations on this object (the transaction only ever
            // blocked here): the committed state does not change, so no
            // version is created.
            return 0;
        }
        let mut pruned = 0u64;
        if watermark == u64::MAX {
            // No live snapshot can reach any historical version.
            pruned = self.history.len() as u64;
            self.history.clear();
        } else if stamp > self.committed_stamp {
            self.history
                .push((self.committed_stamp, self.committed.boxed_clone()));
            // Keep the newest entry at or below the watermark (the floor
            // version every live snapshot ≥ watermark may still read) plus
            // everything newer; drop the rest.
            if let Some(pos) = self.history.iter().rposition(|(s, _)| *s <= watermark) {
                pruned = pos as u64;
                self.history.drain(..pos);
            }
        }
        // An out-of-order fold (stamp ≤ committed_stamp — a coordinated
        // commit whose stamp was drawn before a later single-shard commit
        // folded first) skips the push: begin stamps are serialized against
        // coordinated commits by the termination lock, so no live or future
        // snapshot stamp can fall between the two folds and distinguish the
        // superseded state.
        let mut remaining = Vec::with_capacity(self.log.len());
        for entry in self.log.drain(..) {
            if entry.txn == txn {
                let folded = self.committed.apply(&entry.call);
                debug_assert_eq!(
                    folded, entry.result,
                    "soundness violation: folding {} for {} produced a different result",
                    entry.call, entry.txn
                );
            } else {
                remaining.push(entry);
            }
        }
        self.log = remaining;
        self.index.remove(&txn);
        self.committed_stamp = self.committed_stamp.max(stamp);
        // The materialized state already contains the committed operations;
        // nothing to do for undo-replay. The classification memo stays
        // valid: classification is state-independent by contract.
        pruned
    }

    /// Stamp of the last commit that folded operations into this object
    /// (0 before any commit).
    pub fn committed_stamp(&self) -> u64 {
        self.committed_stamp
    }

    /// Number of historical versions currently retained (excluding
    /// `committed` itself).
    pub fn version_depth(&self) -> usize {
        self.history.len()
    }

    /// Drop every historical version no snapshot at or above `watermark`
    /// can still reach, returning how many were pruned. `u64::MAX` clears
    /// the whole history (no live snapshots).
    pub fn prune_versions(&mut self, watermark: u64) -> u64 {
        if watermark == u64::MAX {
            let pruned = self.history.len() as u64;
            self.history.clear();
            return pruned;
        }
        match self.history.iter().rposition(|(s, _)| *s <= watermark) {
            Some(pos) => {
                self.history.drain(..pos);
                pos as u64
            }
            None => 0,
        }
    }

    /// The committed state as of begin stamp `stamp`: `committed` itself
    /// when `stamp ≥ committed_stamp`, otherwise the newest historical
    /// version current at `stamp` (falling back to the registration state
    /// for stamps older than every retained version — only reachable when
    /// nothing had committed by `stamp`).
    pub fn version_at(&self, stamp: u64) -> &dyn SemanticObject {
        if stamp >= self.committed_stamp {
            return self.committed.as_ref();
        }
        match self.history.iter().rev().find(|(s, _)| *s <= stamp) {
            Some((_, state)) => state.as_ref(),
            None => self.initial.as_ref(),
        }
    }

    /// Apply a **readonly** call to the version current at `stamp` and
    /// return its result. Readonly calls never mutate by the
    /// [`SemanticObject::is_readonly`] contract (pinned by the ADT test
    /// suite), so the stored version is applied to in place without a
    /// defensive clone.
    pub fn read_at(&mut self, stamp: u64, call: &OpCall) -> OpResult {
        debug_assert!(
            self.committed.is_readonly(call),
            "snapshot read of non-readonly call {call}"
        );
        if stamp >= self.committed_stamp {
            return self.committed.apply(call);
        }
        match self.history.iter_mut().rev().find(|(s, _)| *s <= stamp) {
            Some((_, state)) => state.apply(call),
            None => self.initial.apply(call),
        }
    }

    /// Remove all of `txn`'s logged operations (abort). Under undo-replay
    /// the materialized state is rebuilt by replaying the surviving log over
    /// the committed state — a semantic undo that never clobbers the effects
    /// of later, recoverable operations.
    pub fn abort_txn(&mut self, txn: TxnId) {
        let had_ops = self.index.remove(&txn).is_some();
        if !had_ops {
            return;
        }
        self.log.retain(|e| e.txn != txn);
        if self.strategy == RecoveryStrategy::UndoReplay {
            let mut rebuilt = self.committed.boxed_clone();
            for entry in &self.log {
                let replayed = rebuilt.apply(&entry.call);
                debug_assert_eq!(
                    replayed, entry.result,
                    "soundness violation: replaying {} for {} after an abort changed its result",
                    entry.call, entry.txn
                );
            }
            self.materialized = Some(rebuilt);
        }
    }

    /// Append a blocked request to the FIFO queue.
    pub fn push_blocked(&mut self, txn: TxnId, call: OpCall) {
        self.blocked.push_back(BlockedRequest { txn, call });
    }

    /// Remove the blocked request belonging to `txn`, if any.
    pub fn remove_blocked(&mut self, txn: TxnId) -> Option<BlockedRequest> {
        let idx = self.blocked.iter().position(|r| r.txn == txn)?;
        self.blocked.remove(idx)
    }

    /// Drain the blocked queue (used by the kernel's retry loop).
    pub fn take_blocked(&mut self) -> Vec<BlockedRequest> {
        self.blocked.drain(..).collect()
    }

    /// The `(transaction, call)` pairs of the current blocked queue, used as
    /// the fairness set for new incoming requests.
    pub fn blocked_pairs(&self) -> Vec<(TxnId, OpCall)> {
        self.blocked
            .iter()
            .map(|r| (r.txn, r.call.clone()))
            .collect()
    }

    /// `true` when `txn` holds at least one uncommitted operation in this
    /// object's log.
    pub fn has_ops_of(&self, txn: TxnId) -> bool {
        self.index.contains_key(&txn)
    }

    /// Transactions that currently hold at least one operation in the log,
    /// sorted by id.
    pub fn holders(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self.index.keys().copied().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_adt::{AdtObject, AdtOp, Stack, StackOp, Value};

    fn stack_object(strategy: RecoveryStrategy) -> ManagedObject {
        ManagedObject::new(
            ObjectId(0),
            "s",
            Box::new(AdtObject::new(Stack::new())),
            strategy,
        )
    }

    fn push(v: i64) -> OpCall {
        StackOp::Push(Value::Int(v)).to_call()
    }

    fn pop() -> OpCall {
        StackOp::Pop.to_call()
    }

    fn top() -> OpCall {
        StackOp::Top.to_call()
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(3).to_string(), "O3");
    }

    #[test]
    fn classification_distinguishes_conflicts_and_commit_deps() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(4));
        // Requested by T2: another push is recoverable -> commit dep on T1.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &push(2), &[]);
        assert_eq!(c.conflicts, vec![]);
        assert_eq!(c.commit_deps, vec![TxnId(1)]);
        assert!(!c.is_free());
        // A pop requested by T2 conflicts with T1's uncommitted push.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
        // T1's own operations never conflict with its next request.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(1), &pop(), &[]);
        assert!(c.is_free());
    }

    #[test]
    fn commutativity_only_policy_demotes_recoverable_to_conflict() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(4));
        let c = obj.classify(ConflictPolicy::CommutativityOnly, TxnId(2), &push(2), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
    }

    #[test]
    fn conflicting_holder_is_not_also_a_commit_dependency() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        // T1 executes a top (recoverable target for pushes) and a push.
        obj.execute(TxnId(1), 1, top());
        obj.execute(TxnId(1), 2, push(1));
        // A pop by T2 conflicts with T1's push and is recoverable relative
        // to T1's top; T1 must appear only in `conflicts`.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
    }

    #[test]
    fn fairness_extra_requests_can_block() {
        let obj = stack_object(RecoveryStrategy::IntentionsList);
        // Empty log, but a blocked pop by T1 is ahead; an incoming pop by T2
        // conflicts with it.
        let fairness = vec![(TxnId(1), pop())];
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &fairness);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        // An incoming push also waits: executing it would further delay the
        // blocked pop (the fairness test is symmetric).
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &push(5), &fairness);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        // ... while a blocked top does not hold up an incoming top.
        let c = obj.classify(
            ConflictPolicy::Recoverability,
            TxnId(2),
            &top(),
            &[(TxnId(1), top())],
        );
        assert!(c.conflicts.is_empty());
        // a transaction is never blocked behind its own queued request
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(1), &pop(), &fairness);
        assert!(c.conflicts.is_empty());
    }

    #[test]
    fn indexed_and_naive_classification_agree_on_scripted_logs() {
        for policy in [
            ConflictPolicy::Recoverability,
            ConflictPolicy::CommutativityOnly,
        ] {
            let mut obj = stack_object(RecoveryStrategy::IntentionsList);
            obj.execute(TxnId(1), 1, push(1));
            obj.execute(TxnId(1), 2, top());
            obj.execute(TxnId(2), 3, push(2));
            obj.execute(TxnId(3), 4, pop());
            obj.execute(TxnId(3), 5, push(3));
            let fairness = vec![(TxnId(4), pop()), (TxnId(5), top())];
            for call in [push(1), push(9), pop(), top()] {
                for requester in [TxnId(1), TxnId(2), TxnId(6)] {
                    let fast = obj.classify(policy, requester, &call, &fairness);
                    let slow = obj.classify_naive(policy, requester, &call, &fairness);
                    assert_eq!(fast, slow, "policy {policy:?} call {call} by {requester}");
                }
            }
        }
    }

    #[test]
    fn classify_many_matches_per_call_classification() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(1));
        obj.execute(TxnId(1), 2, top());
        obj.execute(TxnId(2), 3, push(2));
        obj.execute(TxnId(3), 4, pop());
        let fairness = vec![(TxnId(4), pop()), (TxnId(5), top())];
        let group = [push(1), push(9), pop(), top()];
        let group_refs: Vec<&OpCall> = group.iter().collect();
        for policy in [
            ConflictPolicy::Recoverability,
            ConflictPolicy::CommutativityOnly,
        ] {
            for requester in [TxnId(1), TxnId(2), TxnId(6)] {
                let grouped = obj.classify_many(policy, requester, &group_refs, &fairness);
                assert_eq!(grouped.len(), group.len());
                for (call, grouped) in group.iter().zip(&grouped) {
                    let single = obj.classify(policy, requester, call, &fairness);
                    assert_eq!(
                        grouped, &single,
                        "policy {policy:?} call {call} by {requester}"
                    );
                }
            }
        }
        assert!(obj
            .classify_many(ConflictPolicy::Recoverability, TxnId(9), &[], &fairness)
            .is_empty());
    }

    #[test]
    fn intentions_list_results_ignore_other_transactions() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        // T1 pushes 4; T2 pushes 2; both see "ok", and the committed state
        // stays empty until commit.
        assert_eq!(obj.execute(TxnId(1), 1, push(4)), OpResult::Ok);
        assert_eq!(obj.execute(TxnId(2), 2, push(2)), OpResult::Ok);
        assert_eq!(obj.log_len(), 2);
        // T1's own pop (intentions view) sees its own push only.
        assert_eq!(
            obj.execute(TxnId(1), 3, pop()),
            OpResult::Value(Value::Int(4))
        );
        // committed state still empty
        assert!(obj
            .committed_state()
            .state_eq(obj.initial_state()));
    }

    #[test]
    fn undo_replay_results_see_the_materialized_state() {
        let mut obj = stack_object(RecoveryStrategy::UndoReplay);
        assert_eq!(obj.execute(TxnId(1), 1, push(4)), OpResult::Ok);
        assert_eq!(obj.execute(TxnId(2), 2, push(2)), OpResult::Ok);
        // Commit both in dependency order and check the committed state.
        obj.commit_txn(TxnId(1), 1, u64::MAX);
        obj.commit_txn(TxnId(2), 2, u64::MAX);
        assert_eq!(obj.log_len(), 0);
        let committed = obj
            .committed_state()
            .as_any()
            .downcast_ref::<AdtObject<Stack>>()
            .expect("stack object");
        assert_eq!(
            committed.inner().items(),
            &[Value::Int(4), Value::Int(2)],
            "commit order reproduces execution order"
        );
    }

    #[test]
    fn abort_discards_only_the_aborting_transactions_effects() {
        for strategy in [RecoveryStrategy::IntentionsList, RecoveryStrategy::UndoReplay] {
            let mut obj = stack_object(strategy);
            obj.execute(TxnId(1), 1, push(4));
            obj.execute(TxnId(2), 2, push(2));
            obj.abort_txn(TxnId(1));
            assert_eq!(obj.log_len(), 1);
            obj.commit_txn(TxnId(2), 1, u64::MAX);
            let committed = obj
                .committed_state()
                .as_any()
                .downcast_ref::<AdtObject<Stack>>()
                .expect("stack object");
            assert_eq!(
                committed.inner().items(),
                &[Value::Int(2)],
                "strategy {strategy:?}: only T2's push survives"
            );
            // aborting a transaction with no operations is a no-op
            obj.abort_txn(TxnId(9));
        }
    }

    #[test]
    fn blocked_queue_operations() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        assert_eq!(obj.blocked_len(), 0);
        obj.push_blocked(TxnId(1), pop());
        obj.push_blocked(TxnId(2), top());
        assert_eq!(obj.blocked_len(), 2);
        assert_eq!(obj.blocked_pairs().len(), 2);
        assert_eq!(obj.blocked_queue().len(), 2);
        let removed = obj.remove_blocked(TxnId(1)).expect("present");
        assert_eq!(removed.txn, TxnId(1));
        assert_eq!(obj.remove_blocked(TxnId(1)), None);
        let drained = obj.take_blocked();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].txn, TxnId(2));
        assert_eq!(obj.blocked_len(), 0);
    }

    #[test]
    fn holders_lists_each_transaction_once() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(1));
        obj.execute(TxnId(1), 2, push(2));
        obj.execute(TxnId(2), 3, push(3));
        assert_eq!(obj.holders(), vec![TxnId(1), TxnId(2)]);
        assert_eq!(obj.log().len(), 3);
        assert!(format!("{obj:?}").contains("log_len"));
        assert_eq!(obj.name(), "s");
        assert_eq!(obj.id(), ObjectId(0));
    }

    fn counter_object() -> ManagedObject {
        ManagedObject::new(
            ObjectId(1),
            "c",
            Box::new(AdtObject::new(sbcc_adt::Counter::new())),
            RecoveryStrategy::IntentionsList,
        )
    }

    fn inc(n: i64) -> OpCall {
        sbcc_adt::CounterOp::Increment(n).to_call()
    }

    fn read() -> OpCall {
        sbcc_adt::CounterOp::Read.to_call()
    }

    #[test]
    fn version_chain_reads_each_stamp() {
        let mut obj = counter_object();
        // Three commits at stamps 2, 5, 9 with a snapshot watermark of 0
        // (everything retained).
        for (txn, stamp, amount) in [(1u64, 2u64, 10i64), (2, 5, 100), (3, 9, 1000)] {
            obj.execute(TxnId(txn), stamp, inc(amount));
            obj.commit_txn(TxnId(txn), stamp, 0);
        }
        assert_eq!(obj.committed_stamp(), 9);
        assert_eq!(obj.version_depth(), 3);
        // Every begin stamp sees exactly the commits at or below it.
        for (stamp, expected) in [
            (0u64, 0i64),
            (1, 0),
            (2, 10),
            (4, 10),
            (5, 110),
            (8, 110),
            (9, 1110),
            (100, 1110),
        ] {
            assert_eq!(
                obj.read_at(stamp, &read()),
                OpResult::Value(Value::Int(expected)),
                "read at stamp {stamp}"
            );
            assert_eq!(
                obj.version_at(stamp)
                    .as_any()
                    .downcast_ref::<AdtObject<sbcc_adt::Counter>>()
                    .expect("counter")
                    .inner()
                    .value(),
                expected,
                "version_at stamp {stamp}"
            );
        }
    }

    #[test]
    fn commit_prunes_versions_below_the_watermark() {
        let mut obj = counter_object();
        for (txn, stamp) in [(1u64, 1u64), (2, 2), (3, 3)] {
            obj.execute(TxnId(txn), stamp, inc(1));
            obj.commit_txn(TxnId(txn), stamp, 0);
        }
        assert_eq!(obj.version_depth(), 3);
        // Oldest live snapshot now at 2: the floor version (stamp 2's
        // predecessor... the newest entry ≤ 2) must survive, older ones go.
        obj.execute(TxnId(4), 4, inc(1));
        let pruned = obj.commit_txn(TxnId(4), 4, 2);
        assert_eq!(pruned, 2, "entries at stamps 0 and 1 are unreachable");
        assert_eq!(obj.version_depth(), 2);
        // A snapshot at the watermark still reads correctly.
        assert_eq!(obj.read_at(2, &read()), OpResult::Value(Value::Int(2)));
        assert_eq!(obj.read_at(3, &read()), OpResult::Value(Value::Int(3)));
        // No live snapshots: the next commit clears the whole history.
        obj.execute(TxnId(5), 5, inc(1));
        assert_eq!(obj.commit_txn(TxnId(5), 5, u64::MAX), 2);
        assert_eq!(obj.version_depth(), 0);
    }

    #[test]
    fn explicit_prune_and_stampless_commit() {
        let mut obj = counter_object();
        for (txn, stamp) in [(1u64, 1u64), (2, 2)] {
            obj.execute(TxnId(txn), stamp, inc(1));
            obj.commit_txn(TxnId(txn), stamp, 0);
        }
        assert_eq!(obj.version_depth(), 2);
        assert_eq!(obj.prune_versions(1), 1);
        assert_eq!(obj.prune_versions(1), 0, "idempotent");
        assert_eq!(obj.read_at(1, &read()), OpResult::Value(Value::Int(1)));
        assert_eq!(obj.prune_versions(u64::MAX), 1);
        assert_eq!(obj.version_depth(), 0);
        // Committing a transaction with no operations on the object neither
        // bumps the stamp nor creates a version.
        assert_eq!(obj.commit_txn(TxnId(9), 50, 0), 0);
        assert_eq!(obj.committed_stamp(), 2);
    }

    #[test]
    fn out_of_order_fold_skips_the_push_and_keeps_the_stamp() {
        let mut obj = counter_object();
        // A single-shard commit folds at stamp 5 first...
        obj.execute(TxnId(1), 1, inc(10));
        obj.commit_txn(TxnId(1), 5, 0);
        // ... then a coordinated commit whose stamp 3 was drawn earlier.
        obj.execute(TxnId(2), 2, inc(100));
        obj.commit_txn(TxnId(2), 3, 0);
        assert_eq!(obj.committed_stamp(), 5, "stamp never goes backwards");
        assert_eq!(obj.version_depth(), 1, "out-of-order fold pushes nothing");
        // Reachable begin stamps (b < 3 and b ≥ 5) read correctly.
        assert_eq!(obj.read_at(2, &read()), OpResult::Value(Value::Int(0)));
        assert_eq!(obj.read_at(5, &read()), OpResult::Value(Value::Int(110)));
    }

    #[test]
    fn index_tracks_commits_and_aborts() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(1));
        obj.execute(TxnId(2), 2, push(2));
        obj.commit_txn(TxnId(1), 1, u64::MAX);
        assert_eq!(obj.holders(), vec![TxnId(2)]);
        // After T1 committed, a pop by T3 depends only on T2.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(3), &pop(), &[]);
        assert_eq!(c.conflicts, vec![TxnId(2)]);
        obj.abort_txn(TxnId(2));
        assert!(obj.holders().is_empty());
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(3), &pop(), &[]);
        assert!(c.is_free());
    }
}
