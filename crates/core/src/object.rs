//! Managed objects: the per-object state the paper's *object managers* keep.
//!
//! Each object manager maintains an execution log of uncommitted operations
//! on its object (Section 4) plus a queue of blocked requests. Conflict
//! classification happens against that log using the object's compatibility
//! tables (through the erased [`SemanticObject`] interface), and the chosen
//! [`RecoveryStrategy`] decides how operation results are computed and how
//! commits/aborts update the object state.

use crate::policy::{ConflictPolicy, RecoveryStrategy};
use crate::txn::TxnId;
use sbcc_adt::{Compatibility, OpCall, OpResult, SemanticObject};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a registered object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// One uncommitted operation in an object's execution log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// The transaction that executed the operation.
    pub txn: TxnId,
    /// Global execution sequence number.
    pub seq: u64,
    /// The operation.
    pub call: OpCall,
    /// The result that was returned to the transaction.
    pub result: OpResult,
}

/// A blocked operation request waiting in an object's queue.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedRequest {
    /// The blocked transaction.
    pub txn: TxnId,
    /// The operation it wants to execute.
    pub call: OpCall,
}

/// Summary of classifying a requested operation against an object's log
/// (and, under fair scheduling, its blocked queue).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Classification {
    /// Transactions holding at least one uncommitted operation the request
    /// is neither commutative with nor recoverable relative to. Non-empty
    /// means the requester must wait (or abort on a cycle).
    pub conflicts: Vec<TxnId>,
    /// Transactions holding at least one uncommitted operation the request
    /// is recoverable relative to (but does not commute with). Executing the
    /// request creates commit-dependency edges to these transactions.
    pub commit_deps: Vec<TxnId>,
}

impl Classification {
    /// `true` when the request can execute immediately with no commit
    /// dependencies (everything commutes).
    pub fn is_free(&self) -> bool {
        self.conflicts.is_empty() && self.commit_deps.is_empty()
    }
}

/// The per-object state maintained by the kernel.
pub struct ManagedObject {
    id: ObjectId,
    name: String,
    /// Snapshot of the state at registration time (used by the history
    /// checker to replay committed transactions from scratch).
    initial: Box<dyn SemanticObject>,
    /// State reflecting exactly the committed transactions.
    committed: Box<dyn SemanticObject>,
    /// Committed state plus all uncommitted logged operations, in execution
    /// order. Maintained only under [`RecoveryStrategy::UndoReplay`].
    materialized: Option<Box<dyn SemanticObject>>,
    /// Uncommitted operations, in execution order.
    log: Vec<LogEntry>,
    /// Blocked requests, FIFO.
    blocked: VecDeque<BlockedRequest>,
    strategy: RecoveryStrategy,
}

impl fmt::Debug for ManagedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ManagedObject")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("type", &self.committed.type_name())
            .field("log_len", &self.log.len())
            .field("blocked_len", &self.blocked.len())
            .finish()
    }
}

impl ManagedObject {
    /// Wrap a semantic object for management by the kernel.
    pub fn new(
        id: ObjectId,
        name: impl Into<String>,
        object: Box<dyn SemanticObject>,
        strategy: RecoveryStrategy,
    ) -> Self {
        let materialized = match strategy {
            RecoveryStrategy::IntentionsList => None,
            RecoveryStrategy::UndoReplay => Some(object.boxed_clone()),
        };
        ManagedObject {
            id,
            name: name.into(),
            initial: object.boxed_clone(),
            committed: object,
            materialized,
            log: Vec::new(),
            blocked: VecDeque::new(),
            strategy,
        }
    }

    /// The object's id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object's registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state at registration time.
    pub fn initial_state(&self) -> &dyn SemanticObject {
        self.initial.as_ref()
    }

    /// The state reflecting exactly the committed transactions.
    pub fn committed_state(&self) -> &dyn SemanticObject {
        self.committed.as_ref()
    }

    /// Number of uncommitted operations currently in the log.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// The uncommitted log entries (execution order).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Number of blocked requests queued on this object.
    pub fn blocked_len(&self) -> usize {
        self.blocked.len()
    }

    /// The blocked requests (FIFO order).
    pub fn blocked_queue(&self) -> &VecDeque<BlockedRequest> {
        &self.blocked
    }

    /// Classify `call`, requested by `txn`, against the uncommitted
    /// operations of **other** transactions in the log.
    ///
    /// Under [`ConflictPolicy::CommutativityOnly`] a `Recoverable`
    /// classification is demoted to a conflict, which is exactly how the
    /// baseline protocol behaves.
    ///
    /// If `fairness_extra` is non-empty those `(transaction, call)` pairs
    /// (typically the object's blocked queue) are also checked: a conflict
    /// with any of them blocks the request even though they have not
    /// executed (the fair-scheduling rule of Section 5.2).
    pub fn classify(
        &self,
        policy: ConflictPolicy,
        txn: TxnId,
        call: &OpCall,
        fairness_extra: &[(TxnId, OpCall)],
    ) -> Classification {
        let mut conflicts: Vec<TxnId> = Vec::new();
        let mut commit_deps: Vec<TxnId> = Vec::new();

        for entry in &self.log {
            if entry.txn == txn {
                continue;
            }
            match self.effective(policy, call, &entry.call) {
                Compatibility::Commutative => {}
                Compatibility::Recoverable => {
                    if !commit_deps.contains(&entry.txn) {
                        commit_deps.push(entry.txn);
                    }
                }
                Compatibility::NonRecoverable => {
                    if !conflicts.contains(&entry.txn) {
                        conflicts.push(entry.txn);
                    }
                }
            }
        }
        for (other, other_call) in fairness_extra {
            if *other == txn {
                continue;
            }
            // Fairness is a *symmetric* conflict test between two pending
            // requests: the incoming request waits if either order of the
            // two operations would be non-recoverable. This is what stops an
            // incoming operation from overtaking (and thereby starving) a
            // blocked request it conflicts with — e.g. a new reader behind a
            // blocked writer under commutativity, or a new writer behind a
            // blocked reader under recoverability.
            let incoming_after_blocked = self.effective(policy, call, other_call);
            let blocked_after_incoming = self.effective(policy, other_call, call);
            if (incoming_after_blocked == Compatibility::NonRecoverable
                || blocked_after_incoming == Compatibility::NonRecoverable)
                && !conflicts.contains(other)
            {
                conflicts.push(*other);
            }
        }
        // A transaction that must be waited on anyway is not listed as a
        // commit dependency.
        commit_deps.retain(|t| !conflicts.contains(t));
        Classification {
            conflicts,
            commit_deps,
        }
    }

    fn effective(&self, policy: ConflictPolicy, requested: &OpCall, executed: &OpCall) -> Compatibility {
        let c = self.committed.classify(requested, executed);
        match (policy, c) {
            (ConflictPolicy::CommutativityOnly, Compatibility::Recoverable) => {
                Compatibility::NonRecoverable
            }
            (_, c) => c,
        }
    }

    /// Execute an admitted operation for `txn`, computing its result
    /// according to the recovery strategy and appending it to the log.
    pub fn execute(&mut self, txn: TxnId, seq: u64, call: OpCall) -> OpResult {
        let result = match self.strategy {
            RecoveryStrategy::IntentionsList => {
                // Result computed against the committed state plus this
                // transaction's own earlier operations on this object.
                let mut probe = self.committed.boxed_clone();
                for entry in self.log.iter().filter(|e| e.txn == txn) {
                    let _ = probe.apply(&entry.call);
                }
                probe.apply(&call)
            }
            RecoveryStrategy::UndoReplay => {
                let materialized = self
                    .materialized
                    .as_mut()
                    .expect("undo-replay keeps a materialized state");
                materialized.apply(&call)
            }
        };
        self.log.push(LogEntry {
            txn,
            seq,
            call,
            result: result.clone(),
        });
        result
    }

    /// Fold all of `txn`'s logged operations into the committed state (in
    /// execution order) and drop them from the log. Called at *actual*
    /// commit, which the commit protocol guarantees happens in
    /// commit-dependency order.
    pub fn commit_txn(&mut self, txn: TxnId) {
        let mut remaining = Vec::with_capacity(self.log.len());
        for entry in self.log.drain(..) {
            if entry.txn == txn {
                let folded = self.committed.apply(&entry.call);
                debug_assert_eq!(
                    folded, entry.result,
                    "soundness violation: folding {} for {} produced a different result",
                    entry.call, entry.txn
                );
            } else {
                remaining.push(entry);
            }
        }
        self.log = remaining;
        // The materialized state already contains the committed operations;
        // nothing to do for undo-replay.
    }

    /// Remove all of `txn`'s logged operations (abort). Under undo-replay
    /// the materialized state is rebuilt by replaying the surviving log over
    /// the committed state — a semantic undo that never clobbers the effects
    /// of later, recoverable operations.
    pub fn abort_txn(&mut self, txn: TxnId) {
        let had_ops = self.log.iter().any(|e| e.txn == txn);
        self.log.retain(|e| e.txn != txn);
        if !had_ops {
            return;
        }
        if self.strategy == RecoveryStrategy::UndoReplay {
            let mut rebuilt = self.committed.boxed_clone();
            for entry in &self.log {
                let replayed = rebuilt.apply(&entry.call);
                debug_assert_eq!(
                    replayed, entry.result,
                    "soundness violation: replaying {} for {} after an abort changed its result",
                    entry.call, entry.txn
                );
            }
            self.materialized = Some(rebuilt);
        }
    }

    /// Append a blocked request to the FIFO queue.
    pub fn push_blocked(&mut self, txn: TxnId, call: OpCall) {
        self.blocked.push_back(BlockedRequest { txn, call });
    }

    /// Remove the blocked request belonging to `txn`, if any.
    pub fn remove_blocked(&mut self, txn: TxnId) -> Option<BlockedRequest> {
        let idx = self.blocked.iter().position(|r| r.txn == txn)?;
        self.blocked.remove(idx)
    }

    /// Drain the blocked queue (used by the kernel's retry loop).
    pub fn take_blocked(&mut self) -> Vec<BlockedRequest> {
        self.blocked.drain(..).collect()
    }

    /// The `(transaction, call)` pairs of the current blocked queue, used as
    /// the fairness set for new incoming requests.
    pub fn blocked_pairs(&self) -> Vec<(TxnId, OpCall)> {
        self.blocked
            .iter()
            .map(|r| (r.txn, r.call.clone()))
            .collect()
    }

    /// Transactions that currently hold at least one operation in the log.
    pub fn holders(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = Vec::new();
        for e in &self.log {
            if !out.contains(&e.txn) {
                out.push(e.txn);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_adt::{AdtObject, AdtOp, Stack, StackOp, Value};

    fn stack_object(strategy: RecoveryStrategy) -> ManagedObject {
        ManagedObject::new(
            ObjectId(0),
            "s",
            Box::new(AdtObject::new(Stack::new())),
            strategy,
        )
    }

    fn push(v: i64) -> OpCall {
        StackOp::Push(Value::Int(v)).to_call()
    }

    fn pop() -> OpCall {
        StackOp::Pop.to_call()
    }

    fn top() -> OpCall {
        StackOp::Top.to_call()
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(3).to_string(), "O3");
    }

    #[test]
    fn classification_distinguishes_conflicts_and_commit_deps() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(4));
        // Requested by T2: another push is recoverable -> commit dep on T1.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &push(2), &[]);
        assert_eq!(c.conflicts, vec![]);
        assert_eq!(c.commit_deps, vec![TxnId(1)]);
        assert!(!c.is_free());
        // A pop requested by T2 conflicts with T1's uncommitted push.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
        // T1's own operations never conflict with its next request.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(1), &pop(), &[]);
        assert!(c.is_free());
    }

    #[test]
    fn commutativity_only_policy_demotes_recoverable_to_conflict() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(4));
        let c = obj.classify(ConflictPolicy::CommutativityOnly, TxnId(2), &push(2), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
    }

    #[test]
    fn conflicting_holder_is_not_also_a_commit_dependency() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        // T1 executes a top (recoverable target for pushes) and a push.
        obj.execute(TxnId(1), 1, top());
        obj.execute(TxnId(1), 2, push(1));
        // A pop by T2 conflicts with T1's push and is recoverable relative
        // to T1's top; T1 must appear only in `conflicts`.
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &[]);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        assert!(c.commit_deps.is_empty());
    }

    #[test]
    fn fairness_extra_requests_can_block() {
        let obj = stack_object(RecoveryStrategy::IntentionsList);
        // Empty log, but a blocked pop by T1 is ahead; an incoming pop by T2
        // conflicts with it.
        let fairness = vec![(TxnId(1), pop())];
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &pop(), &fairness);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        // An incoming push also waits: executing it would further delay the
        // blocked pop (the fairness test is symmetric).
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(2), &push(5), &fairness);
        assert_eq!(c.conflicts, vec![TxnId(1)]);
        // ... while a blocked top does not hold up an incoming top.
        let c = obj.classify(
            ConflictPolicy::Recoverability,
            TxnId(2),
            &top(),
            &[(TxnId(1), top())],
        );
        assert!(c.conflicts.is_empty());
        // a transaction is never blocked behind its own queued request
        let c = obj.classify(ConflictPolicy::Recoverability, TxnId(1), &pop(), &fairness);
        assert!(c.conflicts.is_empty());
    }

    #[test]
    fn intentions_list_results_ignore_other_transactions() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        // T1 pushes 4; T2 pushes 2; both see "ok", and the committed state
        // stays empty until commit.
        assert_eq!(obj.execute(TxnId(1), 1, push(4)), OpResult::Ok);
        assert_eq!(obj.execute(TxnId(2), 2, push(2)), OpResult::Ok);
        assert_eq!(obj.log_len(), 2);
        // T1's own pop (intentions view) sees its own push only.
        assert_eq!(
            obj.execute(TxnId(1), 3, pop()),
            OpResult::Value(Value::Int(4))
        );
        // committed state still empty
        assert!(obj
            .committed_state()
            .state_eq(obj.initial_state()));
    }

    #[test]
    fn undo_replay_results_see_the_materialized_state() {
        let mut obj = stack_object(RecoveryStrategy::UndoReplay);
        assert_eq!(obj.execute(TxnId(1), 1, push(4)), OpResult::Ok);
        assert_eq!(obj.execute(TxnId(2), 2, push(2)), OpResult::Ok);
        // Commit both in dependency order and check the committed state.
        obj.commit_txn(TxnId(1));
        obj.commit_txn(TxnId(2));
        assert_eq!(obj.log_len(), 0);
        let committed = obj
            .committed_state()
            .as_any()
            .downcast_ref::<AdtObject<Stack>>()
            .expect("stack object");
        assert_eq!(
            committed.inner().items(),
            &[Value::Int(4), Value::Int(2)],
            "commit order reproduces execution order"
        );
    }

    #[test]
    fn abort_discards_only_the_aborting_transactions_effects() {
        for strategy in [RecoveryStrategy::IntentionsList, RecoveryStrategy::UndoReplay] {
            let mut obj = stack_object(strategy);
            obj.execute(TxnId(1), 1, push(4));
            obj.execute(TxnId(2), 2, push(2));
            obj.abort_txn(TxnId(1));
            assert_eq!(obj.log_len(), 1);
            obj.commit_txn(TxnId(2));
            let committed = obj
                .committed_state()
                .as_any()
                .downcast_ref::<AdtObject<Stack>>()
                .expect("stack object");
            assert_eq!(
                committed.inner().items(),
                &[Value::Int(2)],
                "strategy {strategy:?}: only T2's push survives"
            );
            // aborting a transaction with no operations is a no-op
            obj.abort_txn(TxnId(9));
        }
    }

    #[test]
    fn blocked_queue_operations() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        assert_eq!(obj.blocked_len(), 0);
        obj.push_blocked(TxnId(1), pop());
        obj.push_blocked(TxnId(2), top());
        assert_eq!(obj.blocked_len(), 2);
        assert_eq!(obj.blocked_pairs().len(), 2);
        assert_eq!(obj.blocked_queue().len(), 2);
        let removed = obj.remove_blocked(TxnId(1)).expect("present");
        assert_eq!(removed.txn, TxnId(1));
        assert_eq!(obj.remove_blocked(TxnId(1)), None);
        let drained = obj.take_blocked();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].txn, TxnId(2));
        assert_eq!(obj.blocked_len(), 0);
    }

    #[test]
    fn holders_lists_each_transaction_once() {
        let mut obj = stack_object(RecoveryStrategy::IntentionsList);
        obj.execute(TxnId(1), 1, push(1));
        obj.execute(TxnId(1), 2, push(2));
        obj.execute(TxnId(2), 3, push(3));
        assert_eq!(obj.holders(), vec![TxnId(1), TxnId(2)]);
        assert_eq!(obj.log().len(), 3);
        assert!(format!("{obj:?}").contains("log_len"));
        assert_eq!(obj.name(), "s");
        assert_eq!(obj.id(), ObjectId(0));
    }
}
