//! Outcomes and events reported by the kernel.
//!
//! The kernel is a synchronous state machine: every call returns the outcome
//! for the *calling* transaction, while side effects on **other**
//! transactions (a blocked request that became executable, a cascaded
//! commit of a pseudo-committed transaction, an abort of a retried request
//! that closed a cycle) are queued as [`KernelEvent`]s, drained by the
//! caller with [`crate::SchedulerKernel::drain_events`].

use crate::txn::{BatchCall, TxnId};
use sbcc_adt::OpResult;
use std::fmt;

/// Why the scheduler aborted a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Blocking the transaction would have closed a cycle in the dependency
    /// graph (a deadlock, possibly involving commit-dependency edges).
    DeadlockCycle,
    /// Executing the recoverable operation would have closed a cycle of
    /// commit dependencies, violating serializability (Lemma 4).
    CommitDependencyCycle,
    /// The transaction was chosen as the victim of a cycle created by some
    /// other transaction's request (only under
    /// [`crate::VictimPolicy::Youngest`]).
    VictimSelected,
    /// A snapshot transaction completed a dangerous structure in the SSI
    /// rw-antidependency graph (both an incoming and an outgoing
    /// rw-antidependency to concurrent transactions — Cahill's pivot test)
    /// and was aborted to preserve serializability.
    SsiConflict,
    /// A declared batch touched an object outside its declared access set
    /// and the scheduler is configured with
    /// [`crate::UndeclaredPolicy::Abort`]: the mis-declaration was detected
    /// at admission and the transaction aborted instead of being silently
    /// trusted. Scheduler-initiated, so retry loops restart it (typically
    /// with a corrected declaration or none at all).
    UndeclaredAccess,
    /// The application explicitly aborted the transaction.
    Explicit,
}

impl AbortReason {
    /// `true` for aborts the scheduler decided on its own (deadlock,
    /// commit-dependency cycle, victim selection) — the cases a retry loop
    /// such as [`crate::Database::run`] should transparently restart —
    /// `false` for application-requested aborts.
    pub fn is_scheduler_initiated(self) -> bool {
        !matches!(self, AbortReason::Explicit)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::DeadlockCycle => write!(f, "deadlock cycle"),
            AbortReason::CommitDependencyCycle => write!(f, "commit-dependency cycle"),
            AbortReason::VictimSelected => write!(f, "selected as cycle victim"),
            AbortReason::SsiConflict => write!(f, "ssi rw-antidependency conflict"),
            AbortReason::UndeclaredAccess => write!(f, "undeclared access"),
            AbortReason::Explicit => write!(f, "explicit abort"),
        }
    }
}

/// Outcome of an operation request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The operation executed immediately.
    Executed {
        /// The operation's return value.
        result: OpResult,
        /// Transactions this transaction now has a commit dependency on
        /// (empty when the operation commuted with everything).
        commit_deps: Vec<TxnId>,
    },
    /// The operation conflicts with uncommitted operations; the transaction
    /// is blocked until the holders terminate (the request is retried
    /// automatically and reported via [`KernelEvent::Unblocked`]).
    Blocked {
        /// The transactions being waited on.
        waiting_on: Vec<TxnId>,
    },
    /// The transaction was aborted instead (the request would have closed a
    /// cycle).
    Aborted {
        /// Why the transaction was aborted.
        reason: AbortReason,
    },
}

impl RequestOutcome {
    /// `true` when the operation executed.
    pub fn is_executed(&self) -> bool {
        matches!(self, RequestOutcome::Executed { .. })
    }

    /// `true` when the transaction is now blocked.
    pub fn is_blocked(&self) -> bool {
        matches!(self, RequestOutcome::Blocked { .. })
    }

    /// `true` when the transaction was aborted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, RequestOutcome::Aborted { .. })
    }

    /// The result, if the operation executed.
    pub fn result(&self) -> Option<&OpResult> {
        match self {
            RequestOutcome::Executed { result, .. } => Some(result),
            _ => None,
        }
    }

    /// Convert a **settled** outcome into the session-level result: the
    /// one mapping every sync and async exec/settle path shares.
    ///
    /// # Panics
    ///
    /// Panics on [`RequestOutcome::Blocked`] — blocked outcomes are never
    /// delivered to a session (the rendezvous only ever fills with the
    /// settled retry), so reaching one here is a front-end bug.
    pub(crate) fn into_result(
        self,
        txn: TxnId,
    ) -> Result<OpResult, crate::errors::CoreError> {
        match self {
            RequestOutcome::Executed { result, .. } => Ok(result),
            RequestOutcome::Aborted { reason } => {
                Err(crate::errors::CoreError::Aborted { txn, reason })
            }
            RequestOutcome::Blocked { .. } => {
                unreachable!("blocked outcomes are never delivered")
            }
        }
    }
}

/// Outcome of a commit request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The transaction actually committed (its effects are folded into the
    /// committed object states and it has left the dependency graph).
    Committed,
    /// The transaction pseudo-committed: complete from the user's point of
    /// view, guaranteed to commit, but the actual commit waits for the
    /// listed transactions to terminate (Section 4.3).
    PseudoCommitted {
        /// Live transactions this transaction still has commit dependencies
        /// on.
        waiting_on: Vec<TxnId>,
    },
}

impl CommitOutcome {
    /// `true` for an actual commit.
    pub fn is_full_commit(&self) -> bool {
        matches!(self, CommitOutcome::Committed)
    }

    /// `true` for a pseudo-commit.
    pub fn is_pseudo_commit(&self) -> bool {
        matches!(self, CommitOutcome::PseudoCommitted { .. })
    }
}

/// Outcome of a grouped submission
/// ([`crate::SchedulerKernel::request_batch`]).
///
/// # Partial-admission semantics
///
/// A batch is processed strictly in submission order and is **equivalent to
/// submitting the same calls one by one** (a property enforced by the
/// batched-vs-sequential differential test suite). The kernel admits and
/// executes a *prefix* of the batch; the first call that cannot execute
/// terminates processing:
///
/// * if it **blocks**, the executed prefix stays executed (operations are
///   never rolled back on a block — exactly as in per-call submission), the
///   blocking call becomes the transaction's pending request inside the
///   kernel (retried automatically, reported via
///   [`KernelEvent::Unblocked`]), and the unprocessed suffix is handed back
///   in [`BatchStop::Blocked::rest`] for resubmission once the pending call
///   settles;
/// * if it **aborts** the transaction (a would-be cycle), the whole
///   transaction's effects — including the just-executed prefix — are
///   undone; the prefix *results* are still returned (per-call submission
///   would already have handed them to the caller before the abort) but
///   are void, and the unprocessed suffix is returned in
///   [`BatchStop::Aborted::rest`] for diagnostics.
///
/// There is no all-or-nothing admission at batch granularity: atomicity is
/// provided by the *transaction* (commit/abort), not by the batch, which is
/// purely a submission-granularity optimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Results of the executed prefix, in submission order.
    pub executed: Vec<OpResult>,
    /// Union of the commit dependencies acquired by the executed prefix
    /// (sorted, deduplicated).
    pub commit_deps: Vec<TxnId>,
    /// Why processing stopped before the end of the batch, if it did.
    /// `None` means every call executed.
    pub stopped: Option<BatchStop>,
}

impl BatchOutcome {
    /// `true` when every call of the batch executed.
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }
}

/// The terminator of a partially admitted batch (see [`BatchOutcome`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchStop {
    /// The call at `index` conflicts and is now the transaction's pending
    /// request inside the kernel.
    Blocked {
        /// Position (in the submitted batch) of the call that blocked.
        index: usize,
        /// The transactions being waited on.
        waiting_on: Vec<TxnId>,
        /// The calls after `index`, unprocessed, for resubmission.
        rest: Vec<BatchCall>,
    },
    /// The call at `index` would have closed a cycle and the transaction
    /// was aborted.
    Aborted {
        /// Position (in the submitted batch) of the call that aborted.
        index: usize,
        /// Why the transaction was aborted.
        reason: AbortReason,
        /// The calls after `index`, unprocessed.
        rest: Vec<BatchCall>,
    },
}

/// Side effects on transactions other than the caller's, produced while the
/// kernel processed a request, commit or abort.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelEvent {
    /// A previously blocked transaction's pending request was retried; the
    /// outcome is attached (it may have executed, re-blocked, or been
    /// aborted because the retry would close a cycle).
    Unblocked {
        /// The transaction whose pending request was retried.
        txn: TxnId,
        /// The outcome of the retry.
        outcome: RequestOutcome,
    },
    /// A pseudo-committed transaction's last commit dependency terminated
    /// and it has now actually committed.
    Committed {
        /// The transaction that actually committed.
        txn: TxnId,
    },
    /// A transaction was aborted as a side effect (deadlock victim during a
    /// retry, or victim selection on behalf of another requester).
    Aborted {
        /// The transaction that was aborted.
        txn: TxnId,
        /// Why it was aborted.
        reason: AbortReason,
    },
}

impl KernelEvent {
    /// The transaction this event concerns.
    pub fn txn(&self) -> TxnId {
        match self {
            KernelEvent::Unblocked { txn, .. }
            | KernelEvent::Committed { txn }
            | KernelEvent::Aborted { txn, .. } => *txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbcc_adt::OpResult;

    #[test]
    fn abort_reason_display() {
        assert_eq!(AbortReason::DeadlockCycle.to_string(), "deadlock cycle");
        assert_eq!(
            AbortReason::CommitDependencyCycle.to_string(),
            "commit-dependency cycle"
        );
        assert_eq!(AbortReason::Explicit.to_string(), "explicit abort");
        assert_eq!(
            AbortReason::VictimSelected.to_string(),
            "selected as cycle victim"
        );
        assert_eq!(
            AbortReason::SsiConflict.to_string(),
            "ssi rw-antidependency conflict"
        );
        assert_eq!(
            AbortReason::UndeclaredAccess.to_string(),
            "undeclared access"
        );
        assert!(AbortReason::SsiConflict.is_scheduler_initiated());
        assert!(AbortReason::UndeclaredAccess.is_scheduler_initiated());
        assert!(!AbortReason::Explicit.is_scheduler_initiated());
    }

    #[test]
    fn request_outcome_predicates() {
        let e = RequestOutcome::Executed {
            result: OpResult::Ok,
            commit_deps: vec![],
        };
        let b = RequestOutcome::Blocked {
            waiting_on: vec![TxnId(1)],
        };
        let a = RequestOutcome::Aborted {
            reason: AbortReason::DeadlockCycle,
        };
        assert!(e.is_executed() && !e.is_blocked() && !e.is_aborted());
        assert!(b.is_blocked() && !b.is_executed());
        assert!(a.is_aborted() && !a.is_executed());
        assert_eq!(e.result(), Some(&OpResult::Ok));
        assert_eq!(b.result(), None);
    }

    #[test]
    fn commit_outcome_predicates() {
        assert!(CommitOutcome::Committed.is_full_commit());
        assert!(!CommitOutcome::Committed.is_pseudo_commit());
        let p = CommitOutcome::PseudoCommitted {
            waiting_on: vec![TxnId(1)],
        };
        assert!(p.is_pseudo_commit());
        assert!(!p.is_full_commit());
    }

    #[test]
    fn kernel_event_txn_accessor() {
        assert_eq!(
            KernelEvent::Committed { txn: TxnId(4) }.txn(),
            TxnId(4)
        );
        assert_eq!(
            KernelEvent::Aborted {
                txn: TxnId(5),
                reason: AbortReason::Explicit
            }
            .txn(),
            TxnId(5)
        );
        assert_eq!(
            KernelEvent::Unblocked {
                txn: TxnId(6),
                outcome: RequestOutcome::Aborted {
                    reason: AbortReason::DeadlockCycle
                }
            }
            .txn(),
            TxnId(6)
        );
    }
}
